//! # joshua-repro — reproduction of JOSHUA (IEEE Cluster 2006)
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel (the
//!   testbed substitute).
//! * [`gcs`] — group communication system (the Transis substitute):
//!   membership, totally ordered multicast, virtual synchrony.
//! * [`pbs`] — PBS-compatible job & resource management substrate (the
//!   TORQUE + Maui + mom substitute).
//! * [`core`] — JOSHUA itself: symmetric active/active replication of the
//!   PBS service, plus the paper's HA baselines and the cluster harness.
//! * [`availability`] — the paper's availability analysis and a Monte
//!   Carlo failure simulator.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured results.

pub use joshua_core as core;
pub use jrs_availability as availability;
pub use jrs_gcs as gcs;
pub use jrs_pbs as pbs;
pub use jrs_sim as sim;
