//! Offline shim for the subset of the `rand` crate API this workspace
//! uses. The container image has no crates.io access, so the workspace
//! vendors a tiny deterministic PRNG instead of the real crate.
//!
//! Deliberate restrictions, aligned with the repo's determinism rules
//! (see `crates/detlint`):
//!
//! * **No ambient entropy.** There is no `thread_rng`, no `random()`
//!   free function, no `from_os_rng`. Every generator is constructed
//!   from an explicit seed (`SeedableRng::seed_from_u64` /
//!   `from_seed`), so replicated state machines cannot accidentally
//!   pick up per-process randomness.
//! * **Stable algorithm.** `StdRng` is xoshiro256++ seeded via
//!   SplitMix64 — a fixed, documented stream. The real crate reserves
//!   the right to change `StdRng`'s algorithm between versions; a
//!   simulator that wants reproducible traces across toolchain bumps
//!   is better off pinning one.
//!
//! Uniform-range sampling uses Lemire-style widening multiplication
//! with a rejection step, so draws are unbiased as well as
//! deterministic.

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds. Mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the canonical seed-expansion generator.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++.
    ///
    /// Small state (32 bytes), passes BigCrush, and — unlike the real
    /// crate's `StdRng` — guaranteed never to change stream between
    /// versions of this shim.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of xoshiro;
            // nudge it onto a valid stream.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait StandardUniform: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformSampled: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_incl: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_incl: Self) -> Self {
                debug_assert!(lo <= hi_incl);
                // Span as u64 (works for every integer type we cover:
                // the two's-complement difference is the unsigned span).
                let span = (hi_incl as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let bound = span + 1;
                // Lemire: multiply-shift with rejection of the biased
                // low zone keeps the draw exactly uniform.
                let threshold = bound.wrapping_neg() % bound;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (bound as u128);
                    if (m as u64) >= threshold {
                        return lo.wrapping_add(((m >> 64) as u64) as $t);
                    }
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_incl: Self) -> Self {
                let u = <$t as StandardUniform>::sample_from(rng);
                lo + u * (hi_incl - lo)
            }
        }
        // For floats the exclusive upper bound is kept as-is: the
        // uniform draw lands exactly on it with probability ~0, and
        // nudging by one ULP buys nothing.
        impl OneLess for $t {
            fn one_less(self) -> Self { self }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument for [`RngExt::random_range`] (mirrors `SampleRange`).
pub trait SampleRange<T> {
    fn bounds(self) -> (T, T, bool);
}

impl<T: UniformSampled> SampleRange<T> for core::ops::Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: UniformSampled> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (s, e) = self.into_inner();
        (s, e, true)
    }
}

macro_rules! impl_one_less {
    ($($t:ty),*) => {$(
        impl OneLess for $t {
            fn one_less(self) -> Self { self - 1 }
        }
    )*};
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait OneLess {
    fn one_less(self) -> Self;
}
impl_one_less!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`RngCore`].
/// (The real crate calls this `Rng`; recent versions re-export it as
/// `RngExt`, which is the name this workspace imports.)
pub trait RngExt: RngCore {
    /// A uniformly random value of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_from(self)
    }

    /// A uniform draw from `range` (empty ranges panic, like `rand`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSampled + OneLess,
        R: SampleRange<T>,
    {
        let (lo, hi, inclusive) = range.bounds();
        let hi_incl = if inclusive {
            hi
        } else {
            assert!(lo < hi, "cannot sample from empty range");
            hi.one_less()
        };
        assert!(lo <= hi_incl, "cannot sample from empty range");
        T::sample_range(self, lo, hi_incl)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Compatibility alias: older call sites use `Rng` for the extension
/// trait.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(1u32..=3);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_range_integers_hit_extremes_eventually() {
        let mut r = StdRng::seed_from_u64(3);
        let mut small = false;
        let mut large = false;
        for _ in 0..10_000 {
            let x = r.random_range(0u64..=u64::MAX);
            small |= x < u64::MAX / 4;
            large |= x > u64::MAX / 4 * 3;
        }
        assert!(small && large);
    }

    #[test]
    fn from_seed_all_zero_is_escaped() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.random::<u64>(), 0);
    }
}
