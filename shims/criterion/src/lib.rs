//! Offline shim for the subset of the `criterion` API this workspace's
//! benches use. The container image has no crates.io access, so the
//! workspace vendors a minimal timing harness instead of the real
//! crate.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed
//! samples, and prints the mean wall-clock time per iteration. There
//! are no statistics, plots, baselines, or CLI filters — the point is
//! that `cargo bench` compiles, runs, and prints comparable numbers
//! offline.
//!
//! This crate is exempt from detlint rule D002 (`Instant::now`): it
//! measures real wall-clock by definition and is never part of the
//! replicated state machine.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim runs one setup
/// per routine invocation regardless of the hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a case by its parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Identify a case by function name and parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    samples: u32,
    /// Mean time per iteration, filled in by `iter`/`iter_batched`.
    mean: Duration,
}

impl Bencher {
    /// Time `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed runs to populate caches/allocators.
        for _ in 0..2 {
            std_black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(routine());
        }
        self.mean = start.elapsed() / self.samples;
    }

    /// Time `routine` over inputs built by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.samples;
    }
}

fn run_one(label: &str, samples: u32, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, mean: Duration::ZERO };
    f(&mut b);
    println!("bench  {label:<48} {:>12.3?} /iter  ({samples} samples)", b.mean);
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u32;
        self
    }

    /// Benchmark one parameterised case.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.samples, |b| f(b, input));
        self
    }

    /// Benchmark one unparameterised case within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.samples, f);
        self
    }

    /// End the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_samples: u32,
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples();
        BenchmarkGroup { name: name.into(), samples, _criterion: self }
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.samples(), f);
        self
    }

    fn samples(&self) -> u32 {
        if self.default_samples == 0 { 20 } else { self.default_samples }
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
