//! Offline shim for the subset of the `proptest` API this workspace
//! uses. The container image has no crates.io access, so the workspace
//! vendors a miniature property-testing harness instead of the real
//! crate.
//!
//! Supported surface: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, `prop_oneof!` (weighted),
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! `Strategy::prop_map`, `Just`, and `prop::collection::vec`.
//!
//! Differences from the real crate, on purpose:
//!
//! * **Deterministic.** Case seeds derive from the test name, so every
//!   run explores the same inputs — a failure in CI reproduces locally
//!   with no `.proptest-regressions` machinery (existing regression
//!   files are kept as documentation but not replayed).
//! * **No shrinking.** A failing case reports its exact inputs
//!   instead; schedules here are short enough to read directly.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{OneLess, RngExt, UniformSampled};

    /// A generator of values of type `Value`.
    ///
    /// Unlike the real crate there is no value tree: `generate` draws a
    /// concrete value directly from the deterministic case RNG.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: UniformSampled + OneLess + Copy> Strategy for core::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.start..self.end)
        }
    }

    impl<T: UniformSampled + OneLess + Copy> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Weighted choice between boxed strategies (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// `options` pairs a relative weight with each branch.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            assert!(
                options.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.random_range(0..total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weight walk exhausted")
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{RngExt, StandardUniform};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    impl<T: StandardUniform> Arbitrary for T {
        fn arbitrary_value(rng: &mut StdRng) -> T {
            rng.random()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`: uniform over its whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max_incl: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_incl: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_incl: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy: length in `size`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max_incl);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration. Only `cases` is meaningful in the shim;
    /// the other fields exist so `..ProptestConfig::default()` spreads
    /// keep compiling against the real crate's field set.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// A failed or rejected test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// FNV-1a over the test name: a stable per-test seed namespace.
    fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive every case of one property test. `case` fills in a
    /// human-readable description of the generated inputs before
    /// running the body, so both assertion failures and panics can
    /// report what input broke.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng, &mut String) -> Result<(), TestCaseError>,
    {
        let base = name_seed(name);
        for i in 0..config.cases {
            let mut rng =
                StdRng::seed_from_u64(base ^ (u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let mut desc = String::new();
            match catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut desc))) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => panic!(
                    "property `{name}` failed at case {i}/{}:\n  {e}\n  inputs: {desc}",
                    config.cases
                ),
                Err(payload) => {
                    eprintln!(
                        "property `{name}` panicked at case {i}/{} with inputs: {desc}",
                        config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real crate's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(arg
/// in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                &($cfg),
                stringify!($name),
                |rng, desc| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    *desc = {
                        let mut parts: ::std::vec::Vec<::std::string::String> =
                            ::std::vec::Vec::new();
                        $(parts.push(::std::format!(
                            "{} = {:?}", stringify!($arg), &$arg
                        ));)+
                        parts.join(", ")
                    };
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure reports the generated
/// inputs instead of unwinding blindly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: both sides equal `{:?}`", l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: both sides equal `{:?}`: {}", l, ::std::format!($($fmt)*)
        );
    }};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs_are_in_bounds(
            x in 3u32..10,
            y in 1u64..=5,
            ops in prop::collection::vec(op_strategy(), 1..20),
            pair in (0u8..4, any::<bool>()),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=5).contains(&y));
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            prop_assert!(pair.0 < 4, "pair {:?} out of range", pair);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u32..100, 5..10);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_property_reports_inputs() {
        // No `#[test]` attribute here: the fn is expanded inside this
        // test's body and invoked directly.
        proptest! {
            #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
            fn always_fails(v in 0u32..4) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
