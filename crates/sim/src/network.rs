//! Network model: link latency distributions, loss, shared-hub contention and
//! partitions.
//!
//! The paper's testbed is a set of head/compute nodes on a single Fast
//! Ethernet (100 Mbit/s, half duplex) hub. We model:
//!
//! * **local** delivery (between two processes on the same node) with a small
//!   constant-ish latency (loopback + IPC cost);
//! * **LAN** delivery (cross-node) with a configurable latency distribution
//!   and drop probability;
//! * optional **shared hub** contention: a single half-duplex medium that
//!   serializes all cross-node transmissions, adding queueing delay under
//!   load (`size / bandwidth` occupancy per frame);
//! * **partitions**: every node carries a partition-group tag; messages
//!   between different groups are silently dropped (as a pulled cable would).

use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::HashMap;

/// Convert a probability in `[0, 1]` to deterministic per-mille (0..=1000).
///
/// Loss knobs are stored as integer per-mille so fault actions and network
/// configs are exactly comparable (`Eq`/`Hash`) and traces never depend on
/// float formatting.
pub fn per_mille(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * 1000.0).round() as u32
}

/// Sample a per-mille probability: true with probability `pm / 1000`.
#[inline]
fn sample_per_mille(rng: &mut StdRng, pm: u32) -> bool {
    rng.random_range(0..1000u32) < pm
}

/// A latency distribution for a link.
#[derive(Clone, Debug)]
pub enum Latency {
    /// Always exactly this value.
    Constant(SimDuration),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Inclusive lower bound.
        min: SimDuration,
        /// Inclusive upper bound.
        max: SimDuration,
    },
    /// Normal distribution (sampled via Irwin–Hall approximation to stay
    /// dependency-light), clamped below at `floor`.
    Normal {
        /// Mean of the distribution.
        mean: SimDuration,
        /// Standard deviation.
        stddev: SimDuration,
        /// Hard lower clamp (a latency cannot be negative or sub-wire).
        floor: SimDuration,
    },
}

impl Latency {
    /// Draw one latency sample.
    pub fn sample(&self, rng: &mut StdRng) -> SimDuration {
        match *self {
            Latency::Constant(d) => d,
            Latency::Uniform { min, max } => {
                if max <= min {
                    min
                } else {
                    SimDuration::from_nanos(rng.random_range(min.as_nanos()..=max.as_nanos()))
                }
            }
            Latency::Normal { mean, stddev, floor } => {
                // Irwin–Hall: sum of 12 U(0,1) minus 6 approximates N(0,1).
                let mut z = -6.0f64;
                for _ in 0..12 {
                    z += rng.random::<f64>();
                }
                let ns = mean.as_nanos() as f64 + z * stddev.as_nanos() as f64;
                let ns = ns.max(floor.as_nanos() as f64);
                SimDuration::from_nanos(ns as u64)
            }
        }
    }

    /// The mean of the distribution (exact for all variants).
    pub fn mean(&self) -> SimDuration {
        match *self {
            Latency::Constant(d) => d,
            Latency::Uniform { min, max } => SimDuration::from_nanos(
                (min.as_nanos() / 2).saturating_add(max.as_nanos() / 2),
            ),
            Latency::Normal { mean, .. } => mean,
        }
    }
}

/// Configuration of one class of link.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Propagation + stack latency distribution.
    pub latency: Latency,
    /// Probability that a message is silently lost, in per-mille
    /// (0..=1000; see [`per_mille`]).
    pub drop_prob: u32,
    /// Per-link serialization bandwidth. `None` means infinitely fast
    /// (transmission time is folded into `latency`).
    pub bandwidth_bytes_per_sec: Option<u64>,
}

impl LinkConfig {
    /// A perfectly reliable constant-latency link.
    pub fn constant(latency: SimDuration) -> Self {
        LinkConfig {
            latency: Latency::Constant(latency),
            drop_prob: 0,
            bandwidth_bytes_per_sec: None,
        }
    }
}

/// Shared-medium (hub) contention model.
#[derive(Clone, Debug)]
pub struct HubConfig {
    /// Raw medium bandwidth (100 Mbit/s Fast Ethernet ≈ 12_500_000 B/s).
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed per-frame overhead occupying the medium (preamble, IFG, CSMA/CD
    /// back-off budget), independent of payload size.
    pub per_frame_overhead: SimDuration,
}

impl HubConfig {
    /// 100 Mbit/s half-duplex Fast Ethernet hub, as in the paper's testbed.
    pub fn fast_ethernet() -> Self {
        HubConfig {
            bandwidth_bytes_per_sec: 12_500_000,
            per_frame_overhead: SimDuration::from_micros(10),
        }
    }
}

/// Full network configuration.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Same-node process-to-process delivery.
    pub local: LinkConfig,
    /// Cross-node delivery.
    pub lan: LinkConfig,
    /// Optional shared-hub contention for cross-node messages.
    pub hub: Option<HubConfig>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        // Loosely calibrated to a 2006-era Fast-Ethernet Beowulf LAN:
        // ~60us loopback, ~220us +/- jitter cross-node UDP round.
        NetworkConfig {
            local: LinkConfig {
                latency: Latency::Uniform {
                    min: SimDuration::from_micros(40),
                    max: SimDuration::from_micros(80),
                },
                drop_prob: 0,
                bandwidth_bytes_per_sec: None,
            },
            lan: LinkConfig {
                latency: Latency::Normal {
                    mean: SimDuration::from_micros(220),
                    stddev: SimDuration::from_micros(40),
                    floor: SimDuration::from_micros(90),
                },
                drop_prob: 0,
                bandwidth_bytes_per_sec: None,
            },
            hub: Some(HubConfig::fast_ethernet()),
        }
    }
}

impl NetworkConfig {
    /// An ideal network: zero loss, tiny constant latencies, no contention.
    /// Useful for protocol unit tests where timing is irrelevant.
    pub fn ideal() -> Self {
        NetworkConfig {
            local: LinkConfig::constant(SimDuration::from_micros(1)),
            lan: LinkConfig::constant(SimDuration::from_micros(10)),
            hub: None,
        }
    }

    /// A lossy LAN for stress-testing retransmission logic (`drop_prob` is
    /// a probability in `[0, 1]`, converted to per-mille internally).
    pub fn lossy(drop_prob: f64) -> Self {
        let mut cfg = NetworkConfig::ideal();
        cfg.lan.drop_prob = per_mille(drop_prob);
        cfg
    }
}

/// The verdict the network model gives for one message send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Deliver after this total delay (queueing + transmission + latency).
    Deliver(SimDuration),
    /// Silently dropped (loss or partition).
    Drop(DropReason),
}

/// Why a message was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss on the link.
    Loss,
    /// Sender and receiver are in different partition groups.
    Partition,
    /// Source or destination node is crashed.
    DeadNode,
}

/// Mutable network state owned by the world.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    /// Partition group per node; nodes talk only within their group.
    groups: HashMap<NodeId, u32>,
    /// Extra drop probability per directed node pair (e.g. a flaky cable),
    /// in per-mille.
    pair_loss: HashMap<(NodeId, NodeId), u32>,
    /// When the shared hub becomes free again.
    hub_free_at: SimTime,
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages dropped by random loss.
    pub dropped_loss: u64,
    /// Messages dropped at partition boundaries.
    pub dropped_partition: u64,
    /// Total payload bytes transmitted cross-node.
    pub bytes_sent: u64,
}

impl Network {
    /// Create network state from a configuration.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            groups: HashMap::new(),
            pair_loss: HashMap::new(),
            hub_free_at: SimTime::ZERO,
            sent: 0,
            dropped_loss: 0,
            dropped_partition: 0,
            bytes_sent: 0,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Put `node` into partition group `group`. Nodes in different groups
    /// cannot exchange messages. All nodes start in group 0.
    pub fn set_partition_group(&mut self, node: NodeId, group: u32) {
        self.groups.insert(node, group);
    }

    /// Heal all partitions (everyone back to group 0).
    pub fn heal_partitions(&mut self) {
        self.groups.clear();
    }

    /// Partition group of a node.
    pub fn group_of(&self, node: NodeId) -> u32 {
        self.groups.get(&node).copied().unwrap_or(0)
    }

    /// Set an extra directed loss probability between two nodes, in
    /// per-mille (0..=1000; 0 removes the entry, values above 1000 clamp).
    pub fn set_pair_loss(&mut self, from: NodeId, to: NodeId, pm: u32) {
        if pm == 0 {
            self.pair_loss.remove(&(from, to));
        } else {
            self.pair_loss.insert((from, to), pm.min(1000));
        }
    }

    /// Decide the fate of one message of `bytes` payload sent at `now` from
    /// `from_node` to `to_node`.
    pub fn route(
        &mut self,
        rng: &mut StdRng,
        now: SimTime,
        from_node: NodeId,
        to_node: NodeId,
        bytes: u32,
    ) -> Outcome {
        self.sent += 1;
        if from_node == to_node {
            let link = self.config.local.clone();
            return self.through_link(rng, &link, bytes, SimDuration::ZERO);
        }
        if self.group_of(from_node) != self.group_of(to_node) {
            self.dropped_partition += 1;
            return Outcome::Drop(DropReason::Partition);
        }
        if let Some(&pm) = self.pair_loss.get(&(from_node, to_node)) {
            if sample_per_mille(rng, pm) {
                self.dropped_loss += 1;
                return Outcome::Drop(DropReason::Loss);
            }
        }
        // Shared-hub queueing: the frame occupies the medium for
        // overhead + bytes/bandwidth starting when the hub is next free.
        let queueing = if let Some(hub) = &self.config.hub {
            let start = self.hub_free_at.max(now);
            let tx = SimDuration::from_nanos(
                (bytes as u64).saturating_mul(1_000_000_000) / hub.bandwidth_bytes_per_sec,
            ) + hub.per_frame_overhead;
            self.hub_free_at = start + tx;
            (start + tx) - now
        } else {
            SimDuration::ZERO
        };
        self.bytes_sent += bytes as u64;
        let link = self.config.lan.clone();
        self.through_link(rng, &link, bytes, queueing)
    }

    fn through_link(
        &mut self,
        rng: &mut StdRng,
        link: &LinkConfig,
        bytes: u32,
        queueing: SimDuration,
    ) -> Outcome {
        if link.drop_prob > 0 && sample_per_mille(rng, link.drop_prob) {
            self.dropped_loss += 1;
            return Outcome::Drop(DropReason::Loss);
        }
        let mut delay = link.latency.sample(rng) + queueing;
        if let Some(bw) = link.bandwidth_bytes_per_sec {
            delay += SimDuration::from_nanos((bytes as u64).saturating_mul(1_000_000_000) / bw);
        }
        Outcome::Deliver(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn constant_latency_is_constant() {
        let l = Latency::Constant(SimDuration::from_millis(3));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(l.sample(&mut r), SimDuration::from_millis(3));
        }
    }

    #[test]
    fn uniform_latency_in_range() {
        let min = SimDuration::from_micros(100);
        let max = SimDuration::from_micros(200);
        let l = Latency::Uniform { min, max };
        let mut r = rng();
        for _ in 0..1000 {
            let s = l.sample(&mut r);
            assert!(s >= min && s <= max);
        }
    }

    #[test]
    fn normal_latency_respects_floor() {
        let l = Latency::Normal {
            mean: SimDuration::from_micros(100),
            stddev: SimDuration::from_micros(100),
            floor: SimDuration::from_micros(50),
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(l.sample(&mut r) >= SimDuration::from_micros(50));
        }
    }

    #[test]
    fn normal_latency_mean_close() {
        let l = Latency::Normal {
            mean: SimDuration::from_micros(500),
            stddev: SimDuration::from_micros(50),
            floor: SimDuration::ZERO,
        };
        let mut r = rng();
        let n = 5000u64;
        let total: u64 = (0..n).map(|_| l.sample(&mut r).as_nanos()).sum();
        let mean = total / n;
        assert!((mean as i64 - 500_000).unsigned_abs() < 10_000, "mean={mean}");
    }

    #[test]
    fn partition_drops_cross_group() {
        let mut net = Network::new(NetworkConfig::ideal());
        let mut r = rng();
        net.set_partition_group(NodeId(1), 1);
        let out = net.route(&mut r, SimTime::ZERO, NodeId(0), NodeId(1), 100);
        assert_eq!(out, Outcome::Drop(DropReason::Partition));
        // Same group is fine.
        let out = net.route(&mut r, SimTime::ZERO, NodeId(0), NodeId(2), 100);
        assert!(matches!(out, Outcome::Deliver(_)));
        net.heal_partitions();
        let out = net.route(&mut r, SimTime::ZERO, NodeId(0), NodeId(1), 100);
        assert!(matches!(out, Outcome::Deliver(_)));
    }

    #[test]
    fn local_messages_ignore_partitions() {
        // Two processes on the same node keep talking even when the node is
        // partitioned away from the rest of the LAN.
        let mut net = Network::new(NetworkConfig::ideal());
        let mut r = rng();
        net.set_partition_group(NodeId(3), 9);
        let out = net.route(&mut r, SimTime::ZERO, NodeId(3), NodeId(3), 64);
        assert!(matches!(out, Outcome::Deliver(_)));
    }

    #[test]
    fn pair_loss_applies() {
        let mut net = Network::new(NetworkConfig::ideal());
        let mut r = rng();
        net.set_pair_loss(NodeId(0), NodeId(1), 1000);
        assert_eq!(
            net.route(&mut r, SimTime::ZERO, NodeId(0), NodeId(1), 10),
            Outcome::Drop(DropReason::Loss)
        );
        // Reverse direction unaffected.
        assert!(matches!(
            net.route(&mut r, SimTime::ZERO, NodeId(1), NodeId(0), 10),
            Outcome::Deliver(_)
        ));
        net.set_pair_loss(NodeId(0), NodeId(1), 0);
        assert!(matches!(
            net.route(&mut r, SimTime::ZERO, NodeId(0), NodeId(1), 10),
            Outcome::Deliver(_)
        ));
    }

    #[test]
    fn hub_serializes_back_to_back_frames() {
        let mut cfg = NetworkConfig::ideal();
        cfg.hub = Some(HubConfig {
            bandwidth_bytes_per_sec: 1_000_000, // 1 MB/s: 1000 bytes = 1ms
            per_frame_overhead: SimDuration::ZERO,
        });
        let mut net = Network::new(cfg);
        let mut r = rng();
        let d1 = match net.route(&mut r, SimTime::ZERO, NodeId(0), NodeId(1), 1000) {
            Outcome::Deliver(d) => d,
            other => panic!("{other:?}"),
        };
        let d2 = match net.route(&mut r, SimTime::ZERO, NodeId(2), NodeId(3), 1000) {
            Outcome::Deliver(d) => d,
            other => panic!("{other:?}"),
        };
        // Second frame had to wait for the first one's transmission slot.
        assert!(d2 > d1);
        assert!(d2 - d1 >= SimDuration::from_micros(900));
    }

    #[test]
    fn hub_idle_time_does_not_accumulate() {
        let mut cfg = NetworkConfig::ideal();
        cfg.hub = Some(HubConfig {
            bandwidth_bytes_per_sec: 1_000_000,
            per_frame_overhead: SimDuration::ZERO,
        });
        let mut net = Network::new(cfg);
        let mut r = rng();
        let _ = net.route(&mut r, SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        // Much later the hub is long idle: no queueing delay.
        let later = SimTime::ZERO + SimDuration::from_secs(1);
        let d = match net.route(&mut r, later, NodeId(0), NodeId(1), 1000) {
            Outcome::Deliver(d) => d,
            other => panic!("{other:?}"),
        };
        assert!(d < SimDuration::from_millis(2));
    }

    #[test]
    fn per_mille_rounds_and_clamps() {
        assert_eq!(per_mille(0.0), 0);
        assert_eq!(per_mille(0.05), 50);
        assert_eq!(per_mille(0.5), 500);
        assert_eq!(per_mille(1.0), 1000);
        assert_eq!(per_mille(2.5), 1000);
        assert_eq!(per_mille(-0.3), 0);
        assert_eq!(per_mille(0.0004), 0);
        assert_eq!(per_mille(0.0006), 1);
    }

    #[test]
    fn counters_track_traffic() {
        let mut net = Network::new(NetworkConfig::lossy(1.0));
        let mut r = rng();
        let _ = net.route(&mut r, SimTime::ZERO, NodeId(0), NodeId(1), 10);
        assert_eq!(net.sent, 1);
        assert_eq!(net.dropped_loss, 1);
    }
}
