//! Deterministic per-node simulated disk.
//!
//! Each node owns one [`SimDisk`] that **survives `CrashNode`/`ReviveNode`**:
//! crashing a node loses only the volatile (page-cache) portion of every
//! file, exactly like pulling the power cord on a real machine. Durability
//! is modelled explicitly:
//!
//! * [`SimDisk::append`] writes into a volatile tail (the OS page cache);
//! * [`SimDisk::fsync`] moves the volatile tail onto the durable platter;
//! * [`SimDisk::on_crash`] (called by the world on `CrashNode`) discards
//!   every volatile tail and applies any armed torn-write damage.
//!
//! Fault hooks ([`SimDisk::arm_torn_write`], [`SimDisk::corrupt_byte`],
//! [`SimDisk::stall_until`]) give fault plans byte-precise control over the
//! failure modes a write-ahead log must survive: torn tails, silent media
//! corruption, and a device that stops acknowledging flushes.
//!
//! The disk consumes no randomness and no virtual time of its own (stalls
//! compare against a caller-supplied `now`), so it adds nothing to the
//! deterministic schedule.

use crate::time::SimTime;
use std::collections::BTreeMap;

/// One file's on-disk state: a durable prefix plus a volatile tail.
#[derive(Debug, Default, Clone)]
struct FileState {
    /// Bytes that survive a power loss.
    durable: Vec<u8>,
    /// Durable length *before* the most recent fsync batch landed. A torn
    /// write may roll the file back to this floor plus a partial tail.
    synced_floor: usize,
    /// Appended but not yet fsynced bytes (lost on crash).
    volatile: Vec<u8>,
}

/// A deterministic simulated disk with explicit write/fsync semantics.
///
/// Files are named by flat string paths. All operations are infallible in
/// the absence of injected faults; the only observable failures are the
/// ones a fault plan scripts.
#[derive(Debug, Default)]
pub struct SimDisk {
    files: BTreeMap<String, FileState>,
    /// Armed torn-write damage: on the next crash, the most recently
    /// fsynced batch keeps only this many bytes.
    armed_torn: Option<u32>,
    /// Path of the file that most recently completed an fsync (torn-write
    /// damage lands there).
    last_fsynced: Option<String>,
    /// While `now < stalled_until`, fsync is a silent no-op.
    stalled_until: Option<SimTime>,
    /// Number of `append` calls.
    pub appends: u64,
    /// Number of effective (non-stalled) `fsync` calls.
    pub fsyncs: u64,
    /// Number of fsyncs swallowed by an injected stall.
    pub stalled_fsyncs: u64,
    /// Number of crashes that applied torn-write damage.
    pub torn_truncations: u64,
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes to a file's volatile tail, creating the file if needed.
    pub fn append(&mut self, path: &str, bytes: &[u8]) {
        self.appends += 1;
        self.files
            .entry(path.to_string())
            .or_default()
            .volatile
            .extend_from_slice(bytes);
    }

    /// Flush a file's volatile tail to durable storage.
    ///
    /// Returns `true` when the data is durable, `false` when an injected
    /// stall swallowed the flush (the data stays volatile and is lost on
    /// crash). Syncing a missing or already-clean file is a successful
    /// no-op.
    pub fn fsync(&mut self, path: &str, now: SimTime) -> bool {
        if let Some(until) = self.stalled_until {
            if now < until {
                self.stalled_fsyncs += 1;
                return false;
            }
            self.stalled_until = None;
        }
        if let Some(f) = self.files.get_mut(path) {
            if !f.volatile.is_empty() {
                f.synced_floor = f.durable.len();
                let tail = std::mem::take(&mut f.volatile);
                f.durable.extend_from_slice(&tail);
                self.last_fsynced = Some(path.to_string());
                self.fsyncs += 1;
            }
        }
        true
    }

    /// Read a file as the OS would see it: durable prefix plus volatile
    /// tail. `None` if the file does not exist.
    pub fn read(&self, path: &str) -> Option<Vec<u8>> {
        self.files.get(path).map(|f| {
            let mut out = f.durable.clone();
            out.extend_from_slice(&f.volatile);
            out
        })
    }

    /// Length of the durable prefix (what a post-crash read would return).
    pub fn durable_len(&self, path: &str) -> usize {
        self.files.get(path).map_or(0, |f| f.durable.len())
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Paths of every file on the disk, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Truncate a file (durable and volatile views) to `len` bytes total.
    /// Truncation is treated as a durable metadata operation.
    pub fn truncate(&mut self, path: &str, len: usize) {
        if let Some(f) = self.files.get_mut(path) {
            if len <= f.durable.len() {
                f.durable.truncate(len);
                f.volatile.clear();
            } else {
                f.volatile.truncate(len - f.durable.len());
            }
            f.synced_floor = f.synced_floor.min(f.durable.len());
        }
    }

    /// Remove a file. Removal is a durable metadata operation.
    pub fn remove(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Atomically rename a file, fsyncing its content first (the classic
    /// write-temp / fsync / rename durable-publish idiom collapses to one
    /// call here). Overwrites any existing destination.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        let Some(mut f) = self.files.remove(from) else {
            return false;
        };
        if !f.volatile.is_empty() {
            f.synced_floor = f.durable.len();
            let tail = std::mem::take(&mut f.volatile);
            f.durable.extend_from_slice(&tail);
        }
        if self.last_fsynced.as_deref() == Some(from) {
            self.last_fsynced = Some(to.to_string());
        }
        self.files.insert(to.to_string(), f);
        true
    }

    // ------------------------------------------------------------------
    // Fault hooks (driven by `FaultAction`)
    // ------------------------------------------------------------------

    /// Arm torn-write damage: on the next crash, the most recently fsynced
    /// batch of the most recently fsynced file keeps only `keep_bytes`
    /// bytes (the rest of that batch never reached the platter).
    pub fn arm_torn_write(&mut self, keep_bytes: u32) {
        self.armed_torn = Some(keep_bytes);
    }

    /// Flip every bit of one durable byte (silent media corruption).
    /// Returns `false` when the file is missing or `offset` is past its
    /// durable length.
    pub fn corrupt_byte(&mut self, path: &str, offset: u64) -> bool {
        let Some(f) = self.files.get_mut(path) else {
            return false;
        };
        let Ok(idx) = usize::try_from(offset) else {
            return false;
        };
        match f.durable.get_mut(idx) {
            Some(b) => {
                *b ^= 0xFF;
                true
            }
            None => false,
        }
    }

    /// Stall the device: until virtual time `until`, every fsync is a
    /// silent no-op (data stays volatile).
    pub fn stall_until(&mut self, until: SimTime) {
        self.stalled_until = Some(until);
    }

    /// Whether the device is stalled at `now`.
    pub fn is_stalled(&self, now: SimTime) -> bool {
        self.stalled_until.is_some_and(|until| now < until)
    }

    /// Power loss: every volatile tail vanishes, and any armed torn write
    /// rolls the last fsynced batch back to a partial prefix. Called by the
    /// world on `CrashNode`; the durable content survives for the next
    /// incarnation to recover from.
    pub fn on_crash(&mut self) {
        for f in self.files.values_mut() {
            f.volatile.clear();
        }
        if let Some(keep) = self.armed_torn.take() {
            if let Some(path) = self.last_fsynced.take() {
                if let Some(f) = self.files.get_mut(&path) {
                    let batch = f.durable.len() - f.synced_floor;
                    let keep = usize::try_from(keep).unwrap_or(usize::MAX).min(batch);
                    f.durable.truncate(f.synced_floor + keep);
                    self.torn_truncations += 1;
                }
            }
        }
        self.stalled_until = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn append_without_fsync_is_lost_on_crash() {
        let mut d = SimDisk::new();
        d.append("wal", b"hello");
        assert_eq!(d.read("wal").unwrap(), b"hello");
        d.on_crash();
        assert_eq!(d.read("wal").unwrap(), b"");
    }

    #[test]
    fn fsynced_data_survives_crash() {
        let mut d = SimDisk::new();
        d.append("wal", b"hello");
        assert!(d.fsync("wal", T0));
        d.append("wal", b" world");
        d.on_crash();
        assert_eq!(d.read("wal").unwrap(), b"hello");
        assert_eq!(d.durable_len("wal"), 5);
    }

    #[test]
    fn torn_write_keeps_partial_last_batch() {
        let mut d = SimDisk::new();
        d.append("wal", b"aaaa");
        assert!(d.fsync("wal", T0));
        d.append("wal", b"bbbb");
        assert!(d.fsync("wal", T0));
        d.arm_torn_write(2);
        d.on_crash();
        // First batch intact, second batch torn to 2 bytes.
        assert_eq!(d.read("wal").unwrap(), b"aaaabb");
        assert_eq!(d.torn_truncations, 1);
        // Damage fires once.
        d.append("wal", b"cc");
        assert!(d.fsync("wal", T0));
        d.on_crash();
        assert_eq!(d.read("wal").unwrap(), b"aaaabbcc");
    }

    #[test]
    fn stall_swallows_fsync_until_expiry() {
        let mut d = SimDisk::new();
        let later = T0 + SimDuration::from_secs(5);
        d.stall_until(later);
        d.append("wal", b"xx");
        assert!(!d.fsync("wal", T0));
        assert!(d.is_stalled(T0));
        assert_eq!(d.stalled_fsyncs, 1);
        // After the stall expires the same call succeeds.
        assert!(d.fsync("wal", later));
        d.on_crash();
        assert_eq!(d.read("wal").unwrap(), b"xx");
    }

    #[test]
    fn corrupt_byte_flips_durable_bits() {
        let mut d = SimDisk::new();
        d.append("f", &[0x00, 0x0F]);
        assert!(d.fsync("f", T0));
        assert!(d.corrupt_byte("f", 1));
        assert_eq!(d.read("f").unwrap(), vec![0x00, 0xF0]);
        // Out of durable range / missing file are reported.
        assert!(!d.corrupt_byte("f", 2));
        assert!(!d.corrupt_byte("nope", 0));
    }

    #[test]
    fn rename_publishes_durably() {
        let mut d = SimDisk::new();
        d.append("snap.tmp", b"state");
        assert!(d.rename("snap.tmp", "snap"));
        assert!(!d.exists("snap.tmp"));
        d.on_crash();
        assert_eq!(d.read("snap").unwrap(), b"state");
    }

    #[test]
    fn truncate_is_durable_metadata() {
        let mut d = SimDisk::new();
        d.append("wal", b"abcdef");
        assert!(d.fsync("wal", T0));
        d.truncate("wal", 3);
        d.on_crash();
        assert_eq!(d.read("wal").unwrap(), b"abc");
    }

    #[test]
    fn paths_and_remove() {
        let mut d = SimDisk::new();
        d.append("b", b"1");
        d.append("a", b"2");
        assert_eq!(d.paths(), vec!["a".to_string(), "b".to_string()]);
        assert!(d.remove("a"));
        assert!(!d.remove("a"));
        d.on_crash();
        assert!(!d.exists("a"));
    }
}
