//! Measurement utilities: duration histograms with quantiles and counters.
//!
//! These are simulation-side metrics (virtual-time latencies, message
//! counts), not host-side profiling. The histogram keeps raw samples —
//! experiments here record at most a few hundred thousand points, so exact
//! quantiles are affordable and simpler than a sketch.

use crate::time::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// Exact-quantile histogram of durations.
#[derive(Clone, Debug, Default)]
pub struct DurationHistogram {
    samples: Vec<SimDuration>,
    sorted: bool,
}

impl DurationHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Quantile `q` in [0, 1] (nearest-rank). `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        Some(self.samples[idx])
    }

    /// Arithmetic mean. `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        Some(SimDuration::from_nanos((total / self.samples.len() as u128) as u64))
    }

    /// Smallest sample.
    pub fn min(&mut self) -> Option<SimDuration> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// Largest sample.
    pub fn max(&mut self) -> Option<SimDuration> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Summary snapshot (mean/p50/p90/p99/min/max).
    pub fn summary(&mut self) -> HistogramSummary {
        HistogramSummary {
            count: self.len(),
            mean: self.mean().unwrap_or(SimDuration::ZERO),
            p50: self.quantile(0.50).unwrap_or(SimDuration::ZERO),
            p90: self.quantile(0.90).unwrap_or(SimDuration::ZERO),
            p99: self.quantile(0.99).unwrap_or(SimDuration::ZERO),
            min: self.min().unwrap_or(SimDuration::ZERO),
            max: self.max().unwrap_or(SimDuration::ZERO),
        }
    }

    /// All samples (unsorted order of recording is not preserved once a
    /// quantile has been asked for).
    pub fn samples(&self) -> &[SimDuration] {
        &self.samples
    }
}

/// Point-in-time summary of a histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Minimum.
    pub min: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p90={} p99={} min={} max={}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.min, self.max
        )
    }
}

/// Named integer counters.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.map.entry(name).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterate counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let mut h = DurationHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
    }

    #[test]
    fn quantiles_exact() {
        let mut h = DurationHistogram::new();
        // Insert 1..=100 ms shuffled-ish.
        for i in (1..=100u64).rev() {
            h.record(SimDuration::from_millis(i));
        }
        assert_eq!(h.quantile(0.0), Some(SimDuration::from_millis(1)));
        assert_eq!(h.quantile(1.0), Some(SimDuration::from_millis(100)));
        let p50 = h.quantile(0.5).unwrap().as_millis();
        assert!((50..=51).contains(&p50));
        assert_eq!(h.mean(), Some(SimDuration::from_nanos(50_500_000)));
        assert_eq!(h.min(), Some(SimDuration::from_millis(1)));
        assert_eq!(h.max(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn recording_after_sorting_is_fine() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_millis(10));
        let _ = h.quantile(0.5);
        h.record(SimDuration::from_millis(1));
        assert_eq!(h.min(), Some(SimDuration::from_millis(1)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn summary_display_is_readable() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_millis(5));
        let text = h.summary().to_string();
        assert!(text.contains("n=1"));
        assert!(text.contains("mean=5.000ms"));
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.incr("a");
        c.add("a", 4);
        c.incr("b");
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("missing"), 0);
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all, vec![("a", 5), ("b", 1)]);
    }
}
