//! Structured event trace for debugging and test assertions.
//!
//! Tracing is off by default (zero cost beyond a branch); tests and the
//! failure-matrix harness enable it to assert on protocol behaviour.

use crate::ids::{NodeId, ProcId};
use crate::time::SimTime;
use std::collections::VecDeque;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // fields are self-describing sender/receiver pairs
pub enum TraceEvent {
    /// A message was handed to the network.
    Sent { from: ProcId, to: ProcId, bytes: u32 },
    /// A message reached its destination process.
    Delivered { from: ProcId, to: ProcId },
    /// A message was dropped by the network model.
    Dropped { from: ProcId, to: ProcId, reason: &'static str },
    /// A process or node crashed.
    Crashed { node: NodeId, proc: Option<ProcId> },
    /// A node came back.
    Revived { node: NodeId },
    /// Partition membership changed.
    Partitioned { node: NodeId, group: u32 },
    /// Free-form note from a process (via `Ctx::trace`).
    Note { proc: ProcId, text: String },
}

/// A timestamped trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// Bounded in-memory trace buffer.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    /// Total records ever pushed (including evicted ones).
    pushed: u64,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            records: VecDeque::new(),
            pushed: 0,
        }
    }

    /// An enabled trace keeping at most `capacity` most-recent records.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            pushed: 0,
        }
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event (no-op when disabled).
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.pushed += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord { at, event });
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Total number of records ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Count retained records matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }

    /// Drop all retained records (counters keep running).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.push(SimTime::ZERO, TraceEvent::Revived { node: NodeId(0) });
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.total_pushed(), 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5u32 {
            t.push(SimTime::ZERO, TraceEvent::Partitioned { node: NodeId(i), group: i });
        }
        assert_eq!(t.records().count(), 2);
        assert_eq!(t.total_pushed(), 5);
        let nodes: Vec<_> = t
            .records()
            .map(|r| match r.event {
                TraceEvent::Partitioned { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![3, 4]);
    }

    #[test]
    fn count_filters() {
        let mut t = Trace::with_capacity(16);
        t.push(SimTime::ZERO, TraceEvent::Revived { node: NodeId(1) });
        t.push(SimTime::ZERO, TraceEvent::Crashed { node: NodeId(1), proc: None });
        t.push(SimTime::ZERO, TraceEvent::Revived { node: NodeId(2) });
        assert_eq!(t.count(|e| matches!(e, TraceEvent::Revived { .. })), 2);
    }
}
