//! Virtual time for the discrete-event simulation.
//!
//! All simulation time is kept as integer nanoseconds since the start of the
//! simulation. Integer time makes event ordering exact and the simulation
//! bit-for-bit reproducible across runs and platforms (no floating-point
//! accumulation drift).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since an earlier instant. Saturates at zero if
    /// `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Seconds since simulation start as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    /// Intended for configuration, not for hot-path arithmetic.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn format_nanos(ns: u64) -> String {
    if ns == u64::MAX {
        "inf".to_string()
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t - d).as_nanos(), 60);
        assert_eq!(((t + d) - t).as_nanos(), 40);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).since(t).as_nanos(), 40);
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime::from_nanos(10);
        assert_eq!((t - SimDuration::from_nanos(100)).as_nanos(), 0);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_nanos(1).saturating_sub(SimDuration::from_nanos(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_millis(), 30);
        assert_eq!((d / 2).as_millis(), 5);
        assert!((d.as_millis_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_nanos(7)),
            Some(SimTime::from_nanos(7))
        );
    }
}
