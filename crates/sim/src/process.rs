//! The actor abstraction: deterministic state machines driven by the world.
//!
//! A [`Process`] owns its protocol state and reacts to three stimuli:
//! start-up, message delivery, and timer expiry. All interaction with the
//! outside (sending, timers, randomness, measurement) goes through the
//! [`Ctx`] handle, which keeps the state machines free of I/O and makes the
//! whole simulation deterministic and single-steppable.

use crate::disk::SimDisk;
use crate::ids::{NodeId, ProcId, TimerId};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;
use crate::world::World;
use rand::rngs::StdRng;
use std::any::Any;

/// Dynamically typed message payload. Receivers downcast to the concrete
/// protocol message type they expect.
pub type Msg = Box<dyn Any>;

/// Sender id used for messages injected from outside the simulation
/// (harness code poking a process directly).
pub const EXTERNAL: ProcId = ProcId(u32::MAX);

/// A deterministic actor.
pub trait Process: Any {
    /// Called once, when the process is added to the world.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Msg);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerId, _tag: u64) {}
}

impl dyn Process {
    /// Downcast a process trait object to a concrete type.
    pub fn downcast_ref<T: Process>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref::<T>()
    }

    /// Downcast a process trait object to a concrete type, mutably.
    pub fn downcast_mut<T: Process>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut::<T>()
    }
}

/// Execution context handed to a process while it handles an event.
pub struct Ctx<'a> {
    pub(crate) world: &'a mut World,
    pub(crate) me: ProcId,
}

impl Ctx<'_> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// This process' id.
    #[inline]
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// The node this process runs on.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.world.node_of(self.me)
    }

    /// Deterministic random number generator (shared by the whole world,
    /// consumption order is part of the deterministic schedule).
    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        self.world.rng()
    }

    /// Send a message with the default wire size (512 bytes).
    pub fn send<M: Any>(&mut self, to: ProcId, msg: M) {
        self.send_sized(to, msg, 512);
    }

    /// Send a message, declaring its wire size for the bandwidth/hub model.
    pub fn send_sized<M: Any>(&mut self, to: ProcId, msg: M, bytes: u32) {
        self.world.route_message(self.me, to, Box::new(msg), bytes, SimDuration::ZERO);
    }

    /// Send a message after an extra sender-side processing delay — models
    /// CPU cost of producing the message without a separate timer dance.
    pub fn send_after<M: Any>(&mut self, to: ProcId, msg: M, delay: SimDuration) {
        self.world.route_message(self.me, to, Box::new(msg), 512, delay);
    }

    /// Send with both explicit size and sender-side delay.
    pub fn send_sized_after<M: Any>(
        &mut self,
        to: ProcId,
        msg: M,
        bytes: u32,
        delay: SimDuration,
    ) {
        self.world.route_message(self.me, to, Box::new(msg), bytes, delay);
    }

    /// Arm a one-shot timer; `tag` is returned to `on_timer` for
    /// multiplexing several logical timers in one process.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.world.set_timer(self.me, delay, tag)
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.world.cancel_timer(timer);
    }

    /// Publish a value to the harness (drained via `World::take_emitted`).
    pub fn emit<T: Any>(&mut self, value: T) {
        self.world.push_emitted(self.me, Box::new(value));
    }

    /// Leave a free-form note in the trace buffer.
    pub fn trace(&mut self, text: impl Into<String>) {
        let me = self.me;
        let now = self.now();
        self.world
            .trace_mut()
            .push(now, TraceEvent::Note { proc: me, text: text.into() });
    }

    /// Voluntarily stop this process (it receives no further events).
    pub fn exit(&mut self) {
        self.world.kill_proc(self.me);
    }

    /// Whether another process is currently alive. Protocols normally must
    /// not rely on this oracle (they use failure detectors); it exists for
    /// harness/test processes.
    pub fn is_alive(&self, p: ProcId) -> bool {
        self.world.is_proc_alive(p)
    }

    /// This node's simulated disk.
    pub fn disk(&self) -> &SimDisk {
        self.world.disk(self.world.node_of(self.me))
    }

    /// This node's simulated disk, mutable.
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        let node = self.world.node_of(self.me);
        self.world.disk_mut(node)
    }

    /// Fsync a file on this node's disk at the current virtual time
    /// (honours injected disk stalls). Returns `true` when durable.
    pub fn fsync(&mut self, path: &str) -> bool {
        let now = self.world.now();
        let node = self.world.node_of(self.me);
        self.world.disk_mut(node).fsync(path, now)
    }

    /// This process' incarnation (1 unless it has been restarted).
    pub fn incarnation(&self) -> u32 {
        self.world.proc_incarnation(self.me)
    }
}
