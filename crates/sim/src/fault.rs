//! Declarative fault plans.
//!
//! The paper's functional evaluation "simulated failures by unplugging
//! network cables and by forcibly shutting down individual processes". A
//! [`FaultPlan`] scripts exactly those actions at precise virtual times, so
//! failure experiments are reproducible and assertable.

use crate::ids::{NodeId, ProcId};
use crate::network::per_mille;
use crate::time::{SimDuration, SimTime};
use crate::world::World;

/// One scripted fault (or repair) action.
///
/// All parameters are exact integers, so actions derive `Eq`/`Hash` and
/// fault plans are exactly comparable in traces and model-checker states.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Power off a node: every process on it dies instantly.
    CrashNode(NodeId),
    /// Kill one process (daemon) only.
    KillProc(ProcId),
    /// Bring a crashed node's hardware back (processes must be restarted by
    /// the harness separately).
    ReviveNode(NodeId),
    /// Move a node into partition group `group` (unplug / replug cables).
    Partition {
        /// The node to move.
        node: NodeId,
        /// Its new partition group.
        group: u32,
    },
    /// Remove all partitions.
    HealPartitions,
    /// Set a directed message-loss probability between two nodes.
    PairLoss {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Loss probability in per-mille (0..=1000); see
        /// [`FaultAction::pair_loss`] for an `f64` convenience constructor.
        per_mille: u32,
    },
    /// Arm torn-write damage on a node's disk: the next crash rolls the
    /// most recently fsynced batch back to a `keep_bytes` prefix.
    TornWrite {
        /// The node whose disk is damaged.
        node: NodeId,
        /// Bytes of the last fsync batch that actually reach the platter.
        keep_bytes: u32,
    },
    /// Flip one durable byte on a node's disk (silent media corruption).
    CorruptRecord {
        /// The node whose disk is damaged.
        node: NodeId,
        /// File to corrupt.
        file: String,
        /// Byte offset within the file's durable content.
        offset: u64,
    },
    /// Stall a node's disk: fsyncs are silent no-ops for `duration`.
    DiskStall {
        /// The node whose disk stalls.
        node: NodeId,
        /// How long the device stops acknowledging flushes.
        duration: SimDuration,
    },
}

impl FaultAction {
    /// Convenience constructor: a [`FaultAction::PairLoss`] from a
    /// probability in `[0, 1]` (converted to per-mille).
    pub fn pair_loss(from: NodeId, to: NodeId, p: f64) -> Self {
        FaultAction::PairLoss { from, to, per_mille: per_mille(p) }
    }
}

/// A time-ordered script of fault actions.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    steps: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an action at an absolute virtual time. Returns `self` for
    /// chaining.
    pub fn at(mut self, time: SimTime, action: FaultAction) -> Self {
        self.steps.push((time, action));
        self
    }

    /// Convenience: crash `node` at `time`.
    pub fn crash_at(self, time: SimTime, node: NodeId) -> Self {
        self.at(time, FaultAction::CrashNode(node))
    }

    /// Number of scripted steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The scripted steps in insertion order.
    pub fn steps(&self) -> &[(SimTime, FaultAction)] {
        &self.steps
    }

    /// Schedule every step onto a world. Call once, before running.
    pub fn apply(&self, world: &mut World) {
        for (time, action) in self.steps.clone() {
            world.schedule_at(time, move |w| match action {
                FaultAction::CrashNode(n) => w.crash_node(n),
                FaultAction::KillProc(p) => w.kill_proc(p),
                FaultAction::ReviveNode(n) => w.revive_node(n),
                FaultAction::Partition { node, group } => w.set_partition_group(node, group),
                FaultAction::HealPartitions => {
                    w.network_mut().heal_partitions();
                }
                FaultAction::PairLoss { from, to, per_mille } => {
                    w.network_mut().set_pair_loss(from, to, per_mille);
                }
                FaultAction::TornWrite { node, keep_bytes } => {
                    w.disk_mut(node).arm_torn_write(keep_bytes);
                }
                FaultAction::CorruptRecord { node, file, offset } => {
                    let _ = w.disk_mut(node).corrupt_byte(&file, offset);
                }
                FaultAction::DiskStall { node, duration } => {
                    let until = w.now() + duration;
                    w.disk_mut(node).stall_until(until);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::time::SimDuration;

    #[test]
    fn plan_executes_in_time_order() {
        let mut w = World::with_network(0, NetworkConfig::ideal());
        let a = w.add_node("a");
        let b = w.add_node("b");
        let t1 = SimTime::ZERO + SimDuration::from_secs(1);
        let t2 = SimTime::ZERO + SimDuration::from_secs(2);
        let plan = FaultPlan::new()
            .crash_at(t1, a)
            .at(t2, FaultAction::ReviveNode(a))
            .at(t1, FaultAction::Partition { node: b, group: 3 });
        assert_eq!(plan.len(), 3);
        plan.apply(&mut w);

        w.run_until(SimTime::ZERO + SimDuration::from_millis(500));
        assert!(w.is_node_alive(a));

        w.run_until(SimTime::ZERO + SimDuration::from_millis(1500));
        assert!(!w.is_node_alive(a));
        assert_eq!(w.network().group_of(b), 3);

        w.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        assert!(w.is_node_alive(a));
    }

    #[test]
    fn heal_and_pair_loss_actions() {
        let mut w = World::with_network(0, NetworkConfig::ideal());
        let a = w.add_node("a");
        let b = w.add_node("b");
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        FaultPlan::new()
            .at(SimTime::ZERO, FaultAction::Partition { node: a, group: 1 })
            .at(SimTime::ZERO, FaultAction::pair_loss(a, b, 0.5))
            .at(t, FaultAction::HealPartitions)
            .at(t, FaultAction::PairLoss { from: a, to: b, per_mille: 0 })
            .apply(&mut w);
        w.run_until(SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(w.network().group_of(a), 1);
        w.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(w.network().group_of(a), 0);
    }

    #[test]
    fn pair_loss_convenience_converts_to_per_mille() {
        let (a, b) = (NodeId(0), NodeId(1));
        assert_eq!(
            FaultAction::pair_loss(a, b, 0.25),
            FaultAction::PairLoss { from: a, to: b, per_mille: 250 }
        );
    }

    #[test]
    fn disk_fault_actions_hit_the_disk() {
        let mut w = World::with_network(0, NetworkConfig::ideal());
        let a = w.add_node("a");
        w.disk_mut(a).append("wal", b"aaaa");
        let now = w.now();
        assert!(w.disk_mut(a).fsync("wal", now));
        let t1 = SimTime::ZERO + SimDuration::from_secs(1);
        let t2 = SimTime::ZERO + SimDuration::from_secs(2);
        FaultPlan::new()
            .at(t1, FaultAction::CorruptRecord { node: a, file: "wal".into(), offset: 0 })
            .at(t1, FaultAction::DiskStall { node: a, duration: SimDuration::from_secs(10) })
            .at(t1, FaultAction::TornWrite { node: a, keep_bytes: 1 })
            .at(t2, FaultAction::CrashNode(a))
            .apply(&mut w);
        w.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        // Corruption flipped the first byte; the armed torn write then tore
        // the (already-synced) batch back to 1 byte at crash time.
        assert_eq!(w.disk(a).read("wal").unwrap(), vec![b'a' ^ 0xFF]);
        // The stall was active between t1 and the crash.
        w.disk_mut(a).append("wal", b"x");
        let now = w.now();
        assert!(w.disk_mut(a).fsync("wal", now), "crash clears the stall");
    }

    #[test]
    fn fault_actions_are_hashable() {
        let mut set = std::collections::HashSet::new();
        set.insert(FaultAction::HealPartitions);
        set.insert(FaultAction::pair_loss(NodeId(0), NodeId(1), 0.5));
        set.insert(FaultAction::pair_loss(NodeId(0), NodeId(1), 0.5));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn kill_proc_action() {
        struct P;
        impl crate::process::Process for P {
            fn on_message(
                &mut self,
                _: &mut crate::process::Ctx<'_>,
                _: ProcId,
                _: crate::process::Msg,
            ) {
            }
        }
        let mut w = World::with_network(0, NetworkConfig::ideal());
        let a = w.add_node("a");
        let p = w.add_process(a, P);
        FaultPlan::new()
            .at(SimTime::ZERO + SimDuration::from_secs(1), FaultAction::KillProc(p))
            .apply(&mut w);
        w.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(!w.is_proc_alive(p));
        assert!(w.is_node_alive(a));
    }
}
