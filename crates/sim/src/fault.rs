//! Declarative fault plans.
//!
//! The paper's functional evaluation "simulated failures by unplugging
//! network cables and by forcibly shutting down individual processes". A
//! [`FaultPlan`] scripts exactly those actions at precise virtual times, so
//! failure experiments are reproducible and assertable.

use crate::ids::{NodeId, ProcId};
use crate::time::SimTime;
use crate::world::World;

/// One scripted fault (or repair) action.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Power off a node: every process on it dies instantly.
    CrashNode(NodeId),
    /// Kill one process (daemon) only.
    KillProc(ProcId),
    /// Bring a crashed node's hardware back (processes must be restarted by
    /// the harness separately).
    ReviveNode(NodeId),
    /// Move a node into partition group `group` (unplug / replug cables).
    Partition {
        /// The node to move.
        node: NodeId,
        /// Its new partition group.
        group: u32,
    },
    /// Remove all partitions.
    HealPartitions,
    /// Set a directed message-loss probability between two nodes.
    PairLoss {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
}

/// A time-ordered script of fault actions.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    steps: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an action at an absolute virtual time. Returns `self` for
    /// chaining.
    pub fn at(mut self, time: SimTime, action: FaultAction) -> Self {
        self.steps.push((time, action));
        self
    }

    /// Convenience: crash `node` at `time`.
    pub fn crash_at(self, time: SimTime, node: NodeId) -> Self {
        self.at(time, FaultAction::CrashNode(node))
    }

    /// Number of scripted steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The scripted steps in insertion order.
    pub fn steps(&self) -> &[(SimTime, FaultAction)] {
        &self.steps
    }

    /// Schedule every step onto a world. Call once, before running.
    pub fn apply(&self, world: &mut World) {
        for (time, action) in self.steps.clone() {
            world.schedule_at(time, move |w| match action {
                FaultAction::CrashNode(n) => w.crash_node(n),
                FaultAction::KillProc(p) => w.kill_proc(p),
                FaultAction::ReviveNode(n) => w.revive_node(n),
                FaultAction::Partition { node, group } => w.set_partition_group(node, group),
                FaultAction::HealPartitions => {
                    w.network_mut().heal_partitions();
                }
                FaultAction::PairLoss { from, to, p } => {
                    w.network_mut().set_pair_loss(from, to, p);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::time::SimDuration;

    #[test]
    fn plan_executes_in_time_order() {
        let mut w = World::with_network(0, NetworkConfig::ideal());
        let a = w.add_node("a");
        let b = w.add_node("b");
        let t1 = SimTime::ZERO + SimDuration::from_secs(1);
        let t2 = SimTime::ZERO + SimDuration::from_secs(2);
        let plan = FaultPlan::new()
            .crash_at(t1, a)
            .at(t2, FaultAction::ReviveNode(a))
            .at(t1, FaultAction::Partition { node: b, group: 3 });
        assert_eq!(plan.len(), 3);
        plan.apply(&mut w);

        w.run_until(SimTime::ZERO + SimDuration::from_millis(500));
        assert!(w.is_node_alive(a));

        w.run_until(SimTime::ZERO + SimDuration::from_millis(1500));
        assert!(!w.is_node_alive(a));
        assert_eq!(w.network().group_of(b), 3);

        w.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        assert!(w.is_node_alive(a));
    }

    #[test]
    fn heal_and_pair_loss_actions() {
        let mut w = World::with_network(0, NetworkConfig::ideal());
        let a = w.add_node("a");
        let b = w.add_node("b");
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        FaultPlan::new()
            .at(SimTime::ZERO, FaultAction::Partition { node: a, group: 1 })
            .at(SimTime::ZERO, FaultAction::PairLoss { from: a, to: b, p: 0.5 })
            .at(t, FaultAction::HealPartitions)
            .at(t, FaultAction::PairLoss { from: a, to: b, p: 0.0 })
            .apply(&mut w);
        w.run_until(SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(w.network().group_of(a), 1);
        w.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(w.network().group_of(a), 0);
    }

    #[test]
    fn kill_proc_action() {
        struct P;
        impl crate::process::Process for P {
            fn on_message(
                &mut self,
                _: &mut crate::process::Ctx<'_>,
                _: ProcId,
                _: crate::process::Msg,
            ) {
            }
        }
        let mut w = World::with_network(0, NetworkConfig::ideal());
        let a = w.add_node("a");
        let p = w.add_process(a, P);
        FaultPlan::new()
            .at(SimTime::ZERO + SimDuration::from_secs(1), FaultAction::KillProc(p))
            .apply(&mut w);
        w.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(!w.is_proc_alive(p));
        assert!(w.is_node_alive(a));
    }
}
