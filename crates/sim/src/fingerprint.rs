//! Canonical state fingerprinting for model checking and replica
//! comparison.
//!
//! [`Fnv64`] is a 64-bit FNV-1a [`std::hash::Hasher`]. Unlike the std
//! `DefaultHasher` (SipHash with per-process random keys), FNV-1a is
//! fully deterministic: the same byte stream produces the same digest in
//! every process, on every run. That property is what makes it usable
//! for
//!
//! * visited-set deduplication in the `jrs-mc` bounded model checker
//!   (two worlds with equal fingerprints are treated as the same state),
//! * replica state-hash convergence checks (all head nodes must agree).
//!
//! The replicated-state crates derive [`std::hash::Hash`] on their state
//! types and feed them through [`fingerprint`]; because every such type
//! stores its collections in ordered containers (`BTreeMap`/`BTreeSet`,
//! detlint D001), the byte stream — and hence the digest — is identical
//! across replicas.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic 64-bit FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Digest of the bytes absorbed so far (same as [`Hasher::finish`],
    /// without consuming the hasher).
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// Deterministic fingerprint of any `Hash` value.
///
/// Stable across processes and runs (FNV-1a, no random keys); **not**
/// stable across compiler versions or type-layout changes — use for
/// in-run deduplication and cross-replica comparison, not for on-disk
/// formats.
#[must_use]
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let a = fingerprint(&(1u64, "abc", vec![3u32, 4, 5]));
        let b = fingerprint(&(1u64, "abc", vec![3u32, 4, 5]));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fingerprint(&1u64), fingerprint(&2u64));
        assert_ne!(fingerprint("a"), fingerprint("b"));
    }

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        // Classic test vector: "a" → 0xaf63dc4c8601ec8c.
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
