//! Identifiers for nodes, processes and timers.

use std::fmt;

/// Identifies a (virtual) machine in the simulated cluster.
///
/// A node hosts one or more processes; crashing a node crashes all of them
/// and network partitions are expressed between nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a process (actor) in the simulation. Unique across the whole
/// world, never reused, even after a crash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

/// Handle for a pending timer, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl NodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ProcId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
