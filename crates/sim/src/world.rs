//! The discrete-event world: virtual clock, event queue, node/process
//! registry, network routing and fault injection entry points.

use crate::disk::SimDisk;
use crate::ids::{NodeId, ProcId, TimerId};
use crate::network::{Network, NetworkConfig, Outcome};
use crate::process::{Ctx, Msg, Process};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// A deferred action with full world access; used by fault plans and
/// workload drivers.
pub type Thunk = Box<dyn FnOnce(&mut World)>;

enum EventKind {
    // Start/Deliver/Timer carry the target's incarnation at enqueue time;
    // dispatch drops events addressed to an earlier incarnation, so a
    // restarted process never sees its predecessor's in-flight messages or
    // stale timers.
    Start { proc: ProcId, incarnation: u32 },
    Deliver { from: ProcId, to: ProcId, msg: Msg, incarnation: u32 },
    Timer { proc: ProcId, timer: TimerId, tag: u64, incarnation: u32 },
    Call(Thunk),
}

struct QueuedEvent {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    // Ties break on insertion sequence for full determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeSlot {
    #[allow(dead_code)]
    name: String,
    alive: bool,
}

struct ProcSlot {
    node: NodeId,
    alive: bool,
    /// Bumped by `restart_proc`; events are stamped with it at enqueue time.
    incarnation: u32,
    process: Option<Box<dyn Process>>,
}

/// A value published by a process via `Ctx::emit`.
pub struct Emitted {
    /// When it was emitted.
    pub at: SimTime,
    /// Which process emitted it.
    pub from: ProcId,
    /// The payload.
    pub value: Box<dyn Any>,
}

/// The simulation world. See the crate docs for the execution model.
pub struct World {
    clock: SimTime,
    queue: BinaryHeap<QueuedEvent>,
    next_seq: u64,
    rng: StdRng,
    nodes: Vec<NodeSlot>,
    procs: Vec<ProcSlot>,
    /// One simulated disk per node, same indexing as `nodes`. Disks survive
    /// `crash_node`/`revive_node` (only volatile data is lost).
    disks: Vec<SimDisk>,
    net: Network,
    trace: Trace,
    next_timer: u64,
    cancelled_timers: HashSet<u64>,
    emitted: Vec<Emitted>,
    events_processed: u64,
    /// Safety valve against runaway protocols in tests; `None` = unlimited.
    max_events: Option<u64>,
}

impl World {
    /// New world with the default (Fast-Ethernet-hub) network model.
    pub fn new(seed: u64) -> Self {
        Self::with_network(seed, NetworkConfig::default())
    }

    /// New world with an explicit network configuration.
    pub fn with_network(seed: u64, net: NetworkConfig) -> Self {
        World {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            procs: Vec::new(),
            disks: Vec::new(),
            net: Network::new(net),
            trace: Trace::disabled(),
            next_timer: 0,
            cancelled_timers: HashSet::new(),
            emitted: Vec::new(),
            events_processed: 0,
            max_events: None,
        }
    }

    /// Enable the trace buffer, keeping the `capacity` most recent records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// Access the trace buffer.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub(crate) fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Limit total processed events (test safety valve).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = Some(max);
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The world RNG (deterministic; consumption order is part of the run).
    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The network model, immutable.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The network model, mutable (partitions, loss injection).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// Add a node (virtual machine) to the cluster. Each node gets its own
    /// [`SimDisk`].
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot { name: name.into(), alive: true });
        self.disks.push(SimDisk::new());
        id
    }

    /// A node's simulated disk.
    pub fn disk(&self, node: NodeId) -> &SimDisk {
        &self.disks[node.index()]
    }

    /// A node's simulated disk, mutable (fault injection, harness setup).
    pub fn disk_mut(&mut self, node: NodeId) -> &mut SimDisk {
        &mut self.disks[node.index()]
    }

    /// Number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Add a process on `node`. Its `on_start` runs at the current time.
    pub fn add_process(&mut self, node: NodeId, process: impl Process) -> ProcId {
        self.add_boxed_process(node, Box::new(process))
    }

    /// Add an already-boxed process on `node`.
    pub fn add_boxed_process(&mut self, node: NodeId, process: Box<dyn Process>) -> ProcId {
        assert!(node.index() < self.nodes.len(), "unknown node {node}");
        let id = ProcId(self.procs.len() as u32);
        let alive = self.nodes[node.index()].alive;
        self.procs.push(ProcSlot { node, alive, incarnation: 1, process: Some(process) });
        if alive {
            self.push_event(self.clock, EventKind::Start { proc: id, incarnation: 1 });
        }
        id
    }

    /// Restart a dead process slot with a fresh process instance (same
    /// `ProcId`, next incarnation). The node must be alive (revive it
    /// first) and the old process dead. Messages and timers addressed to
    /// the previous incarnation are silently discarded, exactly as a
    /// rebooted machine never sees packets sent to its dead predecessor.
    ///
    /// Returns the new incarnation number.
    pub fn restart_proc(&mut self, p: ProcId, process: Box<dyn Process>) -> u32 {
        let slot = &mut self.procs[p.index()];
        assert!(
            self.nodes[slot.node.index()].alive,
            "restart_proc: node {} is down",
            slot.node
        );
        assert!(!slot.alive, "restart_proc: {p} is still running");
        slot.alive = true;
        slot.incarnation += 1;
        let incarnation = slot.incarnation;
        slot.process = Some(process);
        self.push_event(self.clock, EventKind::Start { proc: p, incarnation });
        let now = self.clock;
        self.trace.push(
            now,
            TraceEvent::Note { proc: p, text: format!("restarted (incarnation {incarnation})") },
        );
        incarnation
    }

    /// A process' current incarnation (1 for never-restarted processes).
    pub fn proc_incarnation(&self, p: ProcId) -> u32 {
        self.procs[p.index()].incarnation
    }

    /// The node a process runs on.
    pub fn node_of(&self, p: ProcId) -> NodeId {
        self.procs[p.index()].node
    }

    /// Is this process alive?
    pub fn is_proc_alive(&self, p: ProcId) -> bool {
        p.index() < self.procs.len() && self.procs[p.index()].alive
    }

    /// Is this node alive?
    pub fn is_node_alive(&self, n: NodeId) -> bool {
        self.nodes[n.index()].alive
    }

    /// All live processes hosted on a node.
    pub fn procs_on(&self, node: NodeId) -> Vec<ProcId> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.node == node && s.alive)
            .map(|(i, _)| ProcId(i as u32))
            .collect()
    }

    /// Borrow a process as its concrete type (e.g. to inspect final state).
    pub fn proc_ref<T: Process>(&self, p: ProcId) -> Option<&T> {
        self.procs
            .get(p.index())
            .and_then(|s| s.process.as_deref())
            .and_then(|pr| pr.downcast_ref::<T>())
    }

    /// Mutably borrow a process as its concrete type.
    pub fn proc_mut<T: Process>(&mut self, p: ProcId) -> Option<&mut T> {
        self.procs
            .get_mut(p.index())
            .and_then(|s| s.process.as_deref_mut())
            .and_then(|pr| pr.downcast_mut::<T>())
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Crash a node right now: every process on it stops receiving events
    /// and all its undelivered messages are lost.
    pub fn crash_node(&mut self, node: NodeId) {
        self.nodes[node.index()].alive = false;
        for slot in self.procs.iter_mut().filter(|s| s.node == node) {
            slot.alive = false;
        }
        // Power loss: the disk keeps its durable content but drops every
        // unsynced byte (and applies armed torn-write damage).
        self.disks[node.index()].on_crash();
        let now = self.clock;
        self.trace.push(now, TraceEvent::Crashed { node, proc: None });
    }

    /// Mark a crashed node usable again. Old processes stay dead; the
    /// harness starts fresh ones (a replacement head node, per the paper's
    /// join protocol).
    pub fn revive_node(&mut self, node: NodeId) {
        self.nodes[node.index()].alive = true;
        let now = self.clock;
        self.trace.push(now, TraceEvent::Revived { node });
    }

    /// Kill a single process (e.g. `kill -9` of one daemon).
    pub fn kill_proc(&mut self, p: ProcId) {
        if let Some(slot) = self.procs.get_mut(p.index()) {
            slot.alive = false;
            let (node, now) = (slot.node, self.clock);
            self.trace.push(now, TraceEvent::Crashed { node, proc: Some(p) });
        }
    }

    /// Move a node into a partition group (see `Network`).
    pub fn set_partition_group(&mut self, node: NodeId, group: u32) {
        self.net.set_partition_group(node, group);
        let now = self.clock;
        self.trace.push(now, TraceEvent::Partitioned { node, group });
    }

    // ------------------------------------------------------------------
    // Scheduling primitives
    // ------------------------------------------------------------------

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueuedEvent { at, seq, kind });
    }

    /// Run `thunk` with full world access at absolute time `at` (clamped to
    /// now if already past).
    pub fn schedule_at(&mut self, at: SimTime, thunk: impl FnOnce(&mut World) + 'static) {
        let at = at.max(self.clock);
        self.push_event(at, EventKind::Call(Box::new(thunk)));
    }

    /// Run `thunk` after `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, thunk: impl FnOnce(&mut World) + 'static) {
        let at = self.clock + delay;
        self.push_event(at, EventKind::Call(Box::new(thunk)));
    }

    /// Inject a message to a process from the reserved EXTERNAL sender.
    pub fn inject<M: Any>(&mut self, to: ProcId, msg: M) {
        self.route_message(crate::process::EXTERNAL, to, Box::new(msg), 0, SimDuration::ZERO);
    }

    pub(crate) fn route_message(
        &mut self,
        from: ProcId,
        to: ProcId,
        msg: Msg,
        bytes: u32,
        extra_delay: SimDuration,
    ) {
        let now = self.clock;
        if to.index() >= self.procs.len() {
            return; // destination never existed; drop silently
        }
        let incarnation = self.procs[to.index()].incarnation;
        // EXTERNAL bypasses the network model: harness → process, zero delay.
        if from == crate::process::EXTERNAL {
            self.push_event(now + extra_delay, EventKind::Deliver { from, to, msg, incarnation });
            return;
        }
        let from_node = self.node_of(from);
        let to_node = self.node_of(to);
        if !self.nodes[from_node.index()].alive || !self.nodes[to_node.index()].alive {
            self.trace
                .push(now, TraceEvent::Dropped { from, to, reason: "dead-node" });
            return;
        }
        self.trace.push(now, TraceEvent::Sent { from, to, bytes });
        let send_at = now + extra_delay;
        match self.net.route(&mut self.rng, send_at, from_node, to_node, bytes) {
            Outcome::Deliver(delay) => {
                self.push_event(send_at + delay, EventKind::Deliver { from, to, msg, incarnation });
            }
            Outcome::Drop(reason) => {
                let r = match reason {
                    crate::network::DropReason::Loss => "loss",
                    crate::network::DropReason::Partition => "partition",
                    crate::network::DropReason::DeadNode => "dead-node",
                };
                self.trace.push(now, TraceEvent::Dropped { from, to, reason: r });
            }
        }
    }

    pub(crate) fn set_timer(&mut self, proc: ProcId, delay: SimDuration, tag: u64) -> TimerId {
        let timer = TimerId(self.next_timer);
        self.next_timer += 1;
        let at = self.clock + delay;
        let incarnation = self.procs[proc.index()].incarnation;
        self.push_event(at, EventKind::Timer { proc, timer, tag, incarnation });
        timer
    }

    pub(crate) fn cancel_timer(&mut self, timer: TimerId) {
        self.cancelled_timers.insert(timer.0);
    }

    pub(crate) fn push_emitted(&mut self, from: ProcId, value: Box<dyn Any>) {
        self.emitted.push(Emitted { at: self.clock, from, value });
    }

    /// Drain every emitted value.
    pub fn drain_emitted(&mut self) -> Vec<Emitted> {
        std::mem::take(&mut self.emitted)
    }

    /// Drain emitted values of one concrete type, leaving others in place.
    pub fn take_emitted<T: Any>(&mut self) -> Vec<(SimTime, ProcId, T)> {
        let mut taken = Vec::new();
        let mut kept = Vec::new();
        for e in std::mem::take(&mut self.emitted) {
            match e.value.downcast::<T>() {
                Ok(v) => taken.push((e.at, e.from, *v)),
                Err(v) => kept.push(Emitted { at: e.at, from: e.from, value: v }),
            }
        }
        self.emitted = kept;
        taken
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Process a single event. Returns `false` when the queue is empty or
    /// the event budget is exhausted.
    pub fn step(&mut self) -> bool {
        if let Some(max) = self.max_events {
            if self.events_processed >= max {
                return false;
            }
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.clock, "time went backwards");
        self.clock = ev.at;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Start { proc, incarnation } => {
                if self.proc_incarnation(proc) == incarnation {
                    self.dispatch(proc, |p, ctx| p.on_start(ctx));
                }
            }
            EventKind::Deliver { from, to, msg, incarnation } => {
                if self.is_proc_alive(to) && self.proc_incarnation(to) == incarnation {
                    let now = self.clock;
                    self.trace.push(now, TraceEvent::Delivered { from, to });
                    self.dispatch(to, |p, ctx| p.on_message(ctx, from, msg));
                }
            }
            EventKind::Timer { proc, timer, tag, incarnation } => {
                if self.cancelled_timers.remove(&timer.0) {
                    // cancelled; swallow
                } else if self.is_proc_alive(proc) && self.proc_incarnation(proc) == incarnation {
                    self.dispatch(proc, |p, ctx| p.on_timer(ctx, timer, tag));
                }
            }
            EventKind::Call(thunk) => thunk(self),
        }
        true
    }

    fn dispatch(&mut self, proc: ProcId, f: impl FnOnce(&mut dyn Process, &mut Ctx<'_>)) {
        if !self.is_proc_alive(proc) {
            return;
        }
        let mut boxed = self.procs[proc.index()]
            .process
            .take()
            .expect("process re-entered");
        {
            let mut ctx = Ctx { world: self, me: proc };
            f(boxed.as_mut(), &mut ctx);
        }
        self.procs[proc.index()].process = Some(boxed);
    }

    /// Run until the queue drains or `deadline` passes (the clock stops at
    /// the deadline even if later events remain queued).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            if !self.step() {
                break;
            }
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
    }

    /// Run for a duration from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.clock + d;
        self.run_until(deadline);
    }

    /// Run until no events remain. Protocols with periodic timers never go
    /// idle — prefer `run_until`/`run_for` for those.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::EXTERNAL;

    /// Echoes every u32 it receives back to the sender, incremented.
    struct Echo {
        got: Vec<u32>,
    }

    impl Process for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Msg) {
            let v = *msg.downcast::<u32>().expect("u32");
            self.got.push(v);
            if from != EXTERNAL {
                ctx.send(from, v + 1);
            }
        }
    }

    /// Sends `count` pings to a peer on start, collects replies.
    struct Pinger {
        peer: ProcId,
        count: u32,
        replies: Vec<u32>,
    }

    impl Process for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..self.count {
                ctx.send(self.peer, i);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, msg: Msg) {
            self.replies.push(*msg.downcast::<u32>().unwrap());
        }
    }

    fn two_node_world() -> (World, NodeId, NodeId) {
        let mut w = World::with_network(7, NetworkConfig::ideal());
        let a = w.add_node("a");
        let b = w.add_node("b");
        (w, a, b)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut w, a, b) = two_node_world();
        let echo = w.add_process(b, Echo { got: vec![] });
        let pinger = w.add_process(a, Pinger { peer: echo, count: 3, replies: vec![] });
        w.run_until_idle();
        let p = w.proc_ref::<Pinger>(pinger).unwrap();
        assert_eq!(p.replies, vec![1, 2, 3]);
        let e = w.proc_ref::<Echo>(echo).unwrap();
        assert_eq!(e.got, vec![0, 1, 2]);
        assert!(w.now() > SimTime::ZERO);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut w = World::new(seed);
            let a = w.add_node("a");
            let b = w.add_node("b");
            let echo = w.add_process(b, Echo { got: vec![] });
            let _ = w.add_process(a, Pinger { peer: echo, count: 50, replies: vec![] });
            w.run_until_idle();
            (w.now(), w.events_processed())
        };
        assert_eq!(run(99), run(99));
        // Different seeds give a different (jittered) end time.
        assert_ne!(run(99).0, run(100).0);
    }

    #[test]
    fn crash_node_stops_delivery() {
        let (mut w, a, b) = two_node_world();
        let echo = w.add_process(b, Echo { got: vec![] });
        let _ = w.add_process(a, Pinger { peer: echo, count: 1, replies: vec![] });
        w.crash_node(b);
        w.run_until_idle();
        let e = w.proc_ref::<Echo>(echo).unwrap();
        assert!(e.got.is_empty());
        assert!(!w.is_proc_alive(echo));
        assert!(!w.is_node_alive(b));
    }

    #[test]
    fn revive_allows_new_processes() {
        let (mut w, _a, b) = two_node_world();
        w.crash_node(b);
        w.revive_node(b);
        let echo = w.add_process(b, Echo { got: vec![] });
        w.inject(echo, 41u32);
        w.run_until_idle();
        assert_eq!(w.proc_ref::<Echo>(echo).unwrap().got, vec![41]);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        struct T {
            fired: Vec<u64>,
            cancel_me: Option<TimerId>,
        }
        impl Process for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                self.cancel_me = Some(ctx.set_timer(SimDuration::from_millis(5), 2));
                ctx.set_timer(SimDuration::from_millis(1), 3);
                let t = self.cancel_me.unwrap();
                ctx.cancel_timer(t);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcId, _: Msg) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: TimerId, tag: u64) {
                self.fired.push(tag);
            }
        }
        let (mut w, a, _b) = two_node_world();
        let p = w.add_process(a, T { fired: vec![], cancel_me: None });
        w.run_until_idle();
        assert_eq!(w.proc_ref::<T>(p).unwrap().fired, vec![3, 1]);
    }

    #[test]
    fn schedule_thunks_run_at_time() {
        let mut w = World::with_network(1, NetworkConfig::ideal());
        let n = w.add_node("x");
        let echo = w.add_process(n, Echo { got: vec![] });
        w.schedule_after(SimDuration::from_secs(2), move |w| {
            w.inject(echo, 7u32);
        });
        w.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert!(w.proc_ref::<Echo>(echo).unwrap().got.is_empty());
        w.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        assert_eq!(w.proc_ref::<Echo>(echo).unwrap().got, vec![7]);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut w = World::new(3);
        w.run_until(SimTime::from_nanos(1_000));
        assert_eq!(w.now(), SimTime::from_nanos(1_000));
    }

    #[test]
    fn emitted_values_are_typed_and_drained() {
        struct E;
        impl Process for E {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.emit(123u32);
                ctx.emit("hello");
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcId, _: Msg) {}
        }
        let mut w = World::new(0);
        let n = w.add_node("x");
        let p = w.add_process(n, E);
        w.run_until_idle();
        let ints = w.take_emitted::<u32>();
        assert_eq!(ints.len(), 1);
        assert_eq!(ints[0].1, p);
        assert_eq!(ints[0].2, 123);
        let strs = w.take_emitted::<&str>();
        assert_eq!(strs.len(), 1);
        assert!(w.drain_emitted().is_empty());
    }

    #[test]
    fn exit_stops_a_process() {
        struct Quit;
        impl Process for Quit {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _: ProcId, _: Msg) {
                ctx.exit();
            }
        }
        let mut w = World::new(0);
        let n = w.add_node("x");
        let p = w.add_process(n, Quit);
        w.inject(p, 0u8);
        w.inject(p, 0u8);
        w.run_until_idle();
        assert!(!w.is_proc_alive(p));
    }

    #[test]
    fn max_events_guard() {
        struct Loopy;
        impl Process for Loopy {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: TimerId, _: u64) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        let mut w = World::new(0);
        let n = w.add_node("x");
        let _ = w.add_process(n, Loopy);
        w.set_max_events(100);
        w.run_until_idle();
        assert_eq!(w.events_processed(), 100);
    }

    #[test]
    fn partition_blocks_then_heals() {
        let (mut w, a, b) = two_node_world();
        let echo = w.add_process(b, Echo { got: vec![] });
        let pinger = w.add_process(a, Pinger { peer: echo, count: 1, replies: vec![] });
        w.set_partition_group(b, 1);
        w.run_until_idle();
        assert!(w.proc_ref::<Echo>(echo).unwrap().got.is_empty());
        w.network_mut().heal_partitions();
        // Pinger already sent; resend via inject to prove healing.
        w.inject(echo, 9u32);
        w.run_until_idle();
        assert_eq!(w.proc_ref::<Echo>(echo).unwrap().got, vec![9]);
        let _ = pinger;
    }

    #[test]
    fn restart_drops_stale_timers() {
        struct T {
            fired: u32,
        }
        impl Process for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(10), 7);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcId, _: Msg) {}
            fn on_timer(&mut self, _: &mut Ctx<'_>, _: TimerId, _: u64) {
                self.fired += 1;
            }
        }
        let mut w = World::with_network(0, NetworkConfig::ideal());
        let n = w.add_node("x");
        let p = w.add_process(n, T { fired: 0 });
        w.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        w.crash_node(n);
        w.revive_node(n);
        assert_eq!(w.proc_incarnation(p), 1);
        assert_eq!(w.restart_proc(p, Box::new(T { fired: 0 })), 2);
        w.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        // Incarnation 1's timer (due t=10s) is discarded; only incarnation
        // 2's own timer (armed on restart, due t=11s) fires.
        assert_eq!(w.proc_ref::<T>(p).unwrap().fired, 1);
    }

    #[test]
    fn disk_survives_crash_and_revive() {
        let (mut w, a, _b) = two_node_world();
        w.disk_mut(a).append("wal", b"ab");
        let now = w.now();
        assert!(w.disk_mut(a).fsync("wal", now));
        w.disk_mut(a).append("wal", b"cd");
        w.crash_node(a);
        w.revive_node(a);
        // Durable prefix survives the power cycle; the unsynced tail is gone.
        assert_eq!(w.disk(a).read("wal").unwrap(), b"ab");
    }

    #[test]
    fn proc_downcast_wrong_type_is_none() {
        let mut w = World::new(0);
        let n = w.add_node("x");
        let p = w.add_process(n, Echo { got: vec![] });
        assert!(w.proc_ref::<Pinger>(p).is_none());
        assert!(w.proc_ref::<Echo>(p).is_some());
    }
}
