//! # jrs-sim — deterministic discrete-event simulation kernel
//!
//! The substrate on which the JOSHUA reproduction runs. It replaces the
//! paper's physical testbed (four head nodes and two compute nodes on a Fast
//! Ethernet hub) with a deterministic, fully controllable virtual cluster:
//!
//! * **Virtual time** ([`SimTime`], [`SimDuration`]) — integer nanoseconds,
//!   bit-for-bit reproducible runs.
//! * **Actors** ([`Process`]) — sans-IO protocol state machines receiving
//!   messages and timer events through a [`Ctx`] handle.
//! * **Network model** ([`network`]) — latency distributions, loss,
//!   partitions, and an optional shared-hub contention model matching the
//!   paper's half-duplex 100 Mbit/s hub.
//! * **Fault injection** ([`fault`]) — scripted crashes, partitions and
//!   repairs: the reproducible equivalent of "unplugging network cables and
//!   forcibly shutting down individual processes".
//! * **Per-node disks** ([`disk`]) — deterministic simulated storage with
//!   explicit write/fsync semantics that survives node crashes, plus
//!   injectable torn writes, corruption and stalls.
//! * **Measurement** ([`metrics`], [`trace`]) — virtual-time histograms and
//!   a structured event trace.
//!
//! ## Example
//!
//! ```
//! use jrs_sim::{World, Process, Ctx, Msg, ProcId};
//!
//! struct Counter { seen: u32 }
//! impl Process for Counter {
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, _msg: Msg) {
//!         self.seen += 1;
//!     }
//! }
//!
//! let mut world = World::new(42);
//! let node = world.add_node("head-a");
//! let counter = world.add_process(node, Counter { seen: 0 });
//! world.inject(counter, "hello");
//! world.run_until_idle();
//! assert_eq!(world.proc_ref::<Counter>(counter).unwrap().seen, 1);
//! ```

#![warn(missing_docs)]

pub mod disk;
pub mod fault;
pub mod fingerprint;
mod ids;
pub mod metrics;
pub mod network;
mod process;
mod time;
pub mod trace;
mod world;

pub use disk::SimDisk;
pub use fingerprint::{fingerprint, Fnv64};
pub use ids::{NodeId, ProcId, TimerId};
pub use network::{per_mille, HubConfig, Latency, LinkConfig, NetworkConfig};
pub use process::{Ctx, Msg, Process, EXTERNAL};
pub use time::{SimDuration, SimTime};
pub use world::{Emitted, Thunk, World};
