//! Property-based tests of the simulation kernel: deterministic replay,
//! event-order integrity, network-model bounds and histogram correctness.

use jrs_sim::metrics::DurationHistogram;
use jrs_sim::network::{Latency, Network, NetworkConfig, Outcome};
use jrs_sim::{Ctx, Msg, NetworkConfig as NC, NodeId, ProcId, Process, SimDuration, SimTime, World};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A process that relays each received number to a random-ish peer, with
/// bounded hop count, recording what it saw.
struct Relay {
    peers: Vec<ProcId>,
    seen: Vec<u32>,
}

impl Process for Relay {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Msg) {
        let v = *msg.downcast::<u32>().unwrap();
        self.seen.push(v);
        if v > 0 && !self.peers.is_empty() {
            let next = self.peers[v as usize % self.peers.len()];
            ctx.send(next, v - 1);
        }
    }
}

fn run_world(seed: u64, nodes: u32, injections: &[(u32, u32)]) -> (u64, Vec<Vec<u32>>) {
    let mut w = World::with_network(seed, NC::default());
    let mut procs = Vec::new();
    for i in 0..nodes {
        let n = w.add_node(format!("n{i}"));
        procs.push((n, i));
    }
    let ids: Vec<ProcId> = (0..nodes).map(ProcId).collect();
    for (n, _) in &procs {
        let _ = w.add_process(*n, Relay { peers: ids.clone(), seen: vec![] });
    }
    for &(to, v) in injections {
        w.inject(ProcId(to % nodes), v % 64);
    }
    w.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let seen: Vec<Vec<u32>> = ids
        .iter()
        .map(|p| w.proc_ref::<Relay>(*p).unwrap().seen.clone())
        .collect();
    (w.events_processed(), seen)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Same seed + same inputs ⇒ identical event counts and identical
    /// per-process observation sequences, regardless of workload shape.
    #[test]
    fn deterministic_replay(
        seed in any::<u64>(),
        nodes in 1u32..6,
        injections in prop::collection::vec((any::<u32>(), any::<u32>()), 0..20),
    ) {
        let a = run_world(seed, nodes, &injections);
        let b = run_world(seed, nodes, &injections);
        prop_assert_eq!(a, b);
    }

    /// Message conservation: each injected message with value v produces a
    /// chain of exactly v+1 observations (relays decrement to zero); the
    /// default network drops nothing.
    #[test]
    fn message_conservation(
        seed in any::<u64>(),
        injections in prop::collection::vec((any::<u32>(), 0u32..32), 1..12),
    ) {
        let (_, seen) = run_world(seed, 3, &injections);
        let total: usize = seen.iter().map(|s| s.len()).sum();
        let expected: usize = injections.iter().map(|&(_, v)| (v % 64) as usize + 1).sum();
        prop_assert_eq!(total, expected);
    }

    /// Latency distributions respect their declared bounds.
    #[test]
    fn uniform_latency_bounds(
        seed in any::<u64>(),
        lo_us in 1u64..500,
        width_us in 0u64..500,
    ) {
        let min = SimDuration::from_micros(lo_us);
        let max = SimDuration::from_micros(lo_us + width_us);
        let lat = Latency::Uniform { min, max };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = lat.sample(&mut rng);
            prop_assert!(s >= min && s <= max);
        }
    }

    /// The network model never *delays* into the past and delivers iff no
    /// loss/partition applies.
    #[test]
    fn route_outcomes_sane(
        seed in any::<u64>(),
        bytes in 1u32..9000,
        drop_prob in 0u32..=1000,
    ) {
        let mut cfg = NetworkConfig::ideal();
        cfg.lan.drop_prob = drop_prob;
        let mut net = Network::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delivered = 0u32;
        for _ in 0..100 {
            match net.route(&mut rng, SimTime::ZERO, NodeId(0), NodeId(1), bytes) {
                Outcome::Deliver(d) => {
                    delivered += 1;
                    prop_assert!(d >= SimDuration::ZERO);
                }
                Outcome::Drop(_) => {}
            }
        }
        if drop_prob == 0 {
            prop_assert_eq!(delivered, 100);
        }
        prop_assert_eq!(net.sent, 100);
        prop_assert_eq!(net.dropped_loss as u32 + delivered, 100);
    }

    /// Histogram quantiles agree with a naive sorted-vector oracle.
    #[test]
    fn histogram_matches_oracle(
        samples in prop::collection::vec(0u64..10_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut h = DurationHistogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        prop_assert_eq!(
            h.quantile(q),
            Some(SimDuration::from_nanos(sorted[idx]))
        );
        let mean: u128 = samples.iter().map(|&s| s as u128).sum::<u128>()
            / samples.len() as u128;
        prop_assert_eq!(h.mean(), Some(SimDuration::from_nanos(mean as u64)));
    }

    /// Timers fire exactly once, in order, at the requested times.
    #[test]
    fn timers_fire_in_order(
        delays in prop::collection::vec(1u64..10_000, 1..30),
    ) {
        struct T { delays: Vec<u64>, fired: Vec<(u64, u64)> }
        impl Process for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for (i, &d) in self.delays.iter().enumerate() {
                    ctx.set_timer(SimDuration::from_micros(d), i as u64);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: jrs_sim::TimerId, tag: u64) {
                self.fired.push((ctx.now().as_nanos(), tag));
            }
        }
        let mut w = World::with_network(1, NC::ideal());
        let n = w.add_node("x");
        let p = w.add_process(n, T { delays: delays.clone(), fired: vec![] });
        w.run_until_idle();
        let t = w.proc_ref::<T>(p).unwrap();
        prop_assert_eq!(t.fired.len(), delays.len());
        // Fire times are sorted and match the requested delays multiset.
        for w2 in t.fired.windows(2) {
            prop_assert!(w2[0].0 <= w2[1].0);
        }
        let mut want: Vec<u64> = delays.iter().map(|d| d * 1000).collect();
        let mut got: Vec<u64> = t.fired.iter().map(|(at, _)| *at).collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
