//! Integration coverage for tracing, network counters and world
//! inspection utilities.

use jrs_sim::trace::TraceEvent;
use jrs_sim::{Ctx, Msg, NetworkConfig, ProcId, Process, SimDuration, SimTime, World};

struct Chatter {
    peer: Option<ProcId>,
    count: u32,
}

impl Process for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(p) = self.peer {
            for i in 0..self.count {
                ctx.send(p, i);
            }
            ctx.trace("burst sent");
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, _msg: Msg) {
        ctx.trace("got one");
    }
}

#[test]
fn trace_records_sends_deliveries_and_notes() {
    let mut w = World::with_network(3, NetworkConfig::ideal());
    w.enable_trace(1024);
    let a = w.add_node("a");
    let b = w.add_node("b");
    let rx = w.add_process(b, Chatter { peer: None, count: 0 });
    let _tx = w.add_process(a, Chatter { peer: Some(rx), count: 5 });
    w.run_until_idle();
    let t = w.trace();
    assert_eq!(t.count(|e| matches!(e, TraceEvent::Sent { .. })), 5);
    assert_eq!(t.count(|e| matches!(e, TraceEvent::Delivered { .. })), 5);
    assert_eq!(
        t.count(|e| matches!(e, TraceEvent::Note { text, .. } if text == "got one")),
        5
    );
    assert_eq!(
        t.count(|e| matches!(e, TraceEvent::Note { text, .. } if text == "burst sent")),
        1
    );
}

#[test]
fn trace_records_drops_to_dead_nodes() {
    let mut w = World::with_network(3, NetworkConfig::ideal());
    w.enable_trace(1024);
    let a = w.add_node("a");
    let b = w.add_node("b");
    let rx = w.add_process(b, Chatter { peer: None, count: 0 });
    w.crash_node(b);
    let _tx = w.add_process(a, Chatter { peer: Some(rx), count: 3 });
    w.run_until_idle();
    let t = w.trace();
    assert_eq!(t.count(|e| matches!(e, TraceEvent::Crashed { .. })), 1);
    assert_eq!(
        t.count(|e| matches!(e, TraceEvent::Dropped { reason: "dead-node", .. })),
        3
    );
    assert_eq!(t.count(|e| matches!(e, TraceEvent::Delivered { .. })), 0);
}

#[test]
fn network_counters_reflect_traffic() {
    let mut w = World::with_network(3, NetworkConfig::default());
    let a = w.add_node("a");
    let b = w.add_node("b");
    let rx = w.add_process(b, Chatter { peer: None, count: 0 });
    let _tx = w.add_process(a, Chatter { peer: Some(rx), count: 10 });
    w.run_until_idle();
    assert_eq!(w.network().sent, 10);
    assert!(w.network().bytes_sent >= 10 * 512);
    assert_eq!(w.network().dropped_partition, 0);
}

#[test]
fn procs_on_lists_only_live_processes() {
    let mut w = World::with_network(0, NetworkConfig::ideal());
    let n = w.add_node("x");
    let p1 = w.add_process(n, Chatter { peer: None, count: 0 });
    let p2 = w.add_process(n, Chatter { peer: None, count: 0 });
    assert_eq!(w.procs_on(n), vec![p1, p2]);
    w.kill_proc(p1);
    assert_eq!(w.procs_on(n), vec![p2]);
    assert_eq!(w.node_of(p2), n);
    assert_eq!(w.node_count(), 1);
}

#[test]
fn run_for_advances_relative_time() {
    let mut w = World::new(0);
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(w.now(), SimTime::ZERO + SimDuration::from_secs(5));
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(w.now(), SimTime::ZERO + SimDuration::from_secs(10));
}
