//! `jrs-flow` — call-graph replication-boundary analysis for the
//! JOSHUA workspace.
//!
//! JOSHUA's symmetric active/active replication (PAPER.md §3) is
//! correct only if every head is a deterministic state machine driven
//! exclusively by the totally ordered command stream: replicated state
//! may change *only* in response to delivered commands, never from
//! timers, raw network receives, or local fault handlers. detlint
//! checks determinism *lexically* (per file) and jrs-mc checks it
//! *dynamically* (bounded interleavings); this crate closes the gap in
//! between with a lightweight whole-workspace **static dataflow**
//! pass: it extracts every function, call site, and state write from
//! the sources (building on detlint's comment/string-stripping
//! scanner), links them into a cross-crate call graph, and enforces
//! graph-reachability invariants with shortest-call-chain witnesses:
//!
//! * **F001** — replicated state ([`rules::FlowConfig::replicated`])
//!   is only written on paths through the ordered-delivery/recovery
//!   gates ([`rules::FlowConfig::gates`]).
//! * **F002** — no nondeterminism source is reachable from a
//!   replicated-state mutator.
//! * **F003** — no panic construct is reachable from a `Process`
//!   callback.
//! * **F004** — matches over protocol enums never end in catch-alls.
//! * **FSUP** — every suppression (flow's own and detlint's) is
//!   load-bearing and justified.
//!
//! Waive a finding inline with `// flow: allow(F003): <reason>` on the
//! offending line or the line above. Reasons are mandatory and audited
//! (FSUP flags dead pragmas), mirroring detlint's pragma discipline.
//!
//! Run it three ways:
//!
//! * `cargo run -p jrs-flow -- check [--json]` — CI/CLI entry;
//! * the root crate's `tests/flow_gate.rs` — `cargo test` enforces it;
//! * [`check_workspace`] / [`check_files`] — library API for both.
//!
//! ## Scope and limitations
//!
//! The extractor is a brace/token state machine tuned to rustfmt-shaped
//! code, not a parser; receiver resolution is heuristic (see
//! [`graph`]). Unresolvable calls degrade to *no edge* (possible
//! false negatives through trait objects and closures) or, when a
//! method name is unique workspace-wide, to a name-matched edge
//! (possible false positives — waived with audited pragmas). That
//! trade keeps the analysis zero-dependency, fast, and honest about
//! what it proves: the *shape* of the call graph, not a type-checked
//! semantics. detlint and jrs-mc cover the flanks.

pub mod graph;
pub mod model;
pub mod parse;
pub mod report;
pub mod rules;

pub use report::{ChainHop, Finding, Report};
pub use rules::FlowConfig;

use model::Model;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Analyse a set of in-memory files (the unit the fixture tests
/// drive). `files` are `(workspace-relative path, source text)`.
pub fn check_files(cfg: &FlowConfig, files: &[(&str, &str)]) -> Report {
    let model = Model {
        files: files.iter().map(|(p, t)| parse::extract(p, t)).collect(),
    };
    let (findings, fns, edges) = rules::run(cfg, &model);
    Report { findings, files_scanned: files.len(), fns, edges }
}

/// Walk the workspace rooted at `root` and analyse every
/// `crates/*/src/**/*.rs` plus the umbrella crate's `src/` (shims are
/// external API stand-ins, not replica logic, and are skipped).
pub fn check_workspace(cfg: &FlowConfig, root: &Path) -> io::Result<Report> {
    let mut rel_files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(root, &src, &mut rel_files)?;
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs(root, &umbrella, &mut rel_files)?;
    }
    rel_files.sort();

    let mut model = Model::default();
    for rel in &rel_files {
        let text = fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_else(|| rel.to_string_lossy().into_owned());
        model.files.push(parse::extract(&rel_str, &text));
    }
    let (findings, fns, edges) = rules::run(cfg, &model);
    Ok(Report { findings, files_scanned: rel_files.len(), fns, edges })
}

/// Find the workspace root by walking up from `start` to the first
/// `Cargo.toml` containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
        }
        cur = dir.parent();
    }
    None
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}
