//! Cross-crate call graph over the extracted model, with the receiver
//! resolution heuristics and shortest-path (BFS) witness chains the
//! rules report.
//!
//! Resolution is deliberately conservative for the workspace's shapes:
//!
//! * `self.m(..)` → the impl type's method.
//! * `self.field.m(..)` → the field's (peeled) type's method.
//! * `var.m(..)` → the parameter's or `let` binding's type's method.
//! * `Type::m(..)` / `Self::m(..)` → that type's method.
//! * `free_fn(..)` → same-crate free function, else any workspace free
//!   function of that name.
//! * anything else (chained receivers) → linked only when the method
//!   name is unique workspace-wide, so common std names never create
//!   phantom edges.
//!
//! Edges never point into `#[cfg(test)]` functions from production
//! functions: a test helper sharing a name with a production method
//! must not create a phantom path.

use crate::model::{BindSrc, FnDef, Model, Recv};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A resolved call edge: callee function id plus the source line of
/// the call site (for witness chains).
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee function id.
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
}

/// The call graph: flat function table plus adjacency.
pub struct Graph<'m> {
    /// Flattened function list; ids index into this.
    pub fns: Vec<&'m FnDef>,
    /// Outgoing edges per function id.
    pub edges: Vec<Vec<Edge>>,
    /// `Type::name` / bare `name` → function ids.
    pub by_qualified: BTreeMap<&'m str, Vec<usize>>,
    /// Method name → function ids (methods only, for the unique-name
    /// fallback).
    by_method_name: BTreeMap<&'m str, Vec<usize>>,
    /// Count of call sites that resolved to no function (std calls,
    /// closures, macros — reported as a statistic, not an error).
    pub unresolved: usize,
}

/// Build the call graph for a whole model.
pub fn build(model: &Model) -> Graph<'_> {
    let fns: Vec<&FnDef> = model.fns().map(|(_, _, f)| f).collect();
    let mut by_qualified: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_method_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in fns.iter().enumerate() {
        by_qualified.entry(f.qualified.as_str()).or_default().push(id);
        if f.impl_type.is_some() {
            by_method_name.entry(f.name.as_str()).or_default().push(id);
        }
    }
    let mut g =
        Graph { fns, edges: Vec::new(), by_qualified, by_method_name, unresolved: 0 };

    let mut all_edges: Vec<Vec<Edge>> = Vec::with_capacity(g.fns.len());
    let mut unresolved = 0usize;
    for f in &g.fns {
        let mut edges = Vec::new();
        for call in &f.calls {
            let targets: Vec<usize> = match &call.recv {
                Recv::SelfDot => match f.impl_type.as_deref() {
                    Some(t) => g.lookup_method(f, t, &call.name),
                    None => Vec::new(),
                },
                Recv::Field(field) => {
                    let ft = f
                        .impl_type
                        .as_deref()
                        .and_then(|t| model.field_type(t, field));
                    match ft {
                        Some(t) => g.lookup_method(f, t, &call.name),
                        None => Vec::new(),
                    }
                }
                Recv::Var(v) => match g.var_type(model, f, v) {
                    Some(t) => g.lookup_method(f, &t, &call.name),
                    None => g.unique_method(f, &call.name),
                },
                Recv::Path(p) => {
                    let t = if p == "Self" {
                        f.impl_type.clone().unwrap_or_else(|| p.clone())
                    } else {
                        p.clone()
                    };
                    g.lookup_method(f, &t, &call.name)
                }
                Recv::Bare => {
                    // Free function: same name, no impl type.
                    let ids: Vec<usize> = g
                        .by_qualified
                        .get(call.name.as_str())
                        .map(|ids| {
                            ids.iter()
                                .copied()
                                .filter(|&id| g.fns[id].impl_type.is_none())
                                .collect()
                        })
                        .unwrap_or_default();
                    g.prefer_same_crate(f, &ids)
                }
                Recv::Chain => g.unique_method(f, &call.name),
            };
            if targets.is_empty() {
                unresolved += 1;
            }
            for t in targets {
                edges.push(Edge { to: t, line: call.line });
            }
        }
        all_edges.push(edges);
    }
    g.edges = all_edges;
    g.unresolved = unresolved;
    g
}

impl<'m> Graph<'m> {
    /// Candidate targets for `ty::name`, preferring the caller's
    /// crate; production callers never link into test functions.
    fn lookup_method(&self, caller: &FnDef, ty: &str, name: &str) -> Vec<usize> {
        let q = format!("{ty}::{name}");
        let Some(ids) = self.by_qualified.get(q.as_str()) else { return Vec::new() };
        self.prefer_same_crate(caller, ids)
    }

    fn prefer_same_crate(&self, caller: &FnDef, ids: &[usize]) -> Vec<usize> {
        let visible: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| caller.is_test || !self.fns[id].is_test)
            .collect();
        let same: Vec<usize> = visible
            .iter()
            .copied()
            .filter(|&id| self.fns[id].crate_key == caller.crate_key)
            .collect();
        if same.is_empty() {
            visible
        } else {
            same
        }
    }

    /// Unique-name fallback for unresolvable receivers: link only when
    /// exactly one non-test method in the workspace has this name.
    fn unique_method(&self, caller: &FnDef, name: &str) -> Vec<usize> {
        let Some(ids) = self.by_method_name.get(name) else { return Vec::new() };
        let vis: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| caller.is_test || !self.fns[id].is_test)
            .collect();
        if vis.len() == 1 {
            vis
        } else {
            Vec::new()
        }
    }

    /// Type of a variable inside `f`: `let` bindings first (last one
    /// wins), then parameters.
    fn var_type(&self, model: &Model, f: &FnDef, var: &str) -> Option<String> {
        let bound = f.bindings.iter().rev().find(|(n, _)| n == var).map(|(_, s)| s);
        if let Some(src) = bound {
            return match src {
                BindSrc::Typed(t) => Some(t.clone()),
                BindSrc::FieldOf(field) => {
                    let t = f.impl_type.as_deref()?;
                    model.field_type(t, field).map(str::to_string)
                }
                BindSrc::SelfRet(m) => {
                    let t = f.impl_type.as_deref()?;
                    let q = format!("{t}::{m}");
                    self.by_qualified
                        .get(q.as_str())
                        .and_then(|ids| ids.first())
                        .and_then(|&id| self.fns[id].ret.clone())
                }
            };
        }
        f.params.iter().find(|(n, _)| n == var).map(|(_, t)| t.clone())
    }

    /// Function ids matching a gate spec: `Type::method`, `Type::*`
    /// (every method of `Type`), or a bare free-function name.
    pub fn resolve_spec(&self, spec: &str) -> Vec<usize> {
        if let Some(ty) = spec.strip_suffix("::*") {
            let prefix = format!("{ty}::");
            return self
                .by_qualified
                .iter()
                .filter(|(q, _)| q.starts_with(&prefix))
                .flat_map(|(_, ids)| ids.iter().copied())
                .collect();
        }
        self.by_qualified.get(spec).cloned().unwrap_or_default()
    }

    /// Shortest-hop BFS from `starts`, never entering `blocked`.
    /// Returns a parent map: reached id → `Some((pred, call line))`,
    /// or `None` for the starts themselves.
    pub fn reach(
        &self,
        starts: &[usize],
        blocked: &BTreeSet<usize>,
    ) -> BTreeMap<usize, Option<(usize, usize)>> {
        let mut parents: BTreeMap<usize, Option<(usize, usize)>> = BTreeMap::new();
        let mut q = VecDeque::new();
        for &s in starts {
            if blocked.contains(&s) || parents.contains_key(&s) {
                continue;
            }
            parents.insert(s, None);
            q.push_back(s);
        }
        while let Some(v) = q.pop_front() {
            for e in &self.edges[v] {
                if blocked.contains(&e.to) || parents.contains_key(&e.to) {
                    continue;
                }
                parents.insert(e.to, Some((v, e.line)));
                q.push_back(e.to);
            }
        }
        parents
    }

    /// Walk parent pointers back to a start: the chain of function ids
    /// from start to `v`, each with the call line used to enter it
    /// (`None` for the start).
    pub fn chain_to(
        &self,
        parents: &BTreeMap<usize, Option<(usize, usize)>>,
        v: usize,
    ) -> Vec<(usize, Option<usize>)> {
        let mut chain = Vec::new();
        let mut cur = v;
        let mut entered_via: Option<usize> = None;
        loop {
            chain.push((cur, entered_via));
            match parents.get(&cur) {
                Some(Some((pred, line))) => {
                    entered_via = Some(*line);
                    cur = *pred;
                }
                _ => break,
            }
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::extract;

    fn model_of(files: &[(&str, &str)]) -> Model {
        Model { files: files.iter().map(|(p, t)| extract(p, t)).collect() }
    }

    #[test]
    fn edges_resolve_through_fields_and_params() {
        let m = model_of(&[(
            "crates/core/src/a.rs",
            "\
struct Server { group: Member }
struct Member { n: u64 }
impl Member {
    fn broadcast(&mut self) {}
}
impl Server {
    fn tick(&mut self, ctx: &mut Ctx) {
        self.group.broadcast();
        self.flush();
    }
    fn flush(&mut self) {}
}
",
        )]);
        let g = build(&m);
        let tick = g.resolve_spec("Server::tick")[0];
        let names: Vec<&str> =
            g.edges[tick].iter().map(|e| g.fns[e.to].qualified.as_str()).collect();
        assert!(names.contains(&"Member::broadcast"));
        assert!(names.contains(&"Server::flush"));
    }

    #[test]
    fn bfs_respects_blocked_gates_and_yields_chains() {
        let m = model_of(&[(
            "crates/core/src/a.rs",
            "\
impl S {
    fn root(&mut self) {
        self.gate();
        self.side();
    }
    fn gate(&mut self) {
        self.target();
    }
    fn side(&mut self) {
        self.target();
    }
    fn target(&mut self) {}
}
",
        )]);
        let g = build(&m);
        let root = g.resolve_spec("S::root")[0];
        let gate = g.resolve_spec("S::gate")[0];
        let target = g.resolve_spec("S::target")[0];
        let blocked: BTreeSet<usize> = [gate].into_iter().collect();
        let parents = g.reach(&[root], &blocked);
        assert!(parents.contains_key(&target), "reaches target around the gate");
        let chain = g.chain_to(&parents, target);
        let path: Vec<&str> =
            chain.iter().map(|(id, _)| g.fns[*id].qualified.as_str()).collect();
        assert_eq!(path, vec!["S::root", "S::side", "S::target"]);
        // With the side door also blocked nothing reaches the target.
        let blocked2: BTreeSet<usize> =
            [gate, g.resolve_spec("S::side")[0]].into_iter().collect();
        assert!(!g.reach(&[root], &blocked2).contains_key(&target));
    }

    #[test]
    fn test_helpers_never_shadow_production_methods() {
        let m = model_of(&[(
            "crates/core/src/a.rs",
            "\
impl S {
    fn caller(&mut self, x: Widget) {
        x.frob();
    }
}
#[cfg(test)]
mod tests {
    impl Widget {
        fn frob(&self) {}
    }
}
",
        )]);
        let g = build(&m);
        let caller = g.resolve_spec("S::caller")[0];
        assert!(g.edges[caller].is_empty(), "no edge into a test-only impl");
    }
}
