//! CLI for the call-graph analysis: `cargo run -p jrs-flow -- check`.

use jrs_flow::FlowConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "jrs-flow — call-graph replication-boundary analysis for the JOSHUA workspace

USAGE:
    jrs-flow check [--root <dir>] [--json]   analyse the workspace; exit 1 on findings
    jrs-flow rules                           print the rule set and the audited registry

Waive a finding inline with `// flow: allow(F003): <reason>` on the offending
line or the line above it. Reasons are mandatory; stale pragmas are themselves
findings (FSUP)."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--json" => json = true,
            _ => return usage(),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match jrs_flow::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "jrs-flow: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cfg = FlowConfig::workspace();
    match jrs_flow::check_workspace(&cfg, &root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
                return if report.clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
            for f in &report.findings {
                println!("{f}");
            }
            if report.clean() {
                println!(
                    "flow: OK — {} files, {} fns, {} call edges, 0 findings",
                    report.files_scanned, report.fns, report.edges
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "flow: FAILED — {} finding(s) across {} files ({} fns, {} edges; \
                     run `cargo run -p jrs-flow -- rules` for rationale)",
                    report.findings.len(),
                    report.files_scanned,
                    report.fns,
                    report.edges
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("jrs-flow: I/O error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    println!("jrs-flow rule set (call-graph replication invariants)\n");
    println!(
        "F001  replicated state is only written through ordered-delivery gates\n      \
         checked by gate interposition: BFS from Process callbacks with the\n      \
         gates removed; any reachable mutator is a leak (shortest chain shown)\n"
    );
    println!(
        "F002  no nondeterminism source (wall clock, ambient RNG, env, thread\n      \
         spawn, hash-ordered collections) reachable from a state mutator\n"
    );
    println!(
        "F003  no panic construct (unwrap/expect/panic!/unreachable!/todo!)\n      \
         reachable from a Process callback — a replica must degrade, not die\n"
    );
    println!(
        "F004  matches over protocol enums never end in a catch-all arm: a new\n      \
         protocol variant must be a compile error, not a silent drop\n"
    );
    println!(
        "FSUP  suppressions must name a known rule, carry a reason, and be\n      \
         load-bearing (flow's own pragmas and detlint's are both audited)\n"
    );
    let cfg = FlowConfig::workspace();
    println!("registered replicated state:");
    for r in &cfg.replicated {
        println!("  {} (roots in: {}) — {}", r.type_name, r.scope.join(", "), r.why);
    }
    println!("\nordered-delivery / recovery gates:");
    for gate in &cfg.gates {
        println!("  {gate}");
    }
    println!("\nexempt roots (audited):");
    for (t, why) in &cfg.exempt_roots {
        println!("  {t} — {why}");
    }
    println!("\nprotocol enums (F004): {}", cfg.protocol_enums.join(", "));
}
