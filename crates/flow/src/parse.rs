//! The extractor: one pass over detlint-cleaned source that recovers
//! items (impl blocks, functions, structs, enums), call sites, atoms,
//! `let` bindings and field writes; plus a second char-level pass that
//! recovers `match` expressions with their arm patterns.
//!
//! This is deliberately *not* a Rust parser. It is a brace/token state
//! machine tuned to rustfmt-shaped code (which the whole workspace is),
//! and it over-approximates: unresolvable constructs degrade to
//! `Recv::Chain` (resolved only when the method name is unique
//! workspace-wide) or are dropped. The rules layer compensates with
//! audited suppression pragmas for the rare residual false positive.

use crate::model::{
    Atom, AtomKind, BindSrc, CallSite, EnumDef, FieldWrite, FileFacts, FnDef, MatchArm,
    MatchSite, Recv, StructDef,
};
use jrs_detlint::scanner::{self, has_token, token_position};

/// Strip a type expression down to the identifying type name:
/// `&mut Option<Box<Outstanding>>` → `Outstanding`. Returns `None` for
/// types with no useful head (tuples, slices, `impl`/`dyn` bounds).
pub fn peel(raw: &str) -> Option<String> {
    let mut s = raw.trim();
    loop {
        let before = s;
        s = s.trim_start_matches('&').trim_start();
        if let Some(rest) = s.strip_prefix('\'') {
            // Lifetime: skip the ident.
            let end = rest.find(|c: char| !c.is_alphanumeric() && c != '_').unwrap_or(rest.len());
            s = rest[end..].trim_start();
        }
        if let Some(rest) = s.strip_prefix("mut ") {
            s = rest.trim_start();
        }
        if s == before {
            break;
        }
    }
    for wrapper in ["Option<", "Box<", "Rc<", "Arc<"] {
        if let Some(rest) = s.strip_prefix(wrapper) {
            let inner = rest.strip_suffix('>').unwrap_or(rest);
            return peel(inner);
        }
    }
    if s.starts_with("impl ") || s.starts_with("dyn ") || s.starts_with('(') || s.starts_with('[')
    {
        return None;
    }
    let end = s
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(s.len());
    let base = &s[..end];
    let name = base.rsplit("::").next().unwrap_or(base);
    if name.is_empty() || !name.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
        return None;
    }
    Some(name.to_string())
}

/// Crate key for a workspace-relative path (`crates/<key>/…`, shims
/// become `shim-<key>`, the umbrella crate's `src/` is `joshua-repro`).
pub fn crate_key(rel_path: &str) -> String {
    let p = rel_path.replace('\\', "/");
    let mut parts = p.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        Some("shims") => format!("shim-{}", parts.next().unwrap_or("unknown")),
        Some("src") => "joshua-repro".to_string(),
        _ => "unknown".to_string(),
    }
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "fn", "impl", "let",
    "mut", "ref", "move", "pub", "use", "mod", "where", "unsafe", "async", "await", "dyn",
    "break", "continue", "struct", "enum", "trait", "type", "const", "static", "crate", "super",
    "box", "yield",
];

/// What kind of item signature is being accumulated across lines.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SigKind {
    Fn,
    Impl,
    Struct,
    Enum,
}

/// A block we track on the open-brace stack.
struct Block {
    /// Brace depth *before* the opening `{`.
    open_depth: i32,
    kind: BlockKind,
}

enum BlockKind {
    /// `impl` block: (peeled type, peeled trait).
    Impl(Option<String>, Option<String>),
    /// Function body: index into `fns`.
    Fn(usize),
    /// Struct body: index into `structs`.
    Struct(usize),
    /// Enum body: index into `enums`.
    Enum(usize),
}

/// Extract all facts from one file.
pub fn extract(rel_path: &str, text: &str) -> FileFacts {
    let clean = scanner::preprocess_keyed(text, "flow");
    let key = crate_key(rel_path);
    let test_start = clean.test_module_start().unwrap_or(usize::MAX);

    let mut fns: Vec<FnDef> = Vec::new();
    let mut structs: Vec<StructDef> = Vec::new();
    let mut enums: Vec<EnumDef> = Vec::new();

    let mut depth: i32 = 0;
    let mut blocks: Vec<Block> = Vec::new();
    let mut pending: Option<(SigKind, String, usize, i32)> = None; // (kind, text, line, paren depth)
    let mut pending_test_attr = false;
    // Open depth of the outermost #[cfg(test)] / #[test] block, if any.
    let mut test_region: Option<i32> = None;

    for (idx, line) in clean.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.starts_with("#[") {
            if trimmed.starts_with("#[cfg(test)") || trimmed.starts_with("#[test]") {
                pending_test_attr = true;
            }
            continue;
        }

        let mut rest: &str = line;
        loop {
            // Phase 1: finish an in-flight item signature.
            if let Some((kind, sig, sig_line, mut pd)) = pending.take() {
                let mut sig = sig;
                let mut done = None;
                for (ci, ch) in rest.char_indices() {
                    match ch {
                        '(' => pd += 1,
                        ')' => pd -= 1,
                        '{' if pd == 0 => {
                            done = Some((ci, true));
                            break;
                        }
                        ';' if pd == 0 => {
                            done = Some((ci, false));
                            break;
                        }
                        _ => {}
                    }
                }
                if let Some((ci, opens)) = done {
                    sig.push(' ');
                    sig.push_str(&rest[..ci]);
                    let consumed = ci;
                    if opens {
                        let open_depth = depth;
                        let is_test =
                            test_region.is_some() || sig_line >= test_start || pending_test_attr;
                        match kind {
                            SigKind::Fn => {
                                let (impl_type, impl_trait) = blocks
                                    .iter()
                                    .rev()
                                    .find_map(|b| match &b.kind {
                                        BlockKind::Impl(t, tr) => {
                                            Some((t.clone(), tr.clone()))
                                        }
                                        _ => None,
                                    })
                                    .unwrap_or((None, None));
                                let def = parse_fn_sig(
                                    &sig, rel_path, &key, sig_line, impl_type, impl_trait,
                                    is_test,
                                );
                                fns.push(def);
                                blocks.push(Block {
                                    open_depth,
                                    kind: BlockKind::Fn(fns.len() - 1),
                                });
                            }
                            SigKind::Impl => {
                                let (t, tr) = parse_impl_sig(&sig);
                                blocks.push(Block {
                                    open_depth,
                                    kind: BlockKind::Impl(t, tr),
                                });
                            }
                            SigKind::Struct => {
                                structs.push(StructDef {
                                    crate_key: key.clone(),
                                    name: item_name(&sig, "struct"),
                                    fields: Vec::new(),
                                    is_test,
                                });
                                blocks.push(Block {
                                    open_depth,
                                    kind: BlockKind::Struct(structs.len() - 1),
                                });
                            }
                            SigKind::Enum => {
                                enums.push(EnumDef {
                                    crate_key: key.clone(),
                                    path: rel_path.to_string(),
                                    line: sig_line,
                                    name: item_name(&sig, "enum"),
                                    variants: Vec::new(),
                                    is_test,
                                });
                                blocks.push(Block {
                                    open_depth,
                                    kind: BlockKind::Enum(enums.len() - 1),
                                });
                            }
                        }
                        if pending_test_attr && test_region.is_none() {
                            test_region = Some(open_depth);
                        }
                        pending_test_attr = false;
                        depth += 1;
                        rest = &rest[consumed + 1..];
                        continue; // re-enter loop: more code may follow on this line
                    }
                    // `;` — declaration without a body (trait method,
                    // tuple struct, type alias …): drop it.
                    pending_test_attr = false;
                    rest = &rest[consumed + 1..];
                    continue;
                }
                sig.push(' ');
                sig.push_str(rest);
                pending = Some((kind, sig, sig_line, pd));
                break;
            }

            // Phase 2: look for a new item starter (only outside fn
            // bodies, except `fn` which also starts nested items).
            let in_fn = matches!(
                blocks.last(),
                Some(Block { kind: BlockKind::Fn(_), .. })
            );
            let starter = if in_fn {
                None
            } else {
                ["fn", "impl", "struct", "enum"]
                    .iter()
                    .filter_map(|kw| token_position(rest, kw).map(|p| (p, *kw)))
                    .min_by_key(|(p, _)| *p)
            };
            if let Some((pos, kw)) = starter {
                // Depth-count the prefix, then open the signature.
                scan_braces(&rest[..pos], &mut depth, &mut blocks, &mut fns, line_no);
                let kind = match kw {
                    "fn" => SigKind::Fn,
                    "impl" => SigKind::Impl,
                    "struct" => SigKind::Struct,
                    _ => SigKind::Enum,
                };
                pending = Some((kind, String::new(), line_no, 0));
                rest = &rest[pos + kw.len()..];
                continue;
            }

            // Phase 3: plain code line (or remainder).
            if !rest.is_empty() {
                // `#[cfg(test)] mod tests {` — an untracked block, but
                // the fns inside must count as test scaffolding.
                if pending_test_attr && has_token(rest, "mod") && rest.contains('{') {
                    if test_region.is_none() {
                        test_region = Some(depth);
                    }
                    pending_test_attr = false;
                }
                match blocks.last() {
                    Some(Block { kind: BlockKind::Fn(fi), .. }) => {
                        let fi = *fi;
                        scan_body_line(rest, line_no, &mut fns[fi]);
                    }
                    Some(Block { kind: BlockKind::Struct(si), open_depth })
                        if depth == open_depth + 1 =>
                    {
                        let body = rest.split('}').next().unwrap_or(rest);
                        for part in split_top_level(body) {
                            if let Some((name, ty)) = parse_field(part) {
                                structs[*si].fields.push((name, ty));
                            }
                        }
                    }
                    Some(Block { kind: BlockKind::Enum(ei), open_depth })
                        if depth == open_depth + 1 =>
                    {
                        let body = rest.split('}').next().unwrap_or(rest);
                        for part in split_top_level(body) {
                            if let Some(v) = parse_variant(part) {
                                enums[*ei].variants.push(v);
                            }
                        }
                    }
                    _ => {}
                }
                scan_braces(rest, &mut depth, &mut blocks, &mut fns, line_no);
            }
            if let Some(td) = test_region {
                if depth <= td {
                    test_region = None;
                }
            }
            break;
        }
    }
    // Close any function left open at EOF.
    for b in &blocks {
        if let BlockKind::Fn(fi) = b.kind {
            fns[fi].end_line = clean.code_lines.len();
        }
    }

    let matches = extract_matches(rel_path, &key, &clean.code_lines, &fns, test_start);
    FileFacts {
        path: rel_path.to_string(),
        crate_key: key,
        text: text.to_string(),
        fns,
        structs,
        enums,
        matches,
        flow_pragmas: clean.pragmas,
    }
}

/// Count braces in `s`, popping tracked blocks as they close.
fn scan_braces(
    s: &str,
    depth: &mut i32,
    blocks: &mut Vec<Block>,
    fns: &mut [FnDef],
    line_no: usize,
) {
    for ch in s.chars() {
        match ch {
            '{' => *depth += 1,
            '}' => {
                *depth -= 1;
                while blocks.last().is_some_and(|b| b.open_depth >= *depth) {
                    let b = blocks.pop().unwrap();
                    if let BlockKind::Fn(fi) = b.kind {
                        fns[fi].end_line = line_no;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Parse an accumulated `fn` signature (text between `fn` and `{`).
fn parse_fn_sig(
    sig: &str,
    path: &str,
    key: &str,
    line: usize,
    impl_type: Option<String>,
    impl_trait: Option<String>,
    is_test: bool,
) -> FnDef {
    let sig = sig.trim();
    let name_end = sig
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(sig.len());
    let name = sig[..name_end].to_string();

    // Parameter list: first `(` .. matching `)`.
    let mut params = Vec::new();
    let mut mut_self = false;
    let mut mut_param_types = Vec::new();
    let mut after_params = "";
    // The parameter `(` is the first one outside the generics `<..>`
    // (which may themselves contain parens: `<F: Fn(u64) -> u64>`).
    let mut angle = 0i32;
    let mut param_open = None;
    for (ci, ch) in sig.char_indices() {
        match ch {
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0),
            '(' if angle == 0 => {
                param_open = Some(ci);
                break;
            }
            _ => {}
        }
    }
    if let Some(open) = param_open {
        let mut pd = 0;
        let mut close = sig.len();
        for (ci, ch) in sig[open..].char_indices() {
            match ch {
                '(' | '[' => pd += 1,
                ')' | ']' => {
                    pd -= 1;
                    if pd == 0 {
                        close = open + ci;
                        break;
                    }
                }
                _ => {}
            }
        }
        let plist = &sig[open + 1..close.min(sig.len())];
        after_params = sig.get(close + 1..).unwrap_or("");
        for part in split_top_level(plist) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if has_token(part, "self") && !part.contains(':') {
                if part.contains("mut") {
                    mut_self = true;
                }
                continue;
            }
            if let Some(colon) = part.find(':') {
                let pname = part[..colon]
                    .trim()
                    .trim_start_matches("mut ")
                    .trim_start_matches("ref ")
                    .trim();
                let raw_ty = part[colon + 1..].trim();
                if let Some(ty) = peel(raw_ty) {
                    if raw_ty.starts_with("&mut ")
                        || (raw_ty.starts_with("&'") && raw_ty.contains(" mut "))
                    {
                        mut_param_types.push(ty.clone());
                    }
                    if pname.chars().all(|c| c.is_alphanumeric() || c == '_')
                        && !pname.is_empty()
                        && pname != "_"
                    {
                        params.push((pname.to_string(), ty));
                    }
                }
            }
        }
    }
    let ret = after_params
        .find("->")
        .map(|p| &after_params[p + 2..])
        .map(|r| match r.find(" where ") {
            Some(w) => &r[..w],
            None => r,
        })
        .and_then(peel);

    let qualified = match &impl_type {
        Some(t) => format!("{t}::{name}"),
        None => name.clone(),
    };
    FnDef {
        path: path.to_string(),
        crate_key: key.to_string(),
        line,
        end_line: line,
        name,
        impl_type,
        impl_trait,
        qualified,
        mut_self,
        params,
        mut_param_types,
        ret,
        is_test,
        calls: Vec::new(),
        atoms: Vec::new(),
        bindings: Vec::new(),
        field_writes: Vec::new(),
    }
}

/// Split `a: A, b: BTreeMap<K, V>` at top-level commas.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, ch) in s.char_indices() {
        match ch {
            '<' | '(' | '[' | '{' => depth += 1,
            '>' | ')' | ']' | '}' => depth -= 1,
            ',' if depth <= 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Parse an `impl` signature (text between `impl` and `{`) into
/// `(type, trait)`.
fn parse_impl_sig(sig: &str) -> (Option<String>, Option<String>) {
    let mut s = sig.trim();
    // Strip leading generics `<..>` (balanced).
    if s.starts_with('<') {
        let mut d = 0i32;
        for (i, ch) in s.char_indices() {
            match ch {
                '<' => d += 1,
                '>' => {
                    d -= 1;
                    if d == 0 {
                        s = s[i + 1..].trim();
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    // Drop a trailing `where` clause.
    if let Some(w) = token_position(s, "where") {
        s = s[..w].trim_end();
    }
    match token_position(s, "for") {
        Some(p) => {
            let tr = peel(&s[..p]);
            let ty = peel(&s[p + 3..]);
            (ty, tr)
        }
        None => (peel(s), None),
    }
}

/// Item name following `struct` / `enum` in an accumulated signature.
fn item_name(sig: &str, _kw: &str) -> String {
    let sig = sig.trim();
    let end = sig
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(sig.len());
    sig[..end].to_string()
}

/// Parse one struct-body line into `(field, peeled type)`.
fn parse_field(line: &str) -> Option<(String, String)> {
    let t = line.trim().trim_start_matches("pub ").trim_start_matches("(crate) ").trim();
    let t = t.strip_prefix("pub(crate)").map(str::trim).unwrap_or(t);
    let colon = t.find(':')?;
    let name = t[..colon].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    let raw_ty = t[colon + 1..].trim().trim_end_matches(',');
    Some((name.to_string(), peel(raw_ty)?))
}

/// Parse one enum-body line into a variant name.
fn parse_variant(line: &str) -> Option<String> {
    let t = line.trim();
    let first = t.chars().next()?;
    if !(first.is_alphabetic() || first == '_') {
        return None;
    }
    let end = t
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(t.len());
    let name = &t[..end];
    if KEYWORDS.contains(&name) || !first.is_uppercase() {
        return None;
    }
    Some(name.to_string())
}

/// Scan one body line for calls, atoms, bindings and field writes.
fn scan_body_line(line: &str, line_no: usize, f: &mut FnDef) {
    scan_atoms(line, line_no, f);
    scan_bindings(line, line_no, f);
    scan_field_writes(line, line_no, f);
    scan_calls(line, line_no, f);
}

fn scan_atoms(line: &str, line_no: usize, f: &mut FnDef) {
    if line.contains("debug_assert") {
        return;
    }
    let mut push = |kind, token: &str| {
        f.atoms.push(Atom { line: line_no, kind, token: token.to_string() });
    };
    for pat in [".unwrap()", ".expect("] {
        if line.contains(pat) {
            push(AtomKind::Panic, pat.trim_matches(|c| c == '.' || c == '(' || c == ')'));
        }
    }
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        if line.contains(mac) && !line.contains("catch_unwind") {
            push(AtomKind::Panic, mac);
        }
    }
    for pat in ["Instant::now", "SystemTime::now"] {
        if line.contains(pat) {
            push(AtomKind::WallClock, pat);
        }
    }
    for tok in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
        if has_token(line, tok) {
            push(AtomKind::Rng, tok);
        }
    }
    if line.contains("rand::random") {
        push(AtomKind::Rng, "rand::random");
    }
    for pat in ["env::var", "env::args", "std::env"] {
        if line.contains(pat) {
            push(AtomKind::Env, pat);
            break;
        }
    }
    if line.contains("thread::spawn") {
        push(AtomKind::ThreadSpawn, "thread::spawn");
    }
    for tok in ["HashMap", "HashSet"] {
        if has_token(line, tok) {
            push(AtomKind::HashOrder, tok);
        }
    }
    // Indexing atoms (off by default in the rules; see FlowConfig).
    let b: Vec<char> = line.chars().collect();
    for i in 0..b.len() {
        if b[i] == '['
            && i > 0
            && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
            && !line.trim_start().starts_with('#')
        {
            push(AtomKind::Index, "[..]");
            break;
        }
    }
}

fn scan_bindings(line: &str, line_no: usize, f: &mut FnDef) {
    let _ = line_no;
    let Some(let_pos) = token_position(line, "let") else { return };
    let after = &line[let_pos + 3..];
    // `let Some(x) = [&[mut ]]self.field` / `let Ok(x) = ..`
    for ctor in ["Some(", "Ok("] {
        if let Some(p) = after.trim_start().strip_prefix(ctor) {
            if let Some(close) = p.find(')') {
                let name = p[..close].trim().trim_start_matches("ref ").trim_start_matches("mut ");
                if name.chars().all(|c| c.is_alphanumeric() || c == '_') && !name.is_empty() {
                    if let Some(eq) = p.find('=') {
                        let rhs = p[eq + 1..].trim().trim_start_matches('&').trim_start_matches("mut ");
                        if let Some(field) = rhs.strip_prefix("self.") {
                            let fe = field
                                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                                .unwrap_or(field.len());
                            f.bindings.push((
                                name.to_string(),
                                BindSrc::FieldOf(field[..fe].to_string()),
                            ));
                        }
                    }
                }
            }
            return;
        }
    }
    // `let [mut] name[: Type] = rhs`
    let after = after.trim_start().strip_prefix("mut ").map(str::trim_start).unwrap_or(after.trim_start());
    let name_end = after
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(after.len());
    let name = &after[..name_end];
    if name.is_empty() || KEYWORDS.contains(&name) {
        return;
    }
    let tail = after[name_end..].trim_start();
    if let Some(ty_part) = tail.strip_prefix(':') {
        let ty_end = ty_part.find('=').unwrap_or(ty_part.len());
        if let Some(ty) = peel(&ty_part[..ty_end]) {
            f.bindings.push((name.to_string(), BindSrc::Typed(ty)));
        }
        return;
    }
    let Some(rhs) = tail.strip_prefix('=') else { return };
    let rhs = rhs.trim_start().trim_start_matches('&').trim_start_matches("mut ");
    if let Some(sfield) = rhs.strip_prefix("self.") {
        let fe = sfield
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(sfield.len());
        let fname = &sfield[..fe];
        match sfield[fe..].chars().next() {
            // `let x = self.method(..)`: bind to the return type.
            Some('(') => f.bindings.push((name.to_string(), BindSrc::SelfRet(fname.to_string()))),
            // `let x = self.field` / `self.field.clone()` / `self.field;`
            _ => f.bindings.push((name.to_string(), BindSrc::FieldOf(fname.to_string()))),
        }
        return;
    }
    // `let x = Type::new(..)` / `Type { .. }` / `Type(..)`
    let te = rhs
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rhs.len());
    let head = &rhs[..te];
    if head.chars().next().is_some_and(|c| c.is_uppercase()) {
        f.bindings.push((name.to_string(), BindSrc::Typed(head.to_string())));
    }
}

fn scan_field_writes(line: &str, line_no: usize, f: &mut FnDef) {
    let mut from = 0;
    while let Some(rel) = line[from..].find("self.") {
        let at = from + rel + 5;
        from = at;
        let field_end = line[at..]
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map(|e| at + e)
            .unwrap_or(line.len());
        let field = &line[at..field_end];
        if field.is_empty() {
            continue;
        }
        let tail = line[field_end..].trim_start();
        if tail.starts_with('=') && !tail.starts_with("==") && !tail.starts_with("=>") {
            f.field_writes.push(FieldWrite { line: line_no, field: field.to_string() });
        }
    }
}

fn scan_calls(line: &str, line_no: usize, f: &mut FnDef) {
    let b: Vec<char> = line.chars().collect();
    for i in 0..b.len() {
        if b[i] != '(' {
            continue;
        }
        // Identifier immediately before the `(`.
        let mut s = i;
        while s > 0 && (b[s - 1].is_alphanumeric() || b[s - 1] == '_') {
            s -= 1;
        }
        if s == i {
            continue;
        }
        let name: String = b[s..i].iter().collect();
        if name.chars().next().is_some_and(|c| c.is_numeric()) {
            continue;
        }
        if KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // Macro invocation `name!(`: the `!` follows the name — here it
        // would sit between name and `(`; with our scan the char at
        // b[i-1] is part of the name, so check the char *after* the
        // name, i.e. whether the scan stopped because of `!`.
        // (b[i-1] is the last name char; the `(` is at i — a macro has
        // `!` at i-1 which is not an ident char, so name would be
        // empty. Nothing to do.)
        let before = if s > 0 { Some(b[s - 1]) } else { None };
        let recv = match before {
            Some('.') => {
                // Walk the receiver ident before the dot.
                let mut rs = s - 1;
                while rs > 0 && (b[rs - 1].is_alphanumeric() || b[rs - 1] == '_') {
                    rs -= 1;
                }
                let rcv: String = b[rs..s - 1].iter().collect();
                let before_rcv = if rs > 0 { Some(b[rs - 1]) } else { None };
                if rcv == "self" && before_rcv != Some('.') {
                    Recv::SelfDot
                } else if rcv.is_empty() {
                    Recv::Chain
                } else if before_rcv == Some('.') {
                    // `x.y.name(` — receiver is `y` of `x`; only
                    // `self.field.m()` is resolvable.
                    let mut ss = rs - 1;
                    while ss > 0 && (b[ss - 1].is_alphanumeric() || b[ss - 1] == '_') {
                        ss -= 1;
                    }
                    let outer: String = b[ss..rs - 1].iter().collect();
                    let before_outer = if ss > 0 { Some(b[ss - 1]) } else { None };
                    if outer == "self" && before_outer != Some('.') {
                        Recv::Field(rcv)
                    } else {
                        Recv::Chain
                    }
                } else if before_rcv.is_some_and(|c| c == ')' || c == ']' || c == '?') {
                    Recv::Chain
                } else if rcv.chars().next().is_some_and(char::is_uppercase) {
                    // `Epoch.cmp(` can't occur; uppercase receiver is a
                    // path-less unit struct value — treat as chain.
                    Recv::Chain
                } else {
                    Recv::Var(rcv)
                }
            }
            Some(':') if s >= 2 && b[s - 2] == ':' => {
                // `seg::name(` — walk the segment.
                let mut rs = s - 2;
                while rs > 0 && (b[rs - 1].is_alphanumeric() || b[rs - 1] == '_') {
                    rs -= 1;
                }
                let seg: String = b[rs..s - 2].iter().collect();
                if seg.chars().next().is_some_and(char::is_uppercase) {
                    Recv::Path(seg)
                } else if seg.is_empty() {
                    Recv::Chain
                } else {
                    // `module::free_fn(` — resolve by bare name.
                    Recv::Bare
                }
            }
            _ => {
                // Bare call. Skip uppercase idents (tuple-struct/enum
                // constructors like `Some(`, `ProcId(`), and skip the
                // name of the fn being defined (`fn name(`).
                if name.chars().next().is_some_and(char::is_uppercase) {
                    continue;
                }
                let prefix: String = b[..s].iter().collect();
                let pt = prefix.trim_end();
                if pt.ends_with("fn") {
                    continue;
                }
                Recv::Bare
            }
        };
        f.calls.push(CallSite { line: line_no, name, recv });
    }
}

/// Char-level pass recovering `match` expressions with arm patterns.
fn extract_matches(
    rel_path: &str,
    key: &str,
    code_lines: &[String],
    fns: &[FnDef],
    test_start: usize,
) -> Vec<MatchSite> {
    let joined = code_lines.join("\n");
    let chars: Vec<char> = joined.chars().collect();
    // Map char offset -> 1-based line.
    let mut line_of = Vec::with_capacity(chars.len() + 1);
    let mut ln = 1usize;
    for &c in &chars {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let mut sites = Vec::new();
    let mut search = 0usize;
    let joined_str: &str = &joined;
    while let Some(rel) = joined_str[search..].find("match") {
        let at = search + rel;
        search = at + 5;
        // Token boundaries.
        let before_ok = at == 0
            || !joined_str[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !joined_str[at + 5..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !before_ok || !after_ok {
            continue;
        }
        let match_line = line_of[at.min(line_of.len() - 1)];
        // Find the body-opening `{` at paren/bracket depth 0.
        let mut i = at + 5;
        let mut pd = 0i32;
        let mut body_open = None;
        while i < chars.len() {
            match chars[i] {
                '(' | '[' => pd += 1,
                ')' | ']' => pd -= 1,
                '{' if pd == 0 => {
                    body_open = Some(i);
                    break;
                }
                ';' if pd == 0 => break, // not a match expression after all
                _ => {}
            }
            i += 1;
        }
        let Some(open) = body_open else { continue };
        let scrutinee: String = chars[at + 5..open].iter().collect::<String>().split_whitespace().collect::<Vec<_>>().join(" ");
        // Parse arms.
        let mut arms = Vec::new();
        let mut i = open + 1;
        'outer: while i < chars.len() {
            // Skip whitespace and commas between arms.
            while i < chars.len() && (chars[i].is_whitespace() || chars[i] == ',') {
                i += 1;
            }
            if i >= chars.len() || chars[i] == '}' {
                break;
            }
            // Pattern: until `=>` at local depth 0.
            let pat_start = i;
            let mut d = 0i32;
            let arrow;
            loop {
                if i + 1 >= chars.len() {
                    break 'outer;
                }
                match chars[i] {
                    '(' | '[' | '{' => d += 1,
                    ')' | ']' => d -= 1,
                    '}' => {
                        d -= 1;
                        if d < 0 {
                            break 'outer;
                        }
                    }
                    '=' if chars[i + 1] == '>' && d == 0 => {
                        arrow = i;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            let pattern: String = chars[pat_start..arrow]
                .iter()
                .collect::<String>()
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ");
            arms.push(MatchArm { line: line_of[pat_start.min(line_of.len() - 1)], pattern });
            // Body: balanced block or until `,`/`}` at depth 1.
            i = arrow + 2;
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            if i < chars.len() && chars[i] == '{' {
                let mut d2 = 0i32;
                while i < chars.len() {
                    match chars[i] {
                        '{' => d2 += 1,
                        '}' => {
                            d2 -= 1;
                            if d2 == 0 {
                                i += 1;
                                continue 'outer;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                break;
            }
            let mut d2 = 0i32;
            while i < chars.len() {
                match chars[i] {
                    '(' | '[' | '{' => d2 += 1,
                    ')' | ']' => d2 -= 1,
                    '}' => {
                        d2 -= 1;
                        if d2 < 0 {
                            break 'outer;
                        }
                    }
                    ',' if d2 == 0 => {
                        i += 1;
                        continue 'outer;
                    }
                    _ => {}
                }
                i += 1;
            }
            break;
        }
        let is_test = match_line >= test_start
            || fns
                .iter()
                .find(|f| f.line <= match_line && match_line <= f.end_line)
                .is_some_and(|f| f.is_test);
        sites.push(MatchSite {
            path: rel_path.to_string(),
            crate_key: key.to_string(),
            line: match_line,
            scrutinee,
            arms,
            is_test,
        });
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peel_strips_refs_and_wrappers() {
        assert_eq!(peel("&mut Option<Box<Outstanding>>").as_deref(), Some("Outstanding"));
        assert_eq!(peel("&'a mut Ctx<'_>").as_deref(), Some("Ctx"));
        assert_eq!(peel("jrs_gcs::GroupMember<Payload>").as_deref(), Some("GroupMember"));
        assert_eq!(peel("Vec<ProcId>").as_deref(), Some("Vec"));
        assert_eq!(peel("(u64, u64)"), None);
        assert_eq!(peel("impl Iterator<Item = u8>"), None);
    }

    #[test]
    fn extracts_impl_methods_and_calls() {
        let src = "\
struct Server { core: Engine, n: u64 }
impl Server {
    fn handle(&mut self, ctx: &mut Ctx<'_>) {
        self.apply();
        self.core.tick();
        ctx.send(1);
        helper();
    }
    fn apply(&mut self) {}
}
fn helper() {}
";
        let facts = extract("crates/gcs/src/x.rs", src);
        assert_eq!(facts.structs.len(), 1);
        assert_eq!(facts.structs[0].fields, vec![
            ("core".to_string(), "Engine".to_string()),
            ("n".to_string(), "u64".to_string()),
        ]);
        let handle = facts.fns.iter().find(|f| f.name == "handle").unwrap();
        assert_eq!(handle.qualified, "Server::handle");
        assert!(handle.mut_self);
        assert_eq!(handle.params, vec![("ctx".to_string(), "Ctx".to_string())]);
        let kinds: Vec<(&str, &Recv)> =
            handle.calls.iter().map(|c| (c.name.as_str(), &c.recv)).collect();
        assert!(kinds.contains(&("apply", &Recv::SelfDot)));
        assert!(kinds.contains(&("tick", &Recv::Field("core".to_string()))));
        assert!(kinds.contains(&("send", &Recv::Var("ctx".to_string()))));
        assert!(kinds.contains(&("helper", &Recv::Bare)));
        assert_eq!(facts.fns.iter().filter(|f| f.name == "helper").count(), 1);
    }

    #[test]
    fn multiline_signature_and_trait_impl() {
        let src = "\
impl Process for Head {
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: ProcId,
        msg: Box<Message>,
    ) {
        self.core.apply(1);
    }
}
";
        let facts = extract("crates/pbs/src/x.rs", src);
        let f = &facts.fns[0];
        assert_eq!(f.qualified, "Head::on_message");
        assert_eq!(f.impl_trait.as_deref(), Some("Process"));
        assert_eq!(f.params.len(), 3);
        assert!(f.calls.iter().any(|c| c.name == "apply" && c.recv == Recv::Field("core".into())));
    }

    #[test]
    fn atoms_and_test_regions() {
        let src = "\
fn hot(x: Option<u64>) -> u64 {
    x.unwrap()
}
#[cfg(test)]
mod tests {
    fn t() {
        y.unwrap();
    }
}
";
        let facts = extract("crates/core/src/x.rs", src);
        let hot = facts.fns.iter().find(|f| f.name == "hot").unwrap();
        assert!(!hot.is_test);
        assert_eq!(hot.atoms.iter().filter(|a| a.kind == AtomKind::Panic).count(), 1);
        let t = facts.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
    }

    #[test]
    fn match_sites_with_wildcard() {
        let src = "\
fn route(m: &GcsMsg) -> u32 {
    match m {
        GcsMsg::Heartbeat { .. } => 1,
        GcsMsg::Leave => 2,
        _ => 0,
    }
}
";
        let facts = extract("crates/gcs/src/x.rs", src);
        assert_eq!(facts.matches.len(), 1);
        let m = &facts.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert_eq!(m.arms[2].pattern, "_");
        assert!(m.arms[0].pattern.contains("GcsMsg::Heartbeat"));
    }

    #[test]
    fn enum_variants_extracted() {
        let src = "\
pub enum Wire<P> {
    Raw(GcsMsg<P>),
    Data {
        seq: u64,
        msg: GcsMsg<P>,
    },
    Ack {
        cum: u64,
    },
}
";
        let facts = extract("crates/gcs/src/x.rs", src);
        assert_eq!(facts.enums.len(), 1);
        assert_eq!(facts.enums[0].variants, vec!["Raw", "Data", "Ack"]);
    }

    #[test]
    fn test_module_items_never_shadow_shipping_definitions() {
        // A fixture module re-declares a protocol enum (extra variant)
        // and a struct; lookups must resolve to the shipping versions.
        // Regression for the jrs-flow/jrs-proto shared index: the file
        // with the fixture sorts *before* the real definition.
        let fixture = "\
#[cfg(test)]
mod tests {
    pub enum Wire<P> {
        Raw(GcsMsg<P>),
        Bogus(u8),
    }
    struct Server { core: FakeEngine }
}
";
        let real = "\
pub enum Wire<P> {
    Raw(GcsMsg<P>),
    Data { seq: u64, msg: GcsMsg<P> },
    Ack { cum: u64 },
}
struct Server { core: Engine }
";
        let model = crate::model::Model {
            files: vec![
                extract("crates/flow/src/a.rs", fixture),
                extract("crates/gcs/src/msg.rs", real),
            ],
        };
        let wire = model.enum_def("Wire").expect("shipping Wire resolves");
        assert_eq!(wire.path, "crates/gcs/src/msg.rs");
        assert_eq!(wire.variants, vec!["Raw", "Data", "Ack"]);
        assert_eq!(model.field_type("Server", "core"), Some("Engine"));
        // The fixture items are still extracted, just flagged.
        let fx = &model.files[0];
        assert!(fx.enums.iter().all(|e| e.is_test));
        assert!(fx.structs.iter().all(|s| s.is_test));
    }

    #[test]
    fn bindings_resolve_fields_and_types() {
        let src = "\
struct S { store: Option<HeadStore> }
impl S {
    fn f(&mut self) {
        if let Some(store) = &self.store {
            store.log(1);
        }
        let out = EngineOut::default();
        out.merge(2);
    }
}
";
        let facts = extract("crates/core/src/x.rs", src);
        let f = facts.fns.iter().find(|f| f.name == "f").unwrap();
        assert!(f
            .bindings
            .iter()
            .any(|(n, s)| n == "store" && matches!(s, BindSrc::FieldOf(fl) if fl == "store")));
        assert!(f
            .bindings
            .iter()
            .any(|(n, s)| n == "out" && matches!(s, BindSrc::Typed(t) if t == "EngineOut")));
    }

    #[test]
    fn field_writes_detected() {
        let src = "\
impl S {
    fn eject(&mut self) {
        self.pbs = PbsServerCore::new();
        if self.n == 3 {}
        self.k += 1;
    }
}
";
        let facts = extract("crates/core/src/x.rs", src);
        let f = &facts.fns[0];
        assert_eq!(f.field_writes.len(), 1);
        assert_eq!(f.field_writes[0].field, "pbs");
    }
}
