//! The facts jrs-flow extracts from source text: functions with their
//! call sites, atoms (panic / nondeterminism constructs), bindings and
//! field writes; struct field types; enum variants; and `match` sites.
//!
//! Everything here is produced by [`crate::parse::extract`] from one
//! file and consumed by [`crate::graph`] (call-graph construction) and
//! [`crate::rules`] (the F-rules). The extractor is a line/token
//! scanner like detlint's, not a full parser — the model is therefore
//! an over-approximation resolved with the heuristics documented in
//! [`crate::graph`].

use jrs_detlint::scanner::Pragma;

/// Receiver shape of one call site, as written in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recv {
    /// `self.method(..)`.
    SelfDot,
    /// `self.field.method(..)` — resolved through the field's type.
    Field(String),
    /// `var.method(..)` — resolved through params / `let` bindings.
    Var(String),
    /// `Type::method(..)` (`Self::..` maps to the impl type).
    Path(String),
    /// `free_fn(..)`.
    Bare,
    /// `expr.method(..)` where the receiver is not a simple name
    /// (chained calls, indexing, blanked string literals …).
    Chain,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// 1-based source line.
    pub line: usize,
    /// Callee name as written.
    pub name: String,
    /// Receiver shape.
    pub recv: Recv,
}

/// Classes of "interesting" constructs found on a body line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomKind {
    /// `unwrap` / `expect` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!`.
    Panic,
    /// Slice/array indexing `x[i]` (only collected when the config
    /// enables index atoms — see `FlowConfig::index_atoms`).
    Index,
    /// `Instant::now` / `SystemTime::now`.
    WallClock,
    /// Ambient RNG: `thread_rng` / `from_entropy` / `OsRng` /
    /// `getrandom` / `rand::random`.
    Rng,
    /// Process environment reads.
    Env,
    /// OS thread spawning.
    ThreadSpawn,
    /// Hash-ordered collections (iteration order varies per process).
    HashOrder,
}

/// One atom occurrence.
#[derive(Clone, Debug)]
pub struct Atom {
    /// 1-based source line.
    pub line: usize,
    /// What kind of construct.
    pub kind: AtomKind,
    /// The matched token, for messages.
    pub token: String,
}

/// Where a `let` binding's type comes from.
#[derive(Clone, Debug)]
pub enum BindSrc {
    /// `let x: T = ..` or `let x = T::new(..)` — type named directly.
    Typed(String),
    /// `let Some(x) = &self.field ..` — the field's (peeled) type.
    FieldOf(String),
    /// `let x = self.method(..)` — the method's return type.
    SelfRet(String),
}

/// A `self.field = ..` assignment (field replacement counts as a state
/// write even when no `&mut self` method of the field's type is
/// called).
#[derive(Clone, Debug)]
pub struct FieldWrite {
    /// 1-based source line.
    pub line: usize,
    /// Field name.
    pub field: String,
}

/// One function (free or method) with everything the rules need.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Workspace-relative file path.
    pub path: String,
    /// Crate key (`crates/<key>` dir name, or `joshua-repro` for the
    /// umbrella crate's `src/`).
    pub crate_key: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Last body line (used to attribute `match` sites).
    pub end_line: usize,
    /// Bare function name.
    pub name: String,
    /// Peeled impl target when inside an `impl` block.
    pub impl_type: Option<String>,
    /// Peeled trait name for `impl Trait for Type` blocks.
    pub impl_trait: Option<String>,
    /// `Type::name`, or `name` for free functions.
    pub qualified: String,
    /// Takes `&mut self` (or `mut self`).
    pub mut_self: bool,
    /// Non-self parameters: `(name, peeled type)`.
    pub params: Vec<(String, String)>,
    /// Peeled types taken by `&mut` reference (state-write capability).
    pub mut_param_types: Vec<String>,
    /// Peeled return type.
    pub ret: Option<String>,
    /// Inside `#[cfg(test)]` / `#[test]` scaffolding.
    pub is_test: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Atoms in the body.
    pub atoms: Vec<Atom>,
    /// `let` bindings (single-assignment approximation).
    pub bindings: Vec<(String, BindSrc)>,
    /// `self.field = ..` assignments.
    pub field_writes: Vec<FieldWrite>,
}

/// A struct definition: the field types drive `self.field.m()` call
/// resolution.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Crate key.
    pub crate_key: String,
    /// Struct name.
    pub name: String,
    /// `(field, peeled type)`.
    pub fields: Vec<(String, String)>,
    /// Defined inside `#[cfg(test)]` / `#[test]` scaffolding. Test-only
    /// types never resolve lookups for shipping code: a fixture struct
    /// sharing a name with a production type must not shadow it.
    pub is_test: bool,
}

/// An enum definition: the variant list drives F004 exhaustiveness.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Crate key.
    pub crate_key: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Defined inside `#[cfg(test)]` / `#[test]` scaffolding. Fixture
    /// enums (e.g. a test module's own `Wire`) must never shadow the
    /// shipping protocol enum of the same name.
    pub is_test: bool,
}

/// One arm of a `match`, pattern text only (up to `=>`, guard kept).
#[derive(Clone, Debug)]
pub struct MatchArm {
    /// 1-based line the pattern starts on.
    pub line: usize,
    /// Pattern text (cleaned source, single-spaced).
    pub pattern: String,
}

/// One `match` expression.
#[derive(Clone, Debug)]
pub struct MatchSite {
    /// Workspace-relative file path.
    pub path: String,
    /// Crate key.
    pub crate_key: String,
    /// 1-based line of the `match` keyword.
    pub line: usize,
    /// Scrutinee text (cleaned).
    pub scrutinee: String,
    /// Arms in order.
    pub arms: Vec<MatchArm>,
    /// Inside test scaffolding.
    pub is_test: bool,
}

/// Everything extracted from one file.
#[derive(Debug)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub path: String,
    /// Crate key.
    pub crate_key: String,
    /// Raw source (kept for the detlint-suppression audit).
    pub text: String,
    /// Functions, in source order.
    pub fns: Vec<FnDef>,
    /// Structs.
    pub structs: Vec<StructDef>,
    /// Enums.
    pub enums: Vec<EnumDef>,
    /// `match` sites.
    pub matches: Vec<MatchSite>,
    /// `// flow: allow(..): reason` pragmas.
    pub flow_pragmas: Vec<Pragma>,
}

/// The whole-workspace model: per-file facts plus derived lookups.
#[derive(Debug, Default)]
pub struct Model {
    /// One entry per scanned file.
    pub files: Vec<FileFacts>,
}

impl Model {
    /// All functions across all files, with `(file index, fn index)`.
    pub fn fns(&self) -> impl Iterator<Item = (usize, usize, &FnDef)> {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| f.fns.iter().enumerate().map(move |(ni, d)| (fi, ni, d)))
    }

    /// Field type of `type_name.field`, searched across all crates.
    /// Shipping definitions always win over `#[cfg(test)]` fixtures.
    pub fn field_type(&self, type_name: &str, field: &str) -> Option<&str> {
        let all = || self.files.iter().flat_map(|f| &f.structs);
        all()
            .find(|s| s.name == type_name && !s.is_test)
            .or_else(|| all().find(|s| s.name == type_name))
            .and_then(|s| {
                s.fields.iter().find(|(n, _)| n == field).map(|(_, t)| t.as_str())
            })
    }

    /// Enum definition by name (protocol enum names are unique in this
    /// workspace; first match wins deterministically by file order).
    /// `#[cfg(test)]` fixture enums are excluded entirely: the rules
    /// must resolve protocol enums against shipping code only, never a
    /// test module's embedded copy.
    pub fn enum_def(&self, name: &str) -> Option<&EnumDef> {
        self.files
            .iter()
            .flat_map(|f| &f.enums)
            .find(|e| e.name == name && !e.is_test)
    }
}
