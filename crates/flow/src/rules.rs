//! The graph-aware rules (F001–F004) plus the suppression audit
//! (FSUP), and the configuration registry that names the workspace's
//! replicated-state types, ordered-delivery gates, and audited
//! exemptions.
//!
//! * **F001** — replication boundary: a registered replicated-state
//!   type may only be mutated on call paths that pass through an
//!   ordered-delivery/recovery gate. Checked by *gate interposition*:
//!   BFS from every `Process` callback root with the gate functions
//!   removed from the graph; any mutator still reachable is a leak,
//!   and the BFS parent chain is the shortest gate-avoiding witness.
//! * **F002** — no nondeterminism source (wall clock, ambient RNG,
//!   env, thread spawn, hash-ordered collections) transitively
//!   reachable from a replicated-state mutator or gate. This is
//!   detlint's D001–D003 upgraded from lexical to reachability form:
//!   it ignores test/bench code automatically and catches cross-crate
//!   leaks detlint's per-crate scoping cannot see.
//! * **F003** — no panic construct (`unwrap`/`expect`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!`) reachable from a
//!   `Process` callback, reported with the full call chain (upgrading
//!   detlint's file-scoped P001 to the whole delivery graph).
//! * **F004** — protocol matches over the registered protocol enums
//!   must not end in a catch-all arm: a new protocol variant must be a
//!   compile error, never a silent drop.
//! * **FSUP** — every `// flow: allow(..)` pragma must name a known
//!   rule, carry a reason, and actually suppress something; and every
//!   detlint pragma must still be load-bearing (re-linting with the
//!   pragma neutered must produce a new violation, else the pragma is
//!   stale and gets flagged for removal).

use crate::graph::{self, Graph};
use crate::model::{AtomKind, FileFacts, Model};
use crate::report::{ChainHop, Finding};
use jrs_detlint::scanner::Pragma;
use std::collections::BTreeSet;

/// The `Process` trait callbacks that constitute event roots.
pub const CALLBACKS: &[&str] = &["on_start", "on_message", "on_timer"];

/// Rule codes jrs-flow can emit (and that pragmas may name).
pub const RULE_CODES: &[&str] = &["F001", "F002", "F003", "F004", "FSUP"];

/// One registered replicated-state type.
#[derive(Clone, Debug)]
pub struct ReplicatedState {
    /// Type name (struct/enum) whose `&mut self` methods, `&mut`
    /// params, and field replacements count as state writes.
    pub type_name: String,
    /// Crates whose event roots are held to the F001 boundary for this
    /// type.
    pub scope: Vec<String>,
    /// Why this type is registered (shown by `rules`).
    pub why: String,
}

/// Analysis configuration: the registry the rules run against.
/// [`FlowConfig::workspace`] is the audited production registry;
/// fixtures construct their own.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Replicated-state types (F001/F002).
    pub replicated: Vec<ReplicatedState>,
    /// Ordered-delivery / recovery-replay gate functions, as
    /// `Type::method`, `Type::*`, or free-fn name specs.
    pub gates: Vec<String>,
    /// `Process` impl types exempt from F001 roots, with audited
    /// reasons (the paper's intentionally-unreplicated baselines).
    pub exempt_roots: Vec<(String, String)>,
    /// Protocol enums whose matches must stay exhaustive (F004).
    pub protocol_enums: Vec<String>,
    /// Crates whose `match` sites are checked (F004).
    pub match_scope: Vec<String>,
    /// Crates whose panic atoms are reportable (F003).
    pub panic_scope: Vec<String>,
    /// Crates whose `Process` impls are F003 roots.
    pub root_scope: Vec<String>,
    /// Crates whose nondeterminism atoms are reportable (F002).
    pub nondet_scope: Vec<String>,
    /// Also treat slice/array indexing as a panic atom (F003). Off by
    /// default: the workspace indexes only after explicit bounds
    /// handling, and the signal-to-noise is poor; fixtures exercise
    /// it.
    pub index_atoms: bool,
    /// Re-lint files with each detlint pragma neutered and flag
    /// pragmas that no longer suppress anything (FSUP).
    pub audit_detlint: bool,
}

impl FlowConfig {
    /// The audited registry for this workspace.
    pub fn workspace() -> Self {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        FlowConfig {
            replicated: vec![
                ReplicatedState {
                    type_name: "PbsServerCore".into(),
                    scope: s(&["pbs", "core"]),
                    why: "the PBS job/queue/node state every head must hold identically"
                        .into(),
                },
                ReplicatedState {
                    type_name: "JMutexState".into(),
                    scope: s(&["core"]),
                    why: "the job-launch mutex grant table (paper §4: exactly-one-launch)"
                        .into(),
                },
                ReplicatedState {
                    type_name: "Engine".into(),
                    scope: s(&["core", "pbs"]),
                    why: "the total-order engine; only the GCS membership layer may drive it"
                        .into(),
                },
            ],
            gates: s(&[
                // The single choke point where delivered commands are
                // applied, plus recovery replay and state transfer —
                // the paths the paper's §3 model *requires* to touch
                // replicated state.
                "JoshuaServer::apply",
                "JoshuaServer::apply_command",
                "JoshuaServer::install_snapshot",
                "JoshuaServer::adopt_recovery",
                "JoshuaServer::on_catch_up",
                "JoshuaServer::on_ejected",
                // The GCS membership/ordering layer owns the engine.
                "GroupMember::*",
            ]),
            exempt_roots: vec![
                (
                    "PbsHeadProcess".into(),
                    "the paper's unreplicated baseline: one head, one copy — no \
                     replication boundary to protect"
                        .into(),
                ),
                (
                    "ActiveStandbyHead".into(),
                    "the active/standby baseline: state diverges by design between \
                     checkpoints"
                        .into(),
                ),
            ],
            protocol_enums: s(&["EngineMsg", "GcsMsg", "Wire", "Payload", "MomInbound"]),
            match_scope: s(&["gcs", "pbs", "core", "store", "joshua-repro"]),
            panic_scope: s(&["gcs", "pbs", "core", "store"]),
            root_scope: s(&["gcs", "pbs", "core"]),
            nondet_scope: s(&["gcs", "pbs", "core", "store", "sim", "joshua-repro"]),
            index_atoms: false,
            audit_detlint: true,
        }
    }
}

/// Run every rule; returns findings sorted by path/line/rule.
pub fn run(cfg: &FlowConfig, model: &Model) -> (Vec<Finding>, usize, usize) {
    let g = graph::build(model);
    let mut cands: Vec<Finding> = Vec::new();

    check_f001(cfg, model, &g, &mut cands);
    check_f002(cfg, model, &g, &mut cands);
    check_f003(cfg, &g, &mut cands);
    check_f004(cfg, model, &mut cands);

    // Central suppression: a finding is waived by a
    // `// flow: allow(RULE): reason` pragma on its line or the line
    // above; used pragmas are tracked so FSUP can flag dead ones.
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    for f in cands {
        match pragma_for(model, &f.path, f.rule, f.line) {
            Some(p) => {
                used.insert((f.path.clone(), p.line));
            }
            None => findings.push(f),
        }
    }

    check_fsup(cfg, model, &used, &mut findings);

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let edge_count = g.edges.iter().map(Vec::len).sum();
    (findings, g.fns.len(), edge_count)
}

/// The flow pragma (if any) waiving `rule` at `path:line`.
fn pragma_for<'m>(
    model: &'m Model,
    path: &str,
    rule: &str,
    line: usize,
) -> Option<&'m Pragma> {
    let facts = model.files.iter().find(|f| f.path == path)?;
    facts.flow_pragmas.iter().find(|p| {
        (p.line == line || p.line + 1 == line) && p.rules.iter().any(|r| r == rule)
    })
}

/// Function ids of `Process` callbacks in the given crates.
fn roots(
    g: &Graph<'_>,
    crates: &[String],
    exempt: &[(String, String)],
) -> Vec<usize> {
    g.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test
                && f.impl_trait.as_deref() == Some("Process")
                && CALLBACKS.contains(&f.name.as_str())
                && crates.iter().any(|c| c == &f.crate_key)
                && !exempt
                    .iter()
                    .any(|(t, _)| Some(t.as_str()) == f.impl_type.as_deref())
        })
        .map(|(id, _)| id)
        .collect()
}

/// Function ids that write state of `type_name`: `&mut self` methods
/// of the type, functions taking it by `&mut`, and functions replacing
/// a field of that type.
fn mutators(g: &Graph<'_>, model: &Model, type_name: &str) -> Vec<usize> {
    g.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            if f.is_test {
                return false;
            }
            if f.impl_type.as_deref() == Some(type_name) && f.mut_self {
                return true;
            }
            if f.mut_param_types.iter().any(|t| t == type_name) {
                return true;
            }
            f.field_writes.iter().any(|w| {
                f.impl_type
                    .as_deref()
                    .and_then(|t| model.field_type(t, &w.field))
                    .is_some_and(|t| t == type_name)
            })
        })
        .map(|(id, _)| id)
        .collect()
}

fn hops(g: &Graph<'_>, chain: &[(usize, Option<usize>)]) -> Vec<ChainHop> {
    chain
        .iter()
        .map(|(id, via)| {
            let f = g.fns[*id];
            ChainHop {
                qualified: f.qualified.clone(),
                path: f.path.clone(),
                line: via.unwrap_or(f.line),
            }
        })
        .collect()
}

fn chain_text(hs: &[ChainHop]) -> String {
    hs.iter().map(|h| h.qualified.as_str()).collect::<Vec<_>>().join(" -> ")
}

fn check_f001(cfg: &FlowConfig, model: &Model, g: &Graph<'_>, out: &mut Vec<Finding>) {
    let blocked: BTreeSet<usize> =
        cfg.gates.iter().flat_map(|s| g.resolve_spec(s)).collect();
    for state in &cfg.replicated {
        let rs = roots(g, &state.scope, &cfg.exempt_roots);
        if rs.is_empty() {
            continue;
        }
        let parents = g.reach(&rs, &blocked);
        for m in mutators(g, model, &state.type_name) {
            if !parents.contains_key(&m) {
                continue;
            }
            let chain = hops(g, &g.chain_to(&parents, m));
            let f = g.fns[m];
            out.push(Finding {
                rule: "F001",
                path: f.path.clone(),
                line: f.line,
                message: format!(
                    "replicated state `{}` is written by `{}` on a path that avoids \
                     every ordered-delivery gate: {}",
                    state.type_name,
                    f.qualified,
                    chain_text(&chain),
                ),
                chain,
            });
        }
    }
}

fn check_f002(cfg: &FlowConfig, model: &Model, g: &Graph<'_>, out: &mut Vec<Finding>) {
    let mut starts: BTreeSet<usize> = cfg
        .replicated
        .iter()
        .flat_map(|s| mutators(g, model, &s.type_name))
        .collect();
    starts.extend(cfg.gates.iter().flat_map(|s| g.resolve_spec(s)));
    let starts: Vec<usize> = starts.into_iter().collect();
    let parents = g.reach(&starts, &BTreeSet::new());
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for &v in parents.keys() {
        let f = g.fns[v];
        if f.is_test || !cfg.nondet_scope.iter().any(|c| c == &f.crate_key) {
            continue;
        }
        for atom in &f.atoms {
            let kind_ok = matches!(
                atom.kind,
                AtomKind::WallClock
                    | AtomKind::Rng
                    | AtomKind::Env
                    | AtomKind::ThreadSpawn
                    | AtomKind::HashOrder
            );
            if !kind_ok || !seen.insert((f.path.clone(), atom.line, atom.token.clone()))
            {
                continue;
            }
            let chain = hops(g, &g.chain_to(&parents, v));
            out.push(Finding {
                rule: "F002",
                path: f.path.clone(),
                line: atom.line,
                message: format!(
                    "nondeterminism source `{}` is reachable from a replicated-state \
                     mutator: {} (at {}:{})",
                    atom.token,
                    chain_text(&chain),
                    f.path,
                    atom.line,
                ),
                chain,
            });
        }
    }
}

fn check_f003(cfg: &FlowConfig, g: &Graph<'_>, out: &mut Vec<Finding>) {
    let rs = roots(g, &cfg.root_scope, &[]);
    if rs.is_empty() {
        return;
    }
    let parents = g.reach(&rs, &BTreeSet::new());
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for &v in parents.keys() {
        let f = g.fns[v];
        if f.is_test || !cfg.panic_scope.iter().any(|c| c == &f.crate_key) {
            continue;
        }
        for atom in &f.atoms {
            let kind_ok = atom.kind == AtomKind::Panic
                || (cfg.index_atoms && atom.kind == AtomKind::Index);
            if !kind_ok || !seen.insert((f.path.clone(), atom.line)) {
                continue;
            }
            let chain = hops(g, &g.chain_to(&parents, v));
            out.push(Finding {
                rule: "F003",
                path: f.path.clone(),
                line: atom.line,
                message: format!(
                    "panic-capable `{}` is reachable from a process callback: {} \
                     (at {}:{})",
                    atom.token,
                    chain_text(&chain),
                    f.path,
                    atom.line,
                ),
                chain,
            });
        }
    }
}

/// Is this arm pattern a catch-all (`_`, `_name`, or a bare binding)?
fn is_catch_all(pattern: &str) -> bool {
    // Drop a guard: `x if cond` — the guard keeps it a catch-all shape
    // (a guarded wildcard still swallows unnamed variants when the
    // guard is true, and the F004 point is exhaustiveness at compile
    // time).
    let p = match pattern.find(" if ") {
        Some(i) => &pattern[..i],
        None => pattern,
    };
    let p = p.trim().trim_start_matches('&').trim();
    if p == "_" {
        return true;
    }
    p.chars().all(|c| c.is_alphanumeric() || c == '_')
        && p.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
}

fn check_f004(cfg: &FlowConfig, model: &Model, out: &mut Vec<Finding>) {
    for facts in &model.files {
        if !cfg.match_scope.iter().any(|c| c == &facts.crate_key) {
            continue;
        }
        for site in &facts.matches {
            if site.is_test || site.arms.is_empty() {
                continue;
            }
            let mentioned: Vec<&str> = cfg
                .protocol_enums
                .iter()
                .map(String::as_str)
                .filter(|e| {
                    let needle = format!("{e}::");
                    site.arms.iter().any(|a| a.pattern.contains(&needle))
                })
                .collect();
            if mentioned.is_empty() {
                continue;
            }
            let Some(catch) = site.arms.iter().find(|a| is_catch_all(&a.pattern)) else {
                continue;
            };
            let mut swallowed = Vec::new();
            for e in &mentioned {
                if let Some(def) = model.enum_def(e) {
                    let missing: Vec<&str> = def
                        .variants
                        .iter()
                        .map(String::as_str)
                        .filter(|v| {
                            let needle = format!("{e}::{v}");
                            !site.arms.iter().any(|a| a.pattern.contains(&needle))
                        })
                        .collect();
                    if missing.is_empty() {
                        swallowed.push(format!("{e} (future variants)"));
                    } else {
                        swallowed.push(format!("{e}::{{{}}}", missing.join(", ")));
                    }
                }
            }
            out.push(Finding {
                rule: "F004",
                path: facts.path.clone(),
                line: catch.line,
                message: format!(
                    "match over protocol enum{} {} ends in catch-all `{}` — silently \
                     swallows {}; name every variant so new protocol messages are a \
                     compile error",
                    if mentioned.len() > 1 { "s" } else { "" },
                    mentioned.join(", "),
                    catch.pattern,
                    swallowed.join("; "),
                ),
                chain: Vec::new(),
            });
        }
    }
}

fn check_fsup(
    cfg: &FlowConfig,
    model: &Model,
    used: &BTreeSet<(String, usize)>,
    out: &mut Vec<Finding>,
) {
    for facts in &model.files {
        for p in &facts.flow_pragmas {
            let unknown: Vec<&str> = p
                .rules
                .iter()
                .map(String::as_str)
                .filter(|r| !RULE_CODES.contains(r))
                .collect();
            if !unknown.is_empty() {
                out.push(fsup(facts, p.line, format!(
                    "flow suppression names unknown rule{} {}",
                    if unknown.len() > 1 { "s" } else { "" },
                    unknown.join(", "),
                )));
                continue;
            }
            if p.reason.is_empty() {
                out.push(fsup(
                    facts,
                    p.line,
                    "flow suppression without a reason — write \
                     `// flow: allow(RULE): <why this is safe>`"
                        .to_string(),
                ));
                continue;
            }
            if !used.contains(&(facts.path.clone(), p.line)) {
                out.push(fsup(
                    facts,
                    p.line,
                    "flow suppression suppresses nothing — remove it".to_string(),
                ));
            }
        }
        if cfg.audit_detlint {
            audit_detlint_pragmas(facts, out);
        }
    }
}

fn fsup(facts: &FileFacts, line: usize, message: String) -> Finding {
    Finding { rule: "FSUP", path: facts.path.clone(), line, message, chain: Vec::new() }
}

/// Re-lint the file with each detlint pragma neutered; a pragma whose
/// removal changes nothing is stale.
fn audit_detlint_pragmas(facts: &FileFacts, out: &mut Vec<Finding>) {
    let det_pragmas = jrs_detlint::scanner::preprocess(&facts.text).pragmas;
    if det_pragmas.is_empty() {
        return;
    }
    let baseline = jrs_detlint::check_source(&facts.path, &facts.text).len();
    for p in det_pragmas {
        let neutered: String = facts
            .text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i + 1 == p.line {
                    l.replacen("detlint:", "detlint-disabled:", 1)
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let without = jrs_detlint::check_source(&facts.path, &neutered).len();
        if without <= baseline {
            out.push(fsup(
                facts,
                p.line,
                format!(
                    "detlint suppression allow({}) suppresses nothing (re-linting \
                     without it finds no new violation) — remove it",
                    p.rules.join(", "),
                ),
            ));
        }
    }
}
