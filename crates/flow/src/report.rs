//! Findings, the whole-run report, and rendering (human text and the
//! `--json` form CI can diff against a committed baseline).

use std::fmt;

/// One hop in a witness call chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainHop {
    /// `Type::method` or free-fn name.
    pub qualified: String,
    /// Workspace-relative file of the function.
    pub path: String,
    /// Line of the call site where this hop calls the *next* one (the
    /// function's own definition line for the chain's final hop).
    pub line: usize,
}

/// One rule finding with its shortest-call-chain witness.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule code (`F001`..`F004`, `FSUP`).
    pub rule: &'static str,
    /// Workspace-relative file the finding anchors to.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description (includes the chain inline).
    pub message: String,
    /// The witness chain, root first (empty for F004/FSUP).
    pub chain: Vec<ChainHop>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}:{}", self.rule, self.path, self.line)?;
        writeln!(f, "  {}", self.message)?;
        if self.chain.len() > 1 {
            writeln!(f, "  witness chain:")?;
            for hop in &self.chain {
                writeln!(f, "    {} ({}:{})", hop.qualified, hop.path, hop.line)?;
            }
        }
        Ok(())
    }
}

/// Outcome of a whole-workspace analysis.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in path/line/rule order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of functions extracted.
    pub fns: usize,
    /// Number of resolved call edges.
    pub edges: usize,
}

impl Report {
    /// Did the workspace pass?
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render as a JSON object (hand-rolled: the analysis is
    /// zero-dependency by design).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"files_scanned\":{},\"fns\":{},\"edges\":{},\"findings\":[",
            self.files_scanned, self.fns, self.edges
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{},\"chain\":[",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            ));
            for (j, h) in f.chain.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"fn\":{},\"path\":{},\"line\":{}}}",
                    json_str(&h.qualified),
                    json_str(&h.path),
                    h.line
                ));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let r = Report {
            findings: vec![Finding {
                rule: "F003",
                path: "crates/x/src/a.rs".into(),
                line: 7,
                message: "panic \"here\"\nand there".into(),
                chain: vec![ChainHop {
                    qualified: "T::m".into(),
                    path: "crates/x/src/a.rs".into(),
                    line: 3,
                }],
            }],
            files_scanned: 1,
            fns: 2,
            edges: 1,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"F003\""));
        assert!(j.contains("\\\"here\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"fn\":\"T::m\""));
    }
}
