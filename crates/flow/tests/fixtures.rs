//! Fixture corpus for the graph rules: known-good and known-bad source
//! trees for F001–F004 plus the suppression audit (FSUP), driven
//! through [`jrs_flow::check_files`] with fixture-local registries —
//! mirroring detlint's fixture style. The bad fixtures pin the finding
//! *and* its witness chain; the good fixtures pin silence.

use jrs_flow::rules::ReplicatedState;
use jrs_flow::{check_files, FlowConfig};

/// Fixture registry: crate `fix`, replicated type `Engine`, one gate
/// `Server::apply`, protocol enum `ProtoMsg`.
fn cfg() -> FlowConfig {
    FlowConfig {
        replicated: vec![ReplicatedState {
            type_name: "Engine".into(),
            scope: vec!["fix".into()],
            why: "fixture replicated state".into(),
        }],
        gates: vec!["Server::apply".into()],
        exempt_roots: vec![],
        protocol_enums: vec!["ProtoMsg".into()],
        match_scope: vec!["fix".into()],
        panic_scope: vec!["fix".into()],
        root_scope: vec!["fix".into()],
        nondet_scope: vec!["fix".into()],
        index_atoms: false,
        audit_detlint: false,
    }
}

/// 1-based line of the first occurrence of `needle`.
fn line_of(src: &str, needle: &str) -> usize {
    src.lines().position(|l| l.contains(needle)).map(|i| i + 1).unwrap()
}

fn chain_names(f: &jrs_flow::Finding) -> Vec<&str> {
    f.chain.iter().map(|h| h.qualified.as_str()).collect()
}

// ---------------------------------------------------------------- F001

const F001_BAD: &str = r#"
pub struct Engine {
    pub n: u64,
}

impl Engine {
    pub fn bump(&mut self) {
        self.n += 1;
    }
}

pub struct Server {
    engine: Engine,
}

impl Server {
    pub fn apply(&mut self) {
        self.engine.bump();
    }

    fn sneak(&mut self) {
        self.engine.bump();
    }
}

impl Process for Server {
    fn on_message(&mut self) {
        self.sneak();
    }
}
"#;

#[test]
fn f001_flags_gate_avoiding_mutation_with_witness_chain() {
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", F001_BAD)]);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "F001");
    assert_eq!(f.line, line_of(F001_BAD, "pub fn bump"));
    assert!(f.message.contains("`Engine`"), "{}", f.message);
    // The witness must be the gate-avoiding chain, root first — not the
    // legitimate path through Server::apply.
    assert_eq!(
        chain_names(f),
        vec!["Server::on_message", "Server::sneak", "Engine::bump"]
    );
    // Each hop's line is the call site into the next hop; the final
    // hop carries its own definition line.
    assert_eq!(f.chain[0].line, line_of(F001_BAD, "self.sneak()"));
    assert_eq!(f.chain[2].line, line_of(F001_BAD, "pub fn bump"));
}

#[test]
fn f001_accepts_mutation_through_the_gate() {
    // Same tree, but the callback routes through the registered gate.
    let good = F001_BAD.replace("self.sneak();", "self.apply();");
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", &good)]);
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn f001_ignores_exempt_root_types() {
    let mut c = cfg();
    c.exempt_roots =
        vec![("Server".into(), "fixture baseline: intentionally unreplicated".into())];
    let report = check_files(&c, &[("crates/fix/src/lib.rs", F001_BAD)]);
    assert!(report.clean(), "{:#?}", report.findings);
}

// ---------------------------------------------------------------- F002

const F002_BAD: &str = r#"
pub struct Engine {
    pub n: u64,
}

impl Engine {
    pub fn bump(&mut self) {
        self.n = stamp();
    }
}

fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
"#;

#[test]
fn f002_flags_wall_clock_reachable_from_mutator() {
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", F002_BAD)]);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "F002");
    assert_eq!(f.line, line_of(F002_BAD, "Instant::now"));
    assert!(f.message.contains("Instant::now"), "{}", f.message);
    assert_eq!(chain_names(f), vec!["Engine::bump", "stamp"]);
}

#[test]
fn f002_ignores_nondeterminism_outside_mutator_reach() {
    // Same clock use, but nothing links the mutator to it.
    let good = F002_BAD.replace("self.n = stamp();", "self.n += 1;");
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", &good)]);
    assert!(report.clean(), "{:#?}", report.findings);
}

// ---------------------------------------------------------------- F003

const F003_BAD: &str = r#"
pub struct Daemon {
    slot: Option<u64>,
}

impl Daemon {
    fn read_slot(&mut self) -> u64 {
        self.slot.take().unwrap()
    }
}

impl Process for Daemon {
    fn on_timer(&mut self) {
        let _v = self.read_slot();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_unwrap() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
"#;

#[test]
fn f003_flags_panic_reachable_from_callback_not_from_tests() {
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", F003_BAD)]);
    // Exactly one finding: the unwrap inside `mod tests` is exempt.
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "F003");
    assert_eq!(f.line, line_of(F003_BAD, "take().unwrap()"));
    assert_eq!(chain_names(f), vec!["Daemon::on_timer", "Daemon::read_slot"]);
}

#[test]
fn f003_accepts_fallible_degrade() {
    let good = F003_BAD.replace(
        "self.slot.take().unwrap()",
        "match self.slot.take() { Some(v) => v, None => 0 }",
    );
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", &good)]);
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn f003_index_atoms_are_opt_in() {
    let src = r#"
pub struct Daemon {
    xs: Vec<u64>,
}

impl Daemon {
    fn first(&mut self) -> u64 {
        self.xs[0]
    }
}

impl Process for Daemon {
    fn on_timer(&mut self) {
        let _v = self.first();
    }
}
"#;
    let files = [("crates/fix/src/lib.rs", src)];
    assert!(check_files(&cfg(), &files).clean(), "indexing off by default");
    let mut c = cfg();
    c.index_atoms = true;
    let report = check_files(&c, &files);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    assert_eq!(report.findings[0].rule, "F003");
    assert_eq!(report.findings[0].line, line_of(src, "self.xs[0]"));
}

// ---------------------------------------------------------------- F004

const F004_BAD: &str = r#"
pub enum ProtoMsg {
    Ping,
    Pong,
    Data(u64),
}

pub fn handle(m: &ProtoMsg) -> u32 {
    match m {
        ProtoMsg::Ping => 1,
        _ => 0,
    }
}
"#;

#[test]
fn f004_flags_catch_all_over_protocol_enum_naming_swallowed_variants() {
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", F004_BAD)]);
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "F004");
    assert_eq!(f.line, line_of(F004_BAD, "_ => 0"));
    assert!(f.message.contains("Pong"), "{}", f.message);
    assert!(f.message.contains("Data"), "{}", f.message);
}

#[test]
fn f004_accepts_exhaustive_match_and_ignores_other_enums() {
    let good = r#"
pub enum ProtoMsg {
    Ping,
    Pong,
    Data(u64),
}

pub enum LocalChoice {
    Yes,
    No,
}

pub fn handle(m: &ProtoMsg) -> u32 {
    match m {
        ProtoMsg::Ping => 1,
        ProtoMsg::Pong => 2,
        ProtoMsg::Data(_) => 3,
    }
}

pub fn pick(c: &LocalChoice) -> u32 {
    match c {
        LocalChoice::Yes => 1,
        _ => 0,
    }
}
"#;
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", good)]);
    assert!(report.clean(), "{:#?}", report.findings);
}

// ---------------------------------------------------------------- FSUP

#[test]
fn fsup_pragma_waives_a_finding_and_counts_as_used() {
    let src = F003_BAD.replace(
        "        self.slot.take().unwrap()",
        "        // flow: allow(F003): fixture — slot is refilled before every timer\n        \
         self.slot.take().unwrap()",
    );
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", &src)]);
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn fsup_flags_reasonless_unknown_and_dead_pragmas() {
    let src = r#"
// flow: allow(F001)
pub fn a() {}

// flow: allow(F999): no such rule
pub fn b() {}

// flow: allow(F003): suppresses nothing on this line
pub fn c() {}
"#;
    let report = check_files(&cfg(), &[("crates/fix/src/lib.rs", src)]);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["FSUP", "FSUP", "FSUP"], "{:#?}", report.findings);
    assert!(report.findings[0].message.contains("without a reason"));
    assert!(report.findings[1].message.contains("unknown rule"));
    assert!(report.findings[2].message.contains("suppresses nothing"));
}

#[test]
fn fsup_audits_detlint_pragmas_for_staleness() {
    // A load-bearing detlint pragma (suppresses a real D001 in a
    // replicated-state crate) and a stale one (suppresses nothing).
    let src = r#"
use std::collections::HashMap;

pub fn live() -> usize {
    // detlint: allow(D001): fixture — drained into a sorted Vec below
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}

pub fn stale() -> u64 {
    // detlint: allow(D002): fixture — nothing on this line needs it
    7
}
"#;
    let mut c = cfg();
    c.audit_detlint = true;
    // `use std::collections::HashMap` itself needs the live pragma to
    // stay quiet, so point detlint's D001 at the import too.
    let report = check_files(&c, &[("crates/gcs/src/fixture_demo.rs", src)]);
    let stale: Vec<_> =
        report.findings.iter().filter(|f| f.message.contains("detlint suppression")).collect();
    assert_eq!(stale.len(), 1, "{:#?}", report.findings);
    assert_eq!(stale[0].line, line_of(src, "allow(D002)"));
    assert!(stale[0].message.contains("allow(D002)"), "{}", stale[0].message);
}

// ------------------------------------------------------- whole corpus

#[test]
fn corpus_reports_graph_statistics_and_json() {
    let report = check_files(
        &cfg(),
        &[
            ("crates/fix/src/lib.rs", F001_BAD),
            ("crates/fix/src/proto.rs", F004_BAD),
        ],
    );
    assert_eq!(report.files_scanned, 2);
    assert!(report.fns >= 5, "fns extracted: {}", report.fns);
    assert!(report.edges >= 3, "edges resolved: {}", report.edges);
    // JSON rendering round-trips the essentials for CI diffing.
    let json = report.to_json();
    assert!(json.contains("\"rule\":\"F001\""));
    assert!(json.contains("\"rule\":\"F004\""));
    assert!(json.contains("Server::sneak"));
}
