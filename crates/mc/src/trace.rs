//! Textual action traces: the counterexample format the checker prints
//! and the `replay` subcommand parses. One token per action, joined by
//! commas: `submit`, `deliver:F-T`, `drop:F-T`, `crash:P`, `tick`,
//! `complete:J`.

use crate::model::Action;
use jrs_pbs::JobId;
use jrs_sim::ProcId;
use std::fmt::Write as _;

/// Render one action as a trace token.
pub fn format_action(a: Action) -> String {
    match a {
        Action::Submit => "submit".to_string(),
        Action::Deliver { from, to } => format!("deliver:{}-{}", from.0, to.0),
        Action::Drop { from, to } => format!("drop:{}-{}", from.0, to.0),
        Action::Crash { who } => format!("crash:{}", who.0),
        Action::Tick => "tick".to_string(),
        Action::Complete { job } => format!("complete:{}", job.0),
    }
}

/// Render a whole trace as one comma-joined line.
pub fn format_trace(trace: &[Action]) -> String {
    let mut out = String::new();
    for (i, &a) in trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", format_action(a));
    }
    out
}

/// Parse one trace token.
pub fn parse_action(tok: &str) -> Result<Action, String> {
    let tok = tok.trim();
    if tok == "submit" {
        return Ok(Action::Submit);
    }
    if tok == "tick" {
        return Ok(Action::Tick);
    }
    if let Some(rest) = tok.strip_prefix("deliver:") {
        let (f, t) = parse_pair(rest)?;
        return Ok(Action::Deliver { from: ProcId(f), to: ProcId(t) });
    }
    if let Some(rest) = tok.strip_prefix("drop:") {
        let (f, t) = parse_pair(rest)?;
        return Ok(Action::Drop { from: ProcId(f), to: ProcId(t) });
    }
    if let Some(rest) = tok.strip_prefix("crash:") {
        let p = rest.parse::<u32>().map_err(|e| format!("bad proc id {rest:?}: {e}"))?;
        return Ok(Action::Crash { who: ProcId(p) });
    }
    if let Some(rest) = tok.strip_prefix("complete:") {
        let j = rest.parse::<u64>().map_err(|e| format!("bad job id {rest:?}: {e}"))?;
        return Ok(Action::Complete { job: JobId(j) });
    }
    Err(format!("unknown trace token {tok:?}"))
}

fn parse_pair(s: &str) -> Result<(u32, u32), String> {
    let (a, b) = s
        .split_once('-')
        .ok_or_else(|| format!("expected F-T in {s:?}"))?;
    let f = a.parse::<u32>().map_err(|e| format!("bad proc id {a:?}: {e}"))?;
    let t = b.parse::<u32>().map_err(|e| format!("bad proc id {b:?}: {e}"))?;
    Ok((f, t))
}

/// Parse a comma-joined trace line.
pub fn parse_trace(s: &str) -> Result<Vec<Action>, String> {
    s.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(parse_action)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let trace = vec![
            Action::Submit,
            Action::Deliver { from: ProcId(0), to: ProcId(1) },
            Action::Drop { from: ProcId(2), to: ProcId(0) },
            Action::Crash { who: ProcId(1) },
            Action::Tick,
            Action::Complete { job: JobId(1) },
        ];
        let line = format_trace(&trace);
        assert_eq!(line, "submit,deliver:0-1,drop:2-0,crash:1,tick,complete:1");
        assert_eq!(parse_trace(&line).unwrap(), trace);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_action("explode").is_err());
        assert!(parse_action("deliver:0").is_err());
        assert!(parse_action("crash:x").is_err());
        assert!(parse_trace("").unwrap().is_empty());
    }
}
