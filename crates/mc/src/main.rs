//! `jrs-mc` CLI: bounded model checking of the GCS / jmutex protocol.
//!
//! ```text
//! jrs-mc check  [--procs N] [--depth N] [--faults N] [--submits N]
//!               [--engine sequencer|token] [--mutate none|grant-on-forward|no-cover]
//!               [--mode naive|dpor] [--compare] [--budget-secs N]
//! jrs-mc replay --trace "submit,deliver:0-1,crash:0,tick" [config flags]
//! ```

use jrs_gcs::EngineKind;
use jrs_mc::{
    format_trace, minimize, parse_trace, replay, Budget, McConfig, Mode, Mutation, Outcome,
    Search, Stats, World,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let out = match cmd.as_str() {
        "check" => run_check(rest),
        "replay" => run_replay(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match out {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("jrs-mc: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  jrs-mc check  [--procs N] [--depth N] [--faults N] [--submits N]
                [--engine sequencer|token] [--mutate none|grant-on-forward|no-cover]
                [--mode naive|dpor] [--no-dedup] [--compare] [--budget-secs N] [--json]
  jrs-mc replay --trace TRACE [config flags as above]

exit codes: 0 clean, 1 violation found, 2 usage error";

struct Opts {
    cfg: McConfig,
    depth: u32,
    mode: Mode,
    dedup: bool,
    compare: bool,
    budget_secs: Option<u64>,
    trace: Option<String>,
    json: bool,
}

impl Opts {
    fn search(&self, mode: Mode) -> Search {
        let mut s = Search::new(mode).with_budget(match self.budget_secs {
            Some(secs) => Budget::seconds(secs),
            None => Budget::unlimited(),
        });
        if !self.dedup {
            s = s.no_dedup();
        }
        s
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        cfg: McConfig::default(),
        depth: 10,
        mode: Mode::Dpor,
        dedup: true,
        compare: false,
        budget_secs: None,
        trace: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--procs" => o.cfg.procs = num(val("--procs")?)?,
            "--depth" => o.depth = num(val("--depth")?)?,
            "--faults" => o.cfg.faults = num(val("--faults")?)?,
            "--submits" => o.cfg.submits = num(val("--submits")?)?,
            "--engine" => {
                o.cfg.engine = match val("--engine")?.as_str() {
                    "sequencer" => EngineKind::Sequencer,
                    "token" => EngineKind::Token,
                    other => return Err(format!("unknown engine {other:?}")),
                }
            }
            "--mutate" => {
                let v = val("--mutate")?;
                o.cfg.mutation =
                    Mutation::parse(v).ok_or_else(|| format!("unknown mutation {v:?}"))?;
            }
            "--mode" => {
                let v = val("--mode")?;
                o.mode = Mode::parse(v).ok_or_else(|| format!("unknown mode {v:?}"))?;
            }
            "--compare" => o.compare = true,
            "--json" => o.json = true,
            "--no-dedup" => o.dedup = false,
            "--budget-secs" => o.budget_secs = Some(num(val("--budget-secs")?)?),
            "--trace" => o.trace = Some(val("--trace")?.clone()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(o)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad number {s:?}: {e}"))
}

fn print_stats(label: &str, s: Stats) {
    let trunc = if s.truncated { " (budget expired, bound not covered)" } else { "" };
    println!(
        "{label}: explored {} states, deduped {}, slept {}, settled {} terminals{trunc}",
        s.explored, s.deduped, s.slept, s.settled
    );
}

fn run_check(args: &[String]) -> Result<ExitCode, String> {
    let o = parse_opts(args)?;
    if o.trace.is_some() {
        return Err("--trace belongs to the replay subcommand".into());
    }
    if o.json && o.compare {
        return Err("--json and --compare are mutually exclusive".into());
    }
    if !o.json {
    println!(
        "jrs-mc check: procs={} depth={} faults={} submits={} engine={:?} mutate={}",
        o.cfg.procs, o.depth, o.cfg.faults, o.cfg.submits, o.cfg.engine, o.cfg.mutation.name()
    );
    }
    let start = World::new(o.cfg.clone());
    if o.compare {
        // The reduction comparison runs stateless (no dedup): that is
        // where the sleep-set reduction's pruning is directly visible in
        // the state count. Run the naive baseline first so the ratio is
        // printed even when both modes find the same violation.
        let naive = o.search(Mode::Naive).no_dedup().run(&start, o.depth);
        let naive_stats = stats_of(&naive);
        print_stats("naive", naive_stats);
        let dpor = o.search(Mode::Dpor).no_dedup().run(&start, o.depth);
        let dpor_stats = stats_of(&dpor);
        print_stats("dpor ", dpor_stats);
        if dpor_stats.explored > 0 {
            #[allow(clippy::cast_precision_loss)]
            let ratio = naive_stats.explored as f64 / dpor_stats.explored as f64;
            println!("reduction: {ratio:.2}x fewer states with DPOR-lite (stateless)");
        }
        return report(&start, &o, dpor);
    }
    let out = o.search(o.mode).run(&start, o.depth);
    if o.json {
        return report_json(&start, &o, out);
    }
    print_stats("result", stats_of(&out));
    report(&start, &o, out)
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Machine-readable outcome, the form CI archives as an artifact.
fn report_json(start: &World, o: &Opts, out: Outcome) -> Result<ExitCode, String> {
    let s = stats_of(&out);
    let mut j = format!(
        "{{\"procs\":{},\"depth\":{},\"faults\":{},\"submits\":{},\"engine\":{},\"mutate\":{},\"explored\":{},\"deduped\":{},\"slept\":{},\"settled\":{},\"truncated\":{}",
        o.cfg.procs,
        o.depth,
        o.cfg.faults,
        o.cfg.submits,
        json_str(&format!("{:?}", o.cfg.engine)),
        json_str(o.cfg.mutation.name()),
        s.explored,
        s.deduped,
        s.slept,
        s.settled,
        s.truncated
    );
    let code = match out {
        Outcome::Clean(_) => {
            j.push_str(",\"outcome\":\"clean\"}");
            ExitCode::SUCCESS
        }
        Outcome::Violation { violation, trace, .. } => {
            let min = minimize(start, &trace);
            j.push_str(&format!(
                ",\"outcome\":\"violation\",\"violation\":{},\"trace\":{}}}",
                json_str(&format!("{violation:?}")),
                json_str(&format_trace(&min))
            ));
            ExitCode::FAILURE
        }
    };
    println!("{j}");
    Ok(code)
}

fn stats_of(out: &Outcome) -> Stats {
    match out {
        Outcome::Clean(s) => *s,
        Outcome::Violation { stats, .. } => *stats,
    }
}

fn report(start: &World, o: &Opts, out: Outcome) -> Result<ExitCode, String> {
    match out {
        Outcome::Clean(s) => {
            if s.truncated {
                println!("no violation found within the wall-clock budget");
            } else {
                println!("no violation found within the bound");
            }
            Ok(ExitCode::SUCCESS)
        }
        Outcome::Violation { violation, trace, .. } => {
            println!("VIOLATION: {violation:?}");
            let min = minimize(start, &trace);
            println!("counterexample ({} steps, minimized from {}):", min.len(), trace.len());
            for (i, &a) in min.iter().enumerate() {
                println!("  {:>3}. {}", i + 1, jrs_mc::trace::format_action(a));
            }
            println!(
                "replay: jrs-mc replay --procs {} --faults {} --submits {} --mutate {} --trace \"{}\"",
                o.cfg.procs,
                o.cfg.faults,
                o.cfg.submits,
                o.cfg.mutation.name(),
                format_trace(&min)
            );
            Ok(ExitCode::FAILURE)
        }
    }
}

fn run_replay(args: &[String]) -> Result<ExitCode, String> {
    let o = parse_opts(args)?;
    let line = o.trace.as_deref().ok_or("replay needs --trace")?;
    let trace = parse_trace(line)?;
    let start = World::new(o.cfg.clone());
    println!("replaying {} steps on procs={} mutate={}", trace.len(), o.cfg.procs, o.cfg.mutation.name());
    match replay(&start, &trace) {
        Some(v) => {
            println!("VIOLATION reproduced: {v:?}");
            Ok(ExitCode::FAILURE)
        }
        None => {
            println!("trace ran clean (no violation; possibly infeasible from this config)");
            Ok(ExitCode::SUCCESS)
        }
    }
}
