//! Bounded depth-first exploration of the model's interleavings, with an
//! optional sleep-set (DPOR-lite) partial-order reduction, visited-state
//! deduplication by fingerprint, a wall-clock budget, and ddmin-style
//! counterexample minimization.

use crate::model::{independent, Action, McConfig, StepResult, Violation, World};
use std::collections::{BTreeSet, HashMap};

/// Exploration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Explore every enabled action at every state (baseline).
    Naive,
    /// Sleep-set reduction: skip an action when a provably equivalent
    /// interleaving (same actions, independent ones reordered) was already
    /// explored from this state.
    Dpor,
}

impl Mode {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "naive" => Some(Mode::Naive),
            "dpor" => Some(Mode::Dpor),
            _ => None,
        }
    }
}

/// Exploration counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Distinct states expanded.
    pub explored: u64,
    /// Visits pruned because the state (with no less remaining depth and a
    /// subsumed sleep set) was seen before.
    pub deduped: u64,
    /// Actions skipped by the sleep-set reduction.
    pub slept: u64,
    /// Terminal (depth-exhausted) states put through the settle check.
    pub settled: u64,
    /// True if the wall-clock budget expired before the bound was covered.
    pub truncated: bool,
}

/// Result of one bounded check.
#[derive(Debug)]
pub enum Outcome {
    /// No reachable violation within the bound.
    Clean(Stats),
    /// A violation, with the action trace that reaches it.
    Violation {
        /// What broke.
        violation: Violation,
        /// Actions from the initial state to the violation (minimized if
        /// the caller ran [`minimize`]).
        trace: Vec<Action>,
        /// Counters up to the point of discovery.
        stats: Stats,
    },
}

/// Wall-clock budget for an exploration. The checker polls it every few
/// hundred states; on expiry the search unwinds cleanly and reports
/// `truncated`. `None` means unbounded.
pub struct Budget {
    deadline: Option<std::time::Instant>,
}

impl Budget {
    /// Unlimited budget.
    pub fn unlimited() -> Self {
        Budget { deadline: None }
    }

    /// Budget of `secs` wall-clock seconds from now.
    pub fn seconds(secs: u64) -> Self {
        Budget {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(secs)),
        }
    }

    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }
}

/// Visited-state table. Keyed by [`World::state_hash`]; each entry keeps
/// the best (largest) remaining depth the state was expanded with, and —
/// in DPOR mode — the sleep sets it was expanded under. A revisit is
/// pruned only when it cannot reach anything new: its remaining depth is
/// no larger and some recorded expansion slept a subset of what this
/// visit would sleep.
struct Visited {
    map: HashMap<u64, Vec<(u32, BTreeSet<Action>)>>,
}

impl Visited {
    fn new() -> Self {
        Visited { map: HashMap::new() }
    }

    /// True if a recorded expansion subsumes this one.
    fn subsumes(&self, hash: u64, depth: u32, sleep: &BTreeSet<Action>) -> bool {
        self.map.get(&hash).is_some_and(|entries| {
            entries
                .iter()
                .any(|(d, s)| *d >= depth && s.is_subset(sleep))
        })
    }

    fn record(&mut self, hash: u64, depth: u32, sleep: BTreeSet<Action>) {
        let entries = self.map.entry(hash).or_default();
        // Drop entries the new one subsumes, then keep the table small.
        entries.retain(|(d, s)| !(depth >= *d && sleep.is_subset(s)));
        if entries.len() < 8 {
            entries.push((depth, sleep));
        }
    }
}

struct Dfs {
    mode: Mode,
    dedup: bool,
    budget: Budget,
    visited: Visited,
    /// Settle verdicts by terminal-state fingerprint: identical states
    /// settle identically, and stateless (no-dedup) searches reach the
    /// same terminal through many equivalent interleavings.
    settled: HashMap<u64, Option<Violation>>,
    stats: Stats,
    path: Vec<Action>,
}

impl Dfs {
    fn run(&mut self, world: &World, depth: u32, sleep: BTreeSet<Action>) -> Option<Violation> {
        if self.stats.explored.is_multiple_of(256) && self.budget.expired() {
            self.stats.truncated = true;
            return None;
        }
        let hash = world.state_hash();
        if self.dedup {
            if self.visited.subsumes(hash, depth, &sleep) {
                self.stats.deduped += 1;
                return None;
            }
            self.visited.record(hash, depth, sleep.clone());
        }
        self.stats.explored += 1;
        if depth == 0 {
            if let Some(v) = self.settled.get(&hash) {
                return v.clone();
            }
            self.stats.settled += 1;
            let v = world.clone().settle();
            self.settled.insert(hash, v.clone());
            return v;
        }
        let mut sleep_now = sleep;
        for action in world.enabled() {
            if self.stats.truncated {
                return None;
            }
            if self.mode == Mode::Dpor && sleep_now.contains(&action) {
                self.stats.slept += 1;
                continue;
            }
            let mut child = world.clone();
            self.path.push(action);
            match child.apply(action) {
                StepResult::Infeasible => {
                    self.path.pop();
                    continue;
                }
                StepResult::Violated(v) => return Some(v),
                StepResult::Ok => {}
            }
            let child_sleep: BTreeSet<Action> = match self.mode {
                Mode::Naive => BTreeSet::new(),
                Mode::Dpor => sleep_now
                    .iter()
                    .copied()
                    .filter(|&b| independent(action, b))
                    .collect(),
            };
            if let Some(v) = self.run(&child, depth - 1, child_sleep) {
                return Some(v);
            }
            self.path.pop();
            if self.mode == Mode::Dpor {
                sleep_now.insert(action);
            }
        }
        None
    }
}

/// A configured exploration: mode, dedup toggle and budget.
///
/// Visited-state dedup is on by default and is what makes deep bounds
/// tractable. Turning it off (`no_dedup`) gives the textbook *stateless*
/// search, where the sleep-set reduction's pruning power is directly
/// visible in the explored-state count — that is the configuration the
/// naive-vs-DPOR comparison uses.
pub struct Search {
    /// Exploration strategy.
    pub mode: Mode,
    /// Deduplicate visited states by fingerprint.
    pub dedup: bool,
    /// Wall-clock budget.
    pub budget: Budget,
}

impl Search {
    /// A deduplicating, unbudgeted search in the given mode.
    pub fn new(mode: Mode) -> Self {
        Search { mode, dedup: true, budget: Budget::unlimited() }
    }

    /// Disable visited-state dedup (stateless search).
    #[must_use]
    pub fn no_dedup(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Set a wall-clock budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Explore from `world` up to `depth` actions deep.
    pub fn run(self, world: &World, depth: u32) -> Outcome {
        let mut dfs = Dfs {
            mode: self.mode,
            dedup: self.dedup,
            budget: self.budget,
            visited: Visited::new(),
            settled: HashMap::new(),
            stats: Stats::default(),
            path: Vec::new(),
        };
        match dfs.run(world, depth, BTreeSet::new()) {
            Some(violation) => Outcome::Violation {
                violation,
                trace: dfs.path,
                stats: dfs.stats,
            },
            None => Outcome::Clean(dfs.stats),
        }
    }
}

/// Explore every interleaving of `cfg`'s model up to `depth` actions.
pub fn check(cfg: McConfig, depth: u32, mode: Mode, budget: Budget) -> Outcome {
    check_from(&World::new(cfg), depth, mode, budget)
}

/// Explore from an arbitrary starting world (e.g. after a scripted
/// prefix); used by regression tests to pin a protocol state and then
/// exhaust the interleavings around it.
pub fn check_from(world: &World, depth: u32, mode: Mode, budget: Budget) -> Outcome {
    Search { mode, dedup: true, budget }.run(world, depth)
}

/// Replay a trace from `start`, checking invariants at every step and the
/// settle properties at the end. Returns the violation it hits, if any;
/// `None` if the trace runs clean or becomes infeasible.
pub fn replay(start: &World, trace: &[Action]) -> Option<Violation> {
    let mut world = start.clone();
    for &a in trace {
        match world.apply(a) {
            StepResult::Ok => {}
            StepResult::Infeasible => return None,
            StepResult::Violated(v) => return Some(v),
        }
    }
    world.settle()
}

/// Shrink a violating trace by repeatedly deleting single actions while
/// the replay still produces *a* violation (not necessarily the identical
/// one — any violation keeps the counterexample useful). Runs to a
/// fixpoint; the result is 1-minimal: removing any one action loses the
/// bug.
pub fn minimize(start: &World, trace: &[Action]) -> Vec<Action> {
    let mut best: Vec<Action> = trace.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if replay(start, &candidate).is_some() {
                best = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mutation;

    fn small() -> McConfig {
        McConfig {
            procs: 2,
            submits: 1,
            faults: 0,
            ..McConfig::default()
        }
    }

    #[test]
    fn small_config_is_clean_and_modes_agree() {
        let start = World::new(small());
        let naive = check_from(&start, 6, Mode::Naive, Budget::unlimited());
        let dpor = check_from(&start, 6, Mode::Dpor, Budget::unlimited());
        let (Outcome::Clean(n), Outcome::Clean(d)) = (naive, dpor) else {
            panic!("expected both modes clean");
        };
        assert!(n.explored > 0 && d.explored > 0);
    }

    #[test]
    fn sleep_sets_prune_stateless_search() {
        let start = World::new(small());
        let naive = Search::new(Mode::Naive).no_dedup().run(&start, 6);
        let dpor = Search::new(Mode::Dpor).no_dedup().run(&start, 6);
        let (Outcome::Clean(n), Outcome::Clean(d)) = (naive, dpor) else {
            panic!("expected both modes clean");
        };
        assert!(
            d.explored < n.explored,
            "sleep sets must prune interleavings ({} vs {})",
            d.explored,
            n.explored
        );
        assert!(d.slept > 0);
    }

    #[test]
    fn seeded_bug_is_caught_and_trace_minimizes() {
        let cfg = McConfig {
            mutation: Mutation::GrantOnForward,
            ..small()
        };
        let start = World::new(cfg);
        let Outcome::Violation { violation, trace, .. } =
            check_from(&start, 6, Mode::Dpor, Budget::unlimited())
        else {
            panic!("seeded grant-on-forward bug not found");
        };
        assert!(matches!(violation, Violation::DuplicateLaunch { .. }));
        let min = minimize(&start, &trace);
        assert!(min.len() <= trace.len());
        assert!(replay(&start, &min).is_some(), "minimized trace must replay");
    }

    #[test]
    fn budget_expiry_truncates_cleanly() {
        let out = check(McConfig::default(), 12, Mode::Naive, Budget::seconds(0));
        let Outcome::Clean(stats) = out else {
            panic!("truncated run must not invent violations");
        };
        assert!(stats.truncated);
    }
}
