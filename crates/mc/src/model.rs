//! The model under check: a cluster of GCS members each running a
//! deterministic PBS replica plus the jmutex launch-arbitration layer,
//! driven step by step through the [`Pump`]'s scheduler seam.
//!
//! A [`World`] is one explorable state. The checker clones it, applies one
//! [`Action`], drains the resulting application upcalls and checks the
//! safety invariants eagerly. Liveness-flavoured properties (replica
//! convergence, exactly-once launch) are checked by [`World::settle`],
//! which runs the remaining protocol to quiescence under FIFO delivery.

use jrs_gcs::testkit::Pump;
use jrs_gcs::{EngineKind, GcsEvent, GroupConfig, MembershipPolicy, View, ViewId};
use jrs_pbs::sched::FifoExclusive;
use jrs_pbs::{JobId, JobSpec, MomReport, PbsServerCore, ServerAction, ServerCmd};
use jrs_sim::{Fnv64, ProcId, SimDuration};
use joshua_core::payload::{JMutexOutcome, JMutexState};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// The stand-in mom process id (never a group member).
const MOM: ProcId = ProcId(99);

/// The replicated command stream of the model: a strict subset of the real
/// JOSHUA payload (client commands, jmutex acquire/release).
#[derive(Clone, Debug, PartialEq, Hash)]
pub enum McPayload {
    /// An intercepted PBS command.
    Cmd(ServerCmd),
    /// jmutex acquire forwarded by `granter` for a launch session.
    Acquire {
        /// The job.
        job: JobId,
        /// Launch session (unique per forwarding head).
        session: u64,
        /// The head that forwarded this acquire.
        granter: ProcId,
    },
    /// jdone: release the launch mutex after completion.
    Release {
        /// The job.
        job: JobId,
    },
}

/// Seedable protocol bugs, used to prove the checker catches real ordering
/// errors (and that the corresponding production logic is load-bearing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Correct protocol.
    #[default]
    None,
    /// BUG: the forwarding head treats its *own forward* as the grant
    /// instead of waiting for the totally ordered acquire verdict. Two
    /// heads forwarding for the same job both launch — the exact race the
    /// paper's jmutex exists to prevent.
    GrantOnForward,
    /// BUG: drop the verdict-redelivery duty on view changes. A granter
    /// that crashes between the ordered grant and the verdict send leaves
    /// a job that never launches (lost launch).
    NoCoverOnViewChange,
}

impl Mutation {
    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "grant-on-forward" => Some(Mutation::GrantOnForward),
            "no-cover" => Some(Mutation::NoCoverOnViewChange),
            _ => None,
        }
    }

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::GrantOnForward => "grant-on-forward",
            Mutation::NoCoverOnViewChange => "no-cover",
        }
    }
}

/// Model parameters.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Number of head-node replicas.
    pub procs: u32,
    /// Job submissions the environment may inject.
    pub submits: u32,
    /// Fault budget: crashes + message drops combined.
    pub faults: u32,
    /// Ordering engine.
    pub engine: EngineKind,
    /// Seeded bug, if any.
    pub mutation: Mutation,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            procs: 3,
            submits: 1,
            faults: 1,
            engine: EngineKind::Sequencer,
            mutation: Mutation::None,
        }
    }
}

/// The members' tick period in the model (virtual time per `Tick` action).
pub const TICK: SimDuration = SimDuration::from_millis(10);

fn group_config(engine: EngineKind) -> GroupConfig {
    GroupConfig {
        engine,
        membership: MembershipPolicy::PrimaryComponent,
        tick_every: TICK,
        heartbeat_every: SimDuration::from_millis(20),
        fail_after: SimDuration::from_millis(45),
        rto: SimDuration::from_millis(15),
        flush_timeout: SimDuration::from_millis(60),
        token_idle_pass: SimDuration::from_millis(10),
        request_retry: SimDuration::from_millis(30),
        payload_bytes: 128,
    }
}

/// One schedulable transition of the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// The environment submits a job to the lowest live head.
    Submit,
    /// Deliver the head frame of one FIFO channel.
    Deliver {
        /// Sending member.
        from: ProcId,
        /// Receiving member.
        to: ProcId,
    },
    /// Drop the head frame of one FIFO channel (message loss; counts
    /// against the fault budget).
    Drop {
        /// Sending member.
        from: ProcId,
        /// Receiving member.
        to: ProcId,
    },
    /// Crash a head (counts against the fault budget; at least one head
    /// always survives).
    Crash {
        /// The victim.
        who: ProcId,
    },
    /// Advance virtual time by one tick on every member (timers fire:
    /// heartbeats, retransmissions, failure detection, flush timeouts).
    Tick,
    /// The environment completes a launched job (the mom's jdone).
    Complete {
        /// The job.
        job: JobId,
    },
}

impl Action {
    /// The member whose local state this action touches, if it is confined
    /// to one member (`None` for global actions). Two actions with
    /// different `Some` targets commute: each pops/pushes only its own
    /// target's state and disjoint FIFO channel ends.
    pub fn target(self) -> Option<ProcId> {
        match self {
            Action::Deliver { to, .. } | Action::Drop { to, .. } => Some(to),
            Action::Submit | Action::Tick | Action::Crash { .. } | Action::Complete { .. } => None,
        }
    }
}

/// Are two actions independent (order-commutable)? Conservative: only
/// per-member frame operations on *different* receiving members commute.
/// `Tick`, `Crash`, `Submit` and `Complete` touch global state (time, the
/// member set, the command stream) and are dependent with everything.
pub fn independent(a: Action, b: Action) -> bool {
    match (a.target(), b.target()) {
        (Some(x), Some(y)) => x != y,
        _ => false,
    }
}

/// A safety violation, with enough context to read the counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two members delivered different payloads (or origins) at the same
    /// total-order position.
    TotalOrderDisagreement {
        /// The disputed sequence number.
        seq: u64,
        /// Who saw the conflicting delivery.
        member: ProcId,
    },
    /// The same message was delivered in different installed views.
    SameViewViolation {
        /// The disputed sequence number.
        seq: u64,
        /// Who delivered it in a different view.
        member: ProcId,
    },
    /// A member was handed a view that does not include itself.
    SelfExclusion {
        /// The member.
        member: ProcId,
        /// The offending view.
        view: ViewId,
    },
    /// Two distinct launch sessions ran for one job.
    DuplicateLaunch {
        /// The job.
        job: JobId,
    },
    /// A granted job never launched (verdict lost and never covered).
    LostLaunch {
        /// The job.
        job: JobId,
    },
    /// Replicas failed to converge to equal state at quiescence.
    Divergence {
        /// First differing pair.
        a: ProcId,
        /// Second member of the pair.
        b: ProcId,
        /// What diverged ("pbs", "jmutex", "view").
        what: &'static str,
    },
}

/// Result of applying one action.
#[derive(Debug)]
pub enum StepResult {
    /// Applied cleanly.
    Ok,
    /// The action is not currently enabled (replay of a stale trace).
    Infeasible,
    /// Applied, and a safety invariant broke.
    Violated(Violation),
}

/// Per-replica application state above the GCS: the PBS server, the
/// jmutex table and the view bookkeeping the responder rule needs.
#[derive(Clone, Debug)]
struct App {
    me: ProcId,
    pbs: PbsServerCore,
    jmutex: JMutexState,
    view: Vec<ProcId>,
    view_id: ViewId,
    /// Members that joined in the current view (excluded from responder
    /// duty, mirroring `JoshuaServer::responder`).
    joined_current: BTreeSet<ProcId>,
    /// Highest delivered seq (total-order monotonicity check).
    last_seq: u64,
    /// Set when the member was ejected and rejoined: its replica is void
    /// until state transfer, which the model does not perform. A void
    /// replica still participates in the GCS (delivery-level invariants
    /// apply) but skips application processing and is excluded from
    /// convergence and launch checks.
    awaiting_transfer: bool,
}

impl App {
    fn new(me: ProcId, view: &View) -> Self {
        App {
            me,
            pbs: fresh_pbs(),
            jmutex: JMutexState::new(),
            view: view.members.clone(),
            view_id: view.id,
            joined_current: BTreeSet::new(),
            last_seq: 0,
            awaiting_transfer: false,
        }
    }

    fn responder(&self) -> Option<ProcId> {
        self.view
            .iter()
            .copied()
            .find(|m| !self.joined_current.contains(m))
            .or_else(|| self.view.first().copied())
    }

    fn state_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        self.me.hash(&mut h);
        self.pbs.state_hash().hash(&mut h);
        self.jmutex.state_hash().hash(&mut h);
        self.view.hash(&mut h);
        self.view_id.hash(&mut h);
        self.joined_current.hash(&mut h);
        self.last_seq.hash(&mut h);
        self.awaiting_transfer.hash(&mut h);
        h.finish()
    }
}

fn fresh_pbs() -> PbsServerCore {
    // One compute node under the paper's exclusive FIFO policy: one job
    // runs at a time, every queued job eventually gets a Start action.
    PbsServerCore::new("head", std::iter::once("c00".to_string()), Box::new(FifoExclusive))
}

/// Session id of the launch a head would forward for a job: unique per
/// (head, job) so duplicate launches are observable.
fn session_of(p: ProcId, job: JobId) -> u64 {
    u64::from(p.0) * 1000 + job.0
}

/// One explorable state of the whole model.
#[derive(Clone, Debug)]
pub struct World {
    /// The cluster (members + network).
    pub pump: Pump<McPayload>,
    apps: BTreeMap<ProcId, App>,
    cfg: McConfig,
    /// Jobs submitted so far.
    submits_done: u32,
    /// Faults injected so far (crashes + drops).
    faults_done: u32,
    /// Sessions that actually launched, per job (the mom's view).
    launches: BTreeMap<JobId, BTreeSet<u64>>,
    /// Jobs whose completion has been injected.
    completed: BTreeSet<JobId>,
    /// Canonical total order observed so far:
    /// seq → (origin, payload fingerprint, delivery view).
    canon: BTreeMap<u64, (ProcId, u64, ViewId)>,
}

impl World {
    /// A settled initial world: `procs` members, view installed, no
    /// traffic in flight.
    pub fn new(cfg: McConfig) -> Self {
        let mut pump = Pump::group(cfg.procs, group_config(cfg.engine));
        let _ = pump.take_events(); // bootstrap emits no app-relevant events
        let apps = pump
            .members
            .iter()
            .map(|(&id, m)| (id, App::new(id, m.view())))
            .collect();
        World {
            pump,
            apps,
            cfg,
            submits_done: 0,
            faults_done: 0,
            launches: BTreeMap::new(),
            completed: BTreeSet::new(),
            canon: BTreeMap::new(),
        }
    }

    /// The configuration this world was built from.
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    /// Live member ids.
    pub fn live(&self) -> Vec<ProcId> {
        self.pump.members.keys().copied().collect()
    }

    /// Deterministic fingerprint of everything that influences future
    /// behaviour: protocol state, in-flight frames, application replicas,
    /// environment budgets and the launch record.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        self.pump.state_hash().hash(&mut h);
        for app in self.apps.values() {
            app.state_hash().hash(&mut h);
        }
        self.submits_done.hash(&mut h);
        self.faults_done.hash(&mut h);
        self.launches.hash(&mut h);
        self.completed.hash(&mut h);
        h.finish()
    }

    /// All actions currently enabled, in deterministic order.
    pub fn enabled(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        if self.submits_done < self.cfg.submits {
            acts.push(Action::Submit);
        }
        for (from, to) in self.pump.pending() {
            acts.push(Action::Deliver { from, to });
            if self.faults_done < self.cfg.faults {
                acts.push(Action::Drop { from, to });
            }
        }
        if self.faults_done < self.cfg.faults && self.pump.members.len() > 1 {
            for &who in self.pump.members.keys() {
                acts.push(Action::Crash { who });
            }
        }
        acts.push(Action::Tick);
        for (&job, sessions) in &self.launches {
            if !sessions.is_empty() && !self.completed.contains(&job) {
                acts.push(Action::Complete { job });
            }
        }
        acts
    }

    /// Apply one action, drain upcalls, check safety invariants.
    pub fn apply(&mut self, action: Action) -> StepResult {
        match action {
            Action::Submit => {
                if self.submits_done >= self.cfg.submits {
                    return StepResult::Infeasible;
                }
                let Some(&head) = self.pump.members.keys().next() else {
                    return StepResult::Infeasible;
                };
                self.submits_done += 1;
                let name = format!("job-{}", self.submits_done);
                self.pump.submit(head, McPayload::Cmd(ServerCmd::Qsub(JobSpec::trivial(name))));
            }
            Action::Deliver { from, to } => {
                if !self.pump.deliver_from(from, to) {
                    return StepResult::Infeasible;
                }
            }
            Action::Drop { from, to } => {
                if self.faults_done >= self.cfg.faults || !self.pump.drop_head(from, to) {
                    return StepResult::Infeasible;
                }
                self.faults_done += 1;
            }
            Action::Crash { who } => {
                if self.faults_done >= self.cfg.faults
                    || self.pump.members.len() <= 1
                    || !self.pump.members.contains_key(&who)
                {
                    return StepResult::Infeasible;
                }
                self.faults_done += 1;
                self.pump.crash(who);
                self.apps.remove(&who);
            }
            Action::Tick => {
                self.pump.tick_members(TICK);
            }
            Action::Complete { job } => {
                let launched = self.launches.get(&job).is_some_and(|s| !s.is_empty());
                if !launched || self.completed.contains(&job) {
                    return StepResult::Infeasible;
                }
                let Some(&head) = self.pump.members.keys().next() else {
                    return StepResult::Infeasible;
                };
                self.completed.insert(job);
                self.pump.submit(head, McPayload::Release { job });
            }
        }
        match self.drain_events() {
            Some(v) => StepResult::Violated(v),
            None => StepResult::Ok,
        }
    }

    /// Record that a launch session actually started a job on the mom.
    /// Duplicate *sessions* for one job violate mutual exclusion;
    /// re-recording the same session is idempotent (verdict retransmit).
    fn record_launch(&mut self, job: JobId, session: u64) -> Option<Violation> {
        let sessions = self.launches.entry(job).or_default();
        sessions.insert(session);
        (sessions.len() > 1).then_some(Violation::DuplicateLaunch { job })
    }

    /// Process queued upcalls through the application replicas, checking
    /// invariants eagerly. Returns the first violation.
    fn drain_events(&mut self) -> Option<Violation> {
        // Events can cascade: a delivery makes a replica broadcast an
        // acquire, which the pump turns into more frames (no new events
        // until those frames are delivered), so one pass per loop works.
        loop {
            let events = self.pump.take_events();
            if events.is_empty() {
                return None;
            }
            for (who, ev) in events {
                if let Some(v) = self.on_event(who, ev) {
                    return Some(v);
                }
            }
        }
    }

    fn on_event(&mut self, who: ProcId, ev: GcsEvent<McPayload>) -> Option<Violation> {
        // Debugging aid for counterexample replays (`jrs-mc replay`):
        // narrate protocol events without affecting the explored state.
        if std::env::var_os("JRS_MC_TRACE_EVENTS").is_some() {
            match &ev {
                GcsEvent::Deliver { seq, origin, .. } => {
                    eprintln!("[ev] t={:?} {who:?} deliver seq={seq} origin={origin:?}", self.pump.now)
                }
                GcsEvent::ViewChange { view, joined, left } => eprintln!(
                    "[ev] t={:?} {who:?} view {:?} members={:?} joined={joined:?} left={left:?}",
                    self.pump.now, view.id, view.members
                ),
                GcsEvent::Ejected => eprintln!("[ev] t={:?} {who:?} EJECTED", self.pump.now),
            }
        }
        match ev {
            GcsEvent::Deliver { seq, origin, payload } => self.on_deliver(who, seq, origin, payload),
            GcsEvent::ViewChange { view, joined, .. } => self.on_view_change(who, &view, &joined),
            GcsEvent::Ejected => {
                // The group moved on without this member; its replica state
                // is void until state transfer, which the model does not
                // perform — the app stays void after rejoining.
                if let Some(app) = self.apps.get_mut(&who) {
                    app.pbs = fresh_pbs();
                    app.jmutex = JMutexState::new();
                    app.view = Vec::new();
                    app.view_id = ViewId::NONE;
                    app.joined_current.clear();
                    app.last_seq = 0;
                    app.awaiting_transfer = true;
                }
                None
            }
        }
    }

    fn on_deliver(
        &mut self,
        who: ProcId,
        seq: u64,
        origin: ProcId,
        payload: McPayload,
    ) -> Option<Violation> {
        let fp = jrs_sim::fingerprint(&payload);
        let view_id = self.apps.get(&who).map_or(ViewId::NONE, |a| a.view_id);
        // Invariant: total-order agreement — every member that delivers
        // seq delivers the same (origin, payload).
        match self.canon.get(&seq) {
            None => {
                self.canon.insert(seq, (origin, fp, view_id));
            }
            Some(&(o, f, v)) => {
                if o != origin || f != fp {
                    return Some(Violation::TotalOrderDisagreement { seq, member: who });
                }
                // Invariant: same-view delivery (virtual synchrony).
                if v != view_id {
                    return Some(Violation::SameViewViolation { seq, member: who });
                }
            }
        }
        let app = self.apps.get_mut(&who)?;
        // Invariant: per-member delivery is monotone in seq.
        if seq <= app.last_seq {
            return Some(Violation::TotalOrderDisagreement { seq, member: who });
        }
        app.last_seq = seq;
        if app.awaiting_transfer {
            // Void replica: the real system fills it by snapshot transfer
            // before it may process the stream; here it just observes the
            // delivery-level invariants above.
            return None;
        }
        let now = self.pump.now;
        match payload {
            McPayload::Cmd(cmd) => {
                let (_reply, actions) = app.pbs.apply(now, &cmd);
                let me = app.me;
                for a in actions {
                    if let ServerAction::Start { job, .. } = a {
                        let session = session_of(me, job);
                        // Forward the launch through the jmutex: ordered
                        // acquire; the verdict decides who really launches.
                        self.pump
                            .submit(me, McPayload::Acquire { job, session, granter: me });
                        if self.cfg.mutation == Mutation::GrantOnForward {
                            // BUG: launch immediately on forward.
                            if let Some(v) = self.record_launch(job, session) {
                                return Some(v);
                            }
                        }
                    }
                }
            }
            McPayload::Acquire { job, session, granter } => {
                let outcome = app.jmutex.acquire(job, MOM, session, granter, false);
                // The forwarding head sends the verdict; if it left the
                // view while the acquire was in flight, the responder
                // covers for it (deterministic at every replica).
                let sender = if app.view.contains(&granter) {
                    granter
                } else {
                    app.responder().unwrap_or(granter)
                };
                if sender == who && outcome == JMutexOutcome::Granted {
                    if let Some(v) = self.record_launch(job, session) {
                        return Some(v);
                    }
                }
            }
            McPayload::Release { job } => {
                app.jmutex.release(job);
                let _ = app
                    .pbs
                    .on_report(now, &MomReport::Finished { job, exit: 0 });
            }
        }
        None
    }

    fn on_view_change(&mut self, who: ProcId, view: &View, joined: &[ProcId]) -> Option<Violation> {
        // Invariant: self-inclusion — a member is never handed a view it
        // is not part of (exclusion must arrive as `Ejected`).
        if !view.contains(who) {
            return Some(Violation::SelfExclusion { member: who, view: view.id });
        }
        let app = self.apps.get_mut(&who)?;
        app.view = view.members.clone();
        app.view_id = view.id;
        app.joined_current = joined.iter().copied().collect();
        // Verdict redelivery: grants whose granter left the view can never
        // reach the mom — the responder re-sends them (idempotent).
        if self.cfg.mutation != Mutation::NoCoverOnViewChange
            && !app.awaiting_transfer
            && app.responder() == Some(who)
        {
            let lost: Vec<(JobId, u64)> = app
                .jmutex
                .grants()
                .filter(|(_, g)| !view.contains(g.granter))
                .map(|(job, g)| (job, g.session))
                .collect();
            for (job, session) in lost {
                if let Some(v) = self.record_launch(job, session) {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Run the remaining protocol to quiescence under plain FIFO delivery
    /// (deliver everything, tick through failure detection and flush) and
    /// check the terminal-state invariants: replica convergence and
    /// exactly-once launch for every outstanding grant.
    ///
    /// Call on a clone — this consumes the world's future.
    pub fn settle(mut self) -> Option<Violation> {
        // Enough rounds for detection (45ms = 5 ticks) + two takeover
        // flushes (60ms = 6 ticks each) with margin; each round is one
        // tick plus a full FIFO drain.
        for _ in 0..28 {
            self.pump.tick_members(TICK);
            self.pump.run();
            if let Some(v) = self.drain_events() {
                return Some(v);
            }
        }
        // Convergence: every installed live replica agrees on view, PBS
        // state and jmutex table. Void (ejected-and-rejoined) replicas are
        // excluded — the real system refills them by state transfer.
        let transfer_pending = self.apps.values().any(|a| a.awaiting_transfer);
        let installed: Vec<&App> = self
            .apps
            .values()
            .filter(|a| !a.view.is_empty() && !a.awaiting_transfer)
            .collect();
        for w in installed.windows(2) {
            let (a, b) = (w[0], w[1]);
            let what = if a.view != b.view || a.view_id != b.view_id {
                Some("view")
            } else if a.pbs.state_hash() != b.pbs.state_hash() {
                Some("pbs")
            } else if a.jmutex.state_hash() != b.jmutex.state_hash() {
                Some("jmutex")
            } else {
                None
            };
            if let Some(what) = what {
                return Some(Violation::Divergence { a: a.me, b: b.me, what });
            }
        }
        // Exactly-once launch: every outstanding grant any live replica
        // still holds must have exactly one recorded launch session.
        for app in &installed {
            for (job, g) in app.jmutex.grants() {
                match self.launches.get(&job).map_or(0, BTreeSet::len) {
                    // A void replica may have been the designated verdict
                    // sender; without state transfer it cannot launch, so
                    // the lost-launch check is vacuous in that case.
                    0 if transfer_pending => {}
                    0 => return Some(Violation::LostLaunch { job }),
                    1 => {
                        let s = self.launches[&job].iter().next().copied();
                        if s != Some(g.session) {
                            return Some(Violation::DuplicateLaunch { job });
                        }
                    }
                    _ => return Some(Violation::DuplicateLaunch { job }),
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_world_is_quiet_and_stable() {
        let w = World::new(McConfig::default());
        assert!(w.pump.pending().is_empty());
        assert_eq!(w.live().len(), 3);
        let w2 = World::new(McConfig::default());
        assert_eq!(w.state_hash(), w2.state_hash(), "construction is deterministic");
    }

    #[test]
    fn submit_then_fifo_run_launches_exactly_once() {
        let mut w = World::new(McConfig::default());
        assert!(matches!(w.apply(Action::Submit), StepResult::Ok));
        assert!(w.clone().settle().is_none());
    }

    #[test]
    fn enabled_actions_are_deterministic() {
        let mut w = World::new(McConfig::default());
        let _ = w.apply(Action::Submit);
        let a = w.enabled();
        let b = w.clone().enabled();
        assert_eq!(a, b);
        assert!(a.contains(&Action::Tick));
    }

    #[test]
    fn infeasible_actions_are_reported() {
        let mut w = World::new(McConfig { submits: 0, ..McConfig::default() });
        assert!(matches!(w.apply(Action::Submit), StepResult::Infeasible));
        assert!(matches!(
            w.apply(Action::Deliver { from: ProcId(0), to: ProcId(1) }),
            StepResult::Infeasible
        ));
        assert!(matches!(
            w.apply(Action::Complete { job: JobId(1) }),
            StepResult::Infeasible
        ));
    }

    #[test]
    fn grant_on_forward_mutation_double_launches() {
        let mut w = World::new(McConfig {
            mutation: Mutation::GrantOnForward,
            ..McConfig::default()
        });
        let _ = w.apply(Action::Submit);
        // FIFO settle delivers the Qsub at every replica; with the seeded
        // bug each forwarder "launches" — a duplicate.
        let v = w.settle();
        assert!(
            matches!(v, Some(Violation::DuplicateLaunch { .. })),
            "expected duplicate launch, got {v:?}"
        );
    }
}
