//! `jrs-mc` — bounded model checker for the GCS / jmutex protocol.
//!
//! The checker drives the *real* protocol implementation — the
//! [`jrs_gcs`] group members behind the testkit [`Pump`]'s scheduler
//! seam, with a deterministic [`jrs_pbs`] replica and the
//! [`joshua_core::payload::JMutexState`] launch mutex on top — through
//! every interleaving of message deliveries, drops, crashes and timer
//! ticks up to a configurable depth. No protocol re-model: a bug found
//! here is a bug in the shipping code.
//!
//! Checked invariants:
//!
//! - **Total-order agreement** — members that deliver sequence number
//!   `s` deliver the same `(origin, payload)` at `s`, monotonically.
//! - **Same-view delivery** — a message is delivered in the same
//!   installed view at every member that delivers it.
//! - **Self-inclusion** — no member is handed a view that omits itself.
//! - **Exactly-once launch** — the jmutex grants each job to exactly one
//!   launch session; no duplicate launch, no lost launch (verdict
//!   redelivery after granter death).
//! - **Convergence** — at quiescence, all installed replicas agree on
//!   view, PBS state and jmutex table (by [`state_hash`] fingerprints).
//!
//! State explosion is held down by fingerprint-based visited-state
//! deduplication and a sleep-set ("DPOR-lite") partial-order reduction
//! over the independence relation of [`model::independent`]. A violation
//! is reported as a minimized, replayable action trace — see the
//! `replay` subcommand of the `jrs-mc` binary.
//!
//! [`Pump`]: jrs_gcs::testkit::Pump
//! [`state_hash`]: model::World::state_hash

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checker;
pub mod model;
pub mod trace;

pub use checker::{check, check_from, minimize, replay, Budget, Mode, Outcome, Search, Stats};
pub use model::{Action, McConfig, Mutation, StepResult, Violation, World};
pub use trace::{format_trace, parse_trace};
