//! CLI for the determinism lint: `cargo run -p jrs-detlint -- check`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "jrs-detlint — determinism/robustness lint for the JOSHUA workspace

USAGE:
    jrs-detlint check [--root <dir>] [--json]   lint every src/**/*.rs; exit 1 on violations
    jrs-detlint rules                  print the rule table and per-crate exemptions

Suppress a finding inline with `// detlint: allow(D001): <reason>` on the
offending line or the line above it."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--json" => json = true,
            _ => return usage(),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match jrs_detlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "jrs-detlint: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match jrs_detlint::check_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
                return if report.clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
            for v in &report.violations {
                println!("{v}");
            }
            if report.clean() {
                println!(
                    "detlint: OK — {} files scanned, 0 violations",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "detlint: FAILED — {} violation(s) in {} files scanned \
                     (run `cargo run -p jrs-detlint -- rules` for rationale)",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("jrs-detlint: I/O error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    println!("detlint rule set (replica-state-machine invariants)\n");
    for r in jrs_detlint::RULES {
        println!("{}  {}", r.code, r.summary);
        println!("      why: {}\n", r.why);
    }
    println!("per-crate exemptions:");
    for (krate, rule, why) in jrs_detlint::EXEMPTIONS {
        println!("  {krate}: {rule} — {why}");
    }
}
