//! `jrs-detlint` — determinism/robustness lint for the JOSHUA
//! workspace.
//!
//! JOSHUA's correctness argument (PAPER.md §3) is that every head node
//! applies the same totally ordered command stream to a
//! **deterministic** state machine, so all replicas remain
//! byte-identical. The compiler cannot check that premise; this crate
//! does, statically, with a zero-dependency line/token scanner that
//! walks every `.rs` file under the workspace's `src/` trees and
//! enforces the rule set in [`rules::RULES`]:
//!
//! * **D001** — no `HashMap`/`HashSet` in replicated-state crates;
//! * **D002** — no `SystemTime::now`/`Instant::now` outside the
//!   simulator and bench harness;
//! * **D003** — no ambient RNG (`thread_rng`, `rand::random`, OS
//!   entropy);
//! * **D004** — no `f32`/`f64` fields in replicated-state types;
//! * **P001** — no `unwrap`/`expect`/`panic!` in the GCS delivery hot
//!   path;
//! * **SUPP** — suppression pragmas must justify themselves.
//!
//! Violations can be waived inline with
//! `// detlint: allow(D001): <reason>` on the offending line or the
//! line above it, and per crate through the exemption table in
//! [`rules::EXEMPTIONS`].
//!
//! Run it three ways:
//!
//! * `cargo run -p jrs-detlint -- check` — CI/CLI entry, file:line
//!   diagnostics, nonzero exit on violations;
//! * the root crate's `tests/detlint_gate.rs` — `cargo test` enforces
//!   it;
//! * [`check_workspace`] — library API for both of the above.
//!
//! ## Scope and limitations
//!
//! The scanner strips comments, string literals, and char literals
//! before matching, tracks trailing `#[cfg(test)]` modules (exempt),
//! and only visits files under a `src/` directory — integration
//! tests, benches, and examples are harness code, not replica state.
//! It is a token scanner, not a type checker: renaming imports
//! (`use std::collections::HashMap as Map`) can evade it. That is
//! acceptable — the lint exists to catch the accidental 2am case, and
//! deliberate evasion is what code review is for.

pub mod rules;
pub mod scanner;

pub use rules::{FileOrigin, Rule, Violation, EXEMPTIONS, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of a whole-workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, in path/line order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Did the workspace pass?
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render as a JSON object (hand-rolled: the lint stays
    /// zero-dependency), the form CI archives as an artifact.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"files_scanned\":{},\"findings\":[",
            self.files_scanned
        );
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint one file's source text (the unit the fixture tests drive).
pub fn check_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let origin = FileOrigin::classify(rel_path);
    let clean = scanner::preprocess(source);
    rules::scan(&origin, &clean)
}

/// Walk the workspace rooted at `root` and lint every `src/**/*.rs`.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for rel in files {
        let text = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_else(|| rel.to_string_lossy().into_owned());
        report.violations.extend(check_source(&rel_str, &text));
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Recursively collect `.rs` files that live under a `src/` directory,
/// skipping VCS metadata and build output.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if rel.components().any(|c| c.as_os_str() == "src") {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
