//! Source preprocessing: comment/string stripping, suppression-pragma
//! extraction, and token matching.
//!
//! The lint is a line/token scanner, not a parser. Preprocessing
//! replaces the contents of comments, string literals, and char
//! literals with spaces (preserving line structure and column
//! positions), so rule patterns never fire inside documentation or
//! message text. Pragmas are read from the *original* text, since they
//! live in comments.

/// A `// detlint: allow(RULE): reason` suppression found in a comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma appears on.
    pub line: usize,
    /// Rule codes being suppressed, e.g. `["D001"]`.
    pub rules: Vec<String>,
    /// Justification text after the closing paren (may be empty —
    /// which is itself reported as a violation).
    pub reason: String,
}

/// Result of preprocessing one file.
#[derive(Debug)]
pub struct CleanSource {
    /// One entry per input line: the line with comment/string/char
    /// literal contents blanked out.
    pub code_lines: Vec<String>,
    /// All suppression pragmas, in line order.
    pub pragmas: Vec<Pragma>,
}

impl CleanSource {
    /// Is a violation of `rule` on 1-based `line` suppressed by a
    /// pragma on the same line or the line directly above it?
    pub fn suppressed(&self, rule: &str, line: usize) -> Option<&Pragma> {
        self.pragmas.iter().find(|p| {
            (p.line == line || p.line + 1 == line) && p.rules.iter().any(|r| r == rule)
        })
    }

    /// 1-based line (if any) of a top-level `#[cfg(test)]` attribute;
    /// everything from there to end of file is test scaffolding.
    /// Heuristic that matches this workspace's layout: unit-test
    /// modules sit at the end of each file.
    pub fn test_module_start(&self) -> Option<usize> {
        self.code_lines.iter().enumerate().find_map(|(i, l)| {
            let t = l.trim();
            if t.starts_with("#[cfg(test)]") && indent_of(l) == 0 {
                Some(i + 1)
            } else {
                None
            }
        })
    }
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

/// Lexer mode while sweeping a file.
enum Mode {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Blank out comments, strings, and char literals; collect pragmas.
///
/// Pragmas are recognised only in genuine line comments whose text
/// (after the `//`/`///`/`//!` marker) *starts with* `detlint:` —
/// mentions of the pragma syntax inside documentation prose or string
/// literals never count.
pub fn preprocess(text: &str) -> CleanSource {
    preprocess_keyed(text, "detlint")
}

/// [`preprocess`] with a caller-chosen pragma keyword, so other tools
/// built on this scanner (jrs-flow) can read their own
/// `// <keyword>: allow(RULE): reason` pragmas without colliding with
/// detlint's namespace.
pub fn preprocess_keyed(text: &str, keyword: &str) -> CleanSource {
    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut pragmas = Vec::new();
    let mut line_no = 1usize;
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            line_no += 1;
        }
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    // Capture the whole comment up front for pragma
                    // parsing; blanking proceeds via LineComment mode.
                    let comment: String =
                        bytes[i..].iter().take_while(|&&ch| ch != '\n').collect();
                    if let Some(p) = parse_pragma(&comment, line_no, keyword) {
                        pragmas.push(p);
                    }
                    mode = Mode::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment { depth: 1 };
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    mode = Mode::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#'))
                    && !prev_is_ident(&out) =>
                {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        mode = Mode::RawStr { hashes };
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                // Char literal vs lifetime. A char literal closes
                // within a few characters; a lifetime never closes.
                '\'' if is_char_literal(&bytes[i..]) => {
                    mode = Mode::Char;
                    out.push(' ');
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            Mode::BlockComment { depth } => {
                if c == '*' && next == Some('/') {
                    let d = depth - 1;
                    out.push_str("  ");
                    i += 2;
                    mode = if d == 0 { Mode::Code } else { Mode::BlockComment { depth: d } };
                } else if c == '/' && next == Some('*') {
                    out.push_str("  ");
                    i += 2;
                    mode = Mode::BlockComment { depth: depth + 1 };
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Str => match c {
                '\\' => {
                    // Keep line structure when the escape is a
                    // line-continuation backslash.
                    out.push(' ');
                    if next == Some('\n') {
                        out.push('\n');
                        line_no += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                }
                '"' => {
                    mode = Mode::Code;
                    out.push(' ');
                    i += 1;
                }
                _ => {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            },
            Mode::RawStr { hashes } => {
                if c == '"' && bytes[i + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes
                {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                    mode = Mode::Code;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Char => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    mode = Mode::Code;
                    out.push(' ');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
        }
    }

    let code_lines: Vec<String> = out.lines().map(str::to_string).collect();
    CleanSource { code_lines, pragmas }
}

fn prev_is_ident(out: &str) -> bool {
    out.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Does `s` (starting at `'`) open a char literal rather than a
/// lifetime? `'a'` / `'\n'` / `'\u{1F600}'` are literals; `'static`
/// and `'a,` are lifetimes.
fn is_char_literal(s: &[char]) -> bool {
    debug_assert_eq!(s.first(), Some(&'\''));
    match s.get(1) {
        Some('\\') => true,
        Some(_) => s.get(2) == Some(&'\''),
        None => false,
    }
}

/// Parse one line comment (including its `//`/`///`/`//!` marker) into
/// a `<keyword>: allow(R1[, R2...]): reason` pragma, if its text starts
/// with the pragma keyword.
fn parse_pragma(comment: &str, line: usize, keyword: &str) -> Option<Pragma> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let rest = body.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_uppercase())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("").to_string();
    if rules.is_empty() {
        None
    } else {
        Some(Pragma { line, rules, reason })
    }
}

/// Does `line` contain `word` as a standalone identifier token (not as
/// a substring of a longer identifier)?
pub fn has_token(line: &str, word: &str) -> bool {
    token_position(line, word).is_some()
}

/// Byte offset of the first standalone occurrence of `word` in `line`.
pub fn token_position(line: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = line[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"HashMap::new()\"; // HashMap here too\nlet m = HashMap::new();\n";
        let clean = preprocess(src);
        assert!(!has_token(&clean.code_lines[0], "HashMap"));
        assert!(has_token(&clean.code_lines[1], "HashMap"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let f = r#\"thread_rng() inside fixture\"#;\nthread_rng();\n";
        let clean = preprocess(src);
        assert!(!has_token(&clean.code_lines[0], "thread_rng"));
        assert!(has_token(&clean.code_lines[1], "thread_rng"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet q = '\\'';\nHashMap::new();\n";
        let clean = preprocess(src);
        assert!(has_token(&clean.code_lines[0], "str"));
        assert!(has_token(&clean.code_lines[3], "HashMap"));
    }

    #[test]
    fn pragma_parsing() {
        let src = "use std::collections::HashMap; // detlint: allow(D001): lookup-only cache\n";
        let clean = preprocess(src);
        assert_eq!(clean.pragmas.len(), 1);
        let p = &clean.pragmas[0];
        assert_eq!(p.rules, vec!["D001"]);
        assert_eq!(p.reason, "lookup-only cache");
        assert!(clean.suppressed("D001", 1).is_some());
        assert!(clean.suppressed("D002", 1).is_none());
    }

    #[test]
    fn pragma_on_preceding_line_applies() {
        let src = "// detlint: allow(P001, D001): test-only helper\nfoo.unwrap();\n";
        let clean = preprocess(src);
        assert!(clean.suppressed("P001", 2).is_some());
        assert!(clean.suppressed("P001", 3).is_none());
    }

    #[test]
    fn keyed_pragmas_use_their_own_namespace() {
        let src = "x.unwrap(); // flow: allow(F003): bounded by construction\n";
        let det = preprocess(src);
        assert!(det.pragmas.is_empty(), "detlint must not see flow pragmas");
        let flow = preprocess_keyed(src, "flow");
        assert_eq!(flow.pragmas.len(), 1);
        assert_eq!(flow.pragmas[0].rules, vec!["F003"]);
        assert_eq!(flow.pragmas[0].reason, "bounded by construction");
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(has_token("let x: Instant = t;", "Instant"));
        assert!(!has_token("let y = as_secs_f64();", "f64"));
        assert!(!has_token("MyHashMapLike::new()", "HashMap"));
    }

    #[test]
    fn cfg_test_module_found() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let clean = preprocess(src);
        assert_eq!(clean.test_module_start(), Some(2));
    }
}
