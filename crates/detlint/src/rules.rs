//! Rule definitions, per-crate scoping, and the exemption table.
//!
//! The rule set encodes the premise of symmetric active/active
//! replication (PAPER.md §3): every head node applies the same totally
//! ordered command stream to a **deterministic** state machine, so all
//! replicas stay byte-identical. Each rule bans one class of
//! nondeterminism (or fragility) that would silently break that
//! premise.

use crate::scanner::{has_token, token_position, CleanSource};

/// One diagnostic produced by the lint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule code, e.g. `D001`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of what tripped and how to fix it.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// Crates whose library code *is* the replicated state machine (or
/// feeds it): the strictest rules apply here.
pub const REPLICATED_CRATES: &[&str] = &["gcs", "pbs", "core", "store", "joshua-repro"];

/// Files forming the GCS delivery hot path: total-order engines and the
/// reliable link layer. A panic here kills a replica on the very code
/// path that must instead degrade and recover via a view change.
pub const HOT_PATH_FILES: &[&str] =
    &["crates/gcs/src/engine.rs", "crates/gcs/src/link.rs"];

/// Per-crate exemptions, with the justification the rule's docs demand.
/// Consulted after a rule's base scope: `(crate, rule, why)`.
pub const EXEMPTIONS: &[(&str, &str, &str)] = &[
    (
        "sim",
        "D002",
        "the simulator owns virtual time; it is the layer that keeps wall-clock out of everything else",
    ),
    (
        "bench",
        "D002",
        "the experiment harness measures real wall-clock by definition and never runs inside a replica",
    ),
    (
        "availability",
        "D004",
        "availability math (MTTF/MTTR, Monte Carlo) is floating-point by nature and is analysis output, not replicated state",
    ),
    (
        "mc",
        "D002",
        "the model checker's wall-clock budget bounds real CPU time of the search itself; the explored model runs on virtual SimTime and never reads the clock",
    ),
    (
        "shim-rand",
        "D003",
        "the vendored rand shim is the seeded RNG implementation itself",
    ),
    (
        "shim-criterion",
        "D002",
        "the vendored criterion shim is a wall-clock measurement harness",
    ),
    (
        "shim-proptest",
        "D003",
        "the vendored proptest shim derives seeds from test names; it is below the replicated layer",
    ),
];

/// Static description of one rule (also printed by `jrs-detlint rules`).
pub struct Rule {
    pub code: &'static str,
    pub summary: &'static str,
    pub why: &'static str,
}

/// The rule table, in check order.
pub const RULES: &[Rule] = &[
    Rule {
        code: "D001",
        summary: "no HashMap/HashSet in replicated-state crates (gcs, pbs, core, store, root) — use BTreeMap/BTreeSet or an explicitly sorted snapshot",
        why: "std hash maps are seeded per-process (SipHash with random keys); iterating one inside the apply path gives every replica a different order, and any order-dependent effect (snapshot digests, tie-breaking, message emission order) silently diverges",
    },
    Rule {
        code: "D002",
        summary: "no SystemTime::now / Instant::now outside crates/sim and the bench harness — replicated code takes SimTime from the kernel",
        why: "wall-clock reads differ across replicas by definition; any branch or stored field derived from one makes state a function of *which machine* applied the command, not just the command stream",
    },
    Rule {
        code: "D003",
        summary: "no thread_rng / rand::random / OS entropy — randomness must flow from an explicit seed in the sim/cluster config",
        why: "ambient RNG draws a different stream in every process; a replicated decision made on one (backoff jitter, tie-breaking, sampling) forks the state machines",
    },
    Rule {
        code: "D004",
        summary: "no f32/f64 fields in replicated-state structs/enums (gcs, pbs, core, store, root; the availability crate is exempt)",
        why: "floating-point accumulation order and platform rounding are not bit-stable guarantees; integer nanoseconds / counts keep snapshot comparison exact (store floats only in analysis/metrics code)",
    },
    Rule {
        code: "D005",
        summary: "no `sort_by`/`sort_unstable_by` over `partial_cmp`, and no lossy `as` narrowing casts (to u8/u16/u32/i8/i16/i32), in replicated-state crates",
        why: "`partial_cmp(..).unwrap()` panics on NaN and a non-total comparator makes the sort order input-dependent, so replicas disagree on tie order; a narrowing `as` cast silently wraps on overflow, and two replicas that disagree only in a high bit would truncate to *agreeing* low bits (or vice versa) — use `Ord::cmp`/`total_cmp` and `try_from` with an explicit saturation policy",
    },
    Rule {
        code: "P001",
        summary: "no unwrap/expect/panic!/unreachable!/todo! in the GCS delivery hot path (engine.rs, link.rs) — degrade and let the view change recover",
        why: "a panic on the delivery path turns a protocol hiccup into a replica death, which is exactly the failure JOSHUA exists to mask; debug_assert! is permitted (compiled out in release) for developer-time signal",
    },
    Rule {
        code: "SUPP",
        summary: "every `// detlint: allow(...)` pragma must carry a justification after a trailing colon",
        why: "an unexplained suppression is indistinguishable from a silenced bug; the justification is what reviewers audit",
    },
];

/// Where a file sits for scoping purposes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileOrigin {
    /// Short crate key: `gcs`, `pbs`, `core`, `sim`, `availability`,
    /// `bench`, `detlint`, `joshua-repro` (root `src/`), or
    /// `shim-<name>`.
    pub crate_key: String,
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
}

impl FileOrigin {
    /// Classify a workspace-relative path.
    pub fn classify(rel_path: &str) -> FileOrigin {
        let rel = rel_path.replace('\\', "/");
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_key = match parts.as_slice() {
            ["crates", name, ..] => (*name).to_string(),
            ["shims", name, ..] => format!("shim-{name}"),
            ["src", ..] => "joshua-repro".to_string(),
            _ => "joshua-repro".to_string(),
        };
        FileOrigin { crate_key, rel_path: rel }
    }

    fn exempt(&self, rule: &str) -> bool {
        EXEMPTIONS
            .iter()
            .any(|(c, r, _)| *c == self.crate_key && *r == rule)
    }
}

fn push(
    out: &mut Vec<Violation>,
    clean: &CleanSource,
    origin: &FileOrigin,
    rule: &'static str,
    line: usize,
    message: String,
) {
    if clean.suppressed(rule, line).is_none() {
        out.push(Violation { rule, path: origin.rel_path.clone(), line, message });
    }
}

/// Run every applicable rule over one preprocessed file.
pub fn scan(origin: &FileOrigin, clean: &CleanSource) -> Vec<Violation> {
    let mut out = Vec::new();
    let test_start = clean.test_module_start().unwrap_or(usize::MAX);

    let d001 = REPLICATED_CRATES.contains(&origin.crate_key.as_str())
        && !origin.exempt("D001");
    let d002 = !origin.exempt("D002");
    let d003 = !origin.exempt("D003");
    let d004 = REPLICATED_CRATES.contains(&origin.crate_key.as_str())
        && !origin.exempt("D004");
    let d005 = REPLICATED_CRATES.contains(&origin.crate_key.as_str())
        && !origin.exempt("D005");
    let p001 = HOT_PATH_FILES.contains(&origin.rel_path.as_str())
        && !origin.exempt("P001");

    // Brace-tracked struct/enum bodies for D004.
    let mut type_body_depth: Option<i64> = None;

    for (idx, line) in clean.code_lines.iter().enumerate() {
        let lineno = idx + 1;
        if lineno >= test_start {
            break; // trailing #[cfg(test)] module: out of scope
        }

        if d001 {
            for word in ["HashMap", "HashSet"] {
                if has_token(line, word) {
                    let alt = if word == "HashMap" { "BTreeMap" } else { "BTreeSet" };
                    push(
                        &mut out,
                        clean,
                        origin,
                        "D001",
                        lineno,
                        format!(
                            "`{word}` in a replicated-state crate: iteration order is \
                             per-process; use `{alt}` (or sort before iterating)"
                        ),
                    );
                }
            }
        }

        if d002 {
            for call in ["SystemTime::now", "Instant::now"] {
                if contains_call(line, call) {
                    push(
                        &mut out,
                        clean,
                        origin,
                        "D002",
                        lineno,
                        format!(
                            "`{call}` reads wall-clock: replicated code must take \
                             virtual `SimTime` from the simulation kernel"
                        ),
                    );
                }
            }
        }

        if d003 {
            for word in ["thread_rng", "from_entropy", "from_os_rng", "OsRng", "getrandom"] {
                if has_token(line, word) {
                    push(
                        &mut out,
                        clean,
                        origin,
                        "D003",
                        lineno,
                        format!(
                            "`{word}` draws ambient entropy: seed an `StdRng` from the \
                             sim/cluster config instead"
                        ),
                    );
                }
            }
            if contains_call(line, "rand::random") {
                push(
                    &mut out,
                    clean,
                    origin,
                    "D003",
                    lineno,
                    "`rand::random` uses the thread-local generator: seed an `StdRng` \
                     from the sim/cluster config instead"
                        .to_string(),
                );
            }
        }

        if d004 {
            let opens_type = (has_token(line, "struct") || has_token(line, "enum"))
                && !line.trim_start().starts_with("use ");
            if let Some(depth) = type_body_depth.as_mut() {
                *depth += brace_delta(line);
                if float_field(line) {
                    push(
                        &mut out,
                        clean,
                        origin,
                        "D004",
                        lineno,
                        "floating-point field in replicated-state type: rounding and \
                         accumulation order are not replica-stable; store integer \
                         nanoseconds/counts (availability crate is exempt)"
                            .to_string(),
                    );
                }
                if *depth <= 0 {
                    type_body_depth = None;
                }
            } else if opens_type {
                // Single-line definitions (tuple structs) are checked
                // immediately; block definitions are tracked by depth.
                if float_field(line) {
                    push(
                        &mut out,
                        clean,
                        origin,
                        "D004",
                        lineno,
                        "floating-point field in replicated-state type: rounding and \
                         accumulation order are not replica-stable; store integer \
                         nanoseconds/counts (availability crate is exempt)"
                            .to_string(),
                    );
                }
                let delta = brace_delta(line);
                if delta > 0 {
                    type_body_depth = Some(delta);
                }
            }
        }

        if d005 {
            let sorts = has_token(line, "sort_by") || has_token(line, "sort_unstable_by");
            if sorts && has_token(line, "partial_cmp") {
                push(
                    &mut out,
                    clean,
                    origin,
                    "D005",
                    lineno,
                    "sort with `partial_cmp` in a replicated-state crate: the \
                     comparator is not total (NaN), so tie order — and any \
                     unwrap — depends on the data; use `Ord::cmp` or `total_cmp`"
                        .to_string(),
                );
            }
            if let Some(ty) = narrowing_cast(line) {
                push(
                    &mut out,
                    clean,
                    origin,
                    "D005",
                    lineno,
                    format!(
                        "lossy `as {ty}` narrowing cast in a replicated-state \
                         crate: silently wraps on overflow; use `{ty}::try_from` \
                         with an explicit saturation/error policy"
                    ),
                );
            }
        }

        if p001 {
            for (pat, what) in [
                (".unwrap()", "unwrap"),
                (".expect(", "expect"),
                ("panic!", "panic!"),
                ("unreachable!", "unreachable!"),
                ("todo!", "todo!"),
                ("unimplemented!", "unimplemented!"),
            ] {
                let hit = if pat.ends_with('!') {
                    has_token(line, what.trim_end_matches('!'))
                        && line.contains(pat)
                } else {
                    line.contains(pat)
                };
                if hit {
                    push(
                        &mut out,
                        clean,
                        origin,
                        "P001",
                        lineno,
                        format!(
                            "`{what}` in the GCS delivery hot path: a replica must \
                             degrade (skip/buffer/rejoin), not die; use `let-else` \
                             with a graceful fallback (debug_assert! is fine)"
                        ),
                    );
                }
            }
        }
    }

    // SUPP: pragmas must justify themselves, and must actually match a
    // known rule code. Pragmas inside trailing test modules are out of
    // scope, like everything else there.
    for pragma in clean.pragmas.iter().filter(|p| p.line < test_start) {
        if pragma.reason.is_empty() {
            out.push(Violation {
                rule: "SUPP",
                path: origin.rel_path.clone(),
                line: pragma.line,
                message: format!(
                    "suppression of {} without justification: write \
                     `// detlint: allow({}): <why this is sound>`",
                    pragma.rules.join(", "),
                    pragma.rules.join(", "),
                ),
            });
        }
        for r in &pragma.rules {
            if !RULES.iter().any(|known| known.code == *r) {
                out.push(Violation {
                    rule: "SUPP",
                    path: origin.rel_path.clone(),
                    line: pragma.line,
                    message: format!("suppression names unknown rule `{r}`"),
                });
            }
        }
    }

    out
}

/// Match `path::segments` as a call-ish token sequence, tolerating no
/// internal whitespace (the formatter never inserts any).
fn contains_call(line: &str, call: &str) -> bool {
    let head = call.split("::").next().unwrap_or(call);
    let mut from = 0;
    while let Some(at) = token_position(&line[from..], head) {
        let abs = from + at;
        if line[abs..].starts_with(call) {
            // Reject longer-identifier tails, e.g. `Instant::nowhere`.
            let after = line[abs + call.len()..].chars().next();
            if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                return true;
            }
        }
        from = abs + head.len();
        if from >= line.len() {
            break;
        }
    }
    false
}

fn brace_delta(line: &str) -> i64 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Does a (cleaned) line inside a type body mention a float type token?
fn float_field(line: &str) -> bool {
    has_token(line, "f32") || has_token(line, "f64")
}

/// If the line contains a lossy `as <narrow-int>` cast, return the
/// target type. Widening and platform-width targets (`u64`, `usize`,
/// …) are out of scope: they do not silently change values in this
/// codebase's ranges.
fn narrowing_cast(line: &str) -> Option<&'static str> {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    let mut from = 0;
    while let Some(at) = token_position(&line[from..], "as") {
        let abs = from + at;
        let rest = line[abs + 2..].trim_start();
        for ty in NARROW {
            if let Some(tail) = rest.strip_prefix(ty) {
                if !tail.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    return Some(ty);
                }
            }
        }
        from = abs + 2;
        if from >= line.len() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::preprocess;

    fn scan_str(path: &str, src: &str) -> Vec<Violation> {
        let origin = FileOrigin::classify(path);
        scan(&origin, &preprocess(src))
    }

    #[test]
    fn classify_paths() {
        assert_eq!(FileOrigin::classify("crates/gcs/src/engine.rs").crate_key, "gcs");
        assert_eq!(FileOrigin::classify("shims/rand/src/lib.rs").crate_key, "shim-rand");
        assert_eq!(FileOrigin::classify("src/lib.rs").crate_key, "joshua-repro");
    }

    #[test]
    fn d001_scoped_to_replicated_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan_str("crates/gcs/src/x.rs", src).len(), 1);
        assert_eq!(scan_str("crates/pbs/src/x.rs", src).len(), 1);
        assert!(scan_str("crates/sim/src/x.rs", src).is_empty());
        assert!(scan_str("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d002_exempts_sim_and_bench() {
        let src = "let t = Instant::now();\n";
        assert_eq!(scan_str("crates/core/src/x.rs", src).len(), 1);
        assert!(scan_str("crates/sim/src/x.rs", src).is_empty());
        assert!(scan_str("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d004_only_fires_inside_type_bodies() {
        let body = "struct Replica {\n    score: f64,\n}\nfn f(x: f64) -> f64 { x }\n";
        let v = scan_str("crates/pbs/src/x.rs", body);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(scan_str("crates/availability/src/x.rs", body).is_empty());
    }

    #[test]
    fn p001_limited_to_hot_path_files() {
        let src = "let x = m.get(&k).unwrap();\n";
        assert_eq!(scan_str("crates/gcs/src/engine.rs", src).len(), 1);
        assert!(scan_str("crates/gcs/src/view.rs", src).is_empty());
    }

    #[test]
    fn suppression_with_reason_is_honoured() {
        let src = "use std::collections::HashMap; // detlint: allow(D001): lookup-only\n";
        assert!(scan_str("crates/gcs/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_flagged() {
        let src = "use std::collections::HashMap; // detlint: allow(D001)\n";
        let v = scan_str("crates/gcs/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "SUPP").count(), 1);
        // The D001 itself is still suppressed — the pragma applies, it
        // is just required to explain itself.
        assert!(v.iter().all(|v| v.rule != "D001"));
    }

    #[test]
    fn d005_partial_cmp_sorts_scoped_to_replicated_crates() {
        let src = "v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());\n";
        let v = scan_str("crates/gcs/src/x.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "D005").count(), 1, "{v:?}");
        let v = scan_str("crates/pbs/src/x.rs", "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n");
        assert_eq!(v.iter().filter(|v| v.rule == "D005").count(), 1, "{v:?}");
        assert!(scan_str("crates/availability/src/x.rs", src).is_empty());
        // Total comparators are fine.
        assert!(scan_str("crates/gcs/src/x.rs", "v.sort_unstable_by(|a, b| a.cmp(b));\n")
            .is_empty());
        assert!(scan_str("crates/gcs/src/x.rs", "v.sort_unstable_by(f64::total_cmp);\n")
            .is_empty());
    }

    #[test]
    fn d005_narrowing_casts_flagged_widening_allowed() {
        for bad in ["let x = n as u32;\n", "let x = n as i16;\n", "f(len as u8)\n"] {
            let v = scan_str("crates/core/src/x.rs", bad);
            assert_eq!(v.iter().filter(|v| v.rule == "D005").count(), 1, "{bad:?} {v:?}");
        }
        for ok in [
            "let x = n as u64;\n",
            "let x = n as usize;\n",
            "let x = n as i64;\n",
            "let assign = 1;\n", // `as` must be a token, not a substring
            "let x = basis;\n",
        ] {
            assert!(scan_str("crates/core/src/x.rs", ok).is_empty(), "{ok:?}");
        }
        // Out of scope outside the replicated crates.
        assert!(scan_str("crates/bench/src/x.rs", "let x = n as u32;\n").is_empty());
    }

    #[test]
    fn instant_nowhere_is_not_a_call() {
        assert!(!contains_call("let x = Instant::nowhere();", "Instant::now"));
        assert!(contains_call("let x = Instant::now();", "Instant::now"));
        assert!(contains_call("std::time::Instant::now()", "Instant::now"));
    }
}
