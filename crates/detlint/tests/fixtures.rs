//! Fixture-driven end-to-end tests: one small source fixture per rule
//! class, plus suppression behaviour and a clean file, all driven
//! through the public `check_source` API (the same path the CLI and the
//! root-crate gate use).

use jrs_detlint::check_source;

/// D001: hash collections in a replicated-state crate.
#[test]
fn d001_hash_collections_flagged() {
    let src = "\
use std::collections::{HashMap, HashSet};

struct Tracker {
    seen: HashMap<u64, u64>,
    dead: HashSet<u64>,
}
";
    let v = check_source("crates/gcs/src/fixture.rs", src);
    let d001: Vec<_> = v.iter().filter(|v| v.rule == "D001").collect();
    // Two tokens on the use line, one on each field line.
    assert_eq!(d001.len(), 4, "{v:?}");
    assert!(d001.iter().any(|v| v.line == 1));
    assert!(d001.iter().any(|v| v.line == 4 && v.message.contains("BTreeMap")));
    assert!(d001.iter().any(|v| v.line == 5 && v.message.contains("BTreeSet")));
}

/// D001 does not fire outside the replicated-state crates.
#[test]
fn d001_scoped_out_of_analysis_crates() {
    let src = "use std::collections::HashMap;\nfn f() -> HashMap<u8, u8> { HashMap::new() }\n";
    assert!(check_source("crates/availability/src/fixture.rs", src).is_empty());
    assert!(check_source("crates/detlint/src/fixture.rs", src).is_empty());
}

/// The durable-state crate feeds recovered bytes straight back into the
/// replicated state machine, so the strict replicated-crate rules cover
/// it too.
#[test]
fn store_crate_is_replicated_scope() {
    let src = "use std::collections::HashMap;\nstruct Index {\n    offsets: HashMap<u64, u64>,\n}\n";
    let v = check_source("crates/store/src/fixture.rs", src);
    assert!(v.iter().any(|v| v.rule == "D001"), "{v:?}");
}

/// D002: wall-clock reads outside the simulator.
#[test]
fn d002_wall_clock_flagged() {
    let src = "\
use std::time::{Instant, SystemTime};

fn stamp() -> u64 {
    let _t0 = Instant::now();
    SystemTime::now().elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0)
}
";
    let v = check_source("crates/core/src/fixture.rs", src);
    let d002: Vec<_> = v.iter().filter(|v| v.rule == "D002").collect();
    assert_eq!(d002.len(), 2, "{v:?}");
    assert!(d002.iter().any(|v| v.line == 4));
    assert!(d002.iter().any(|v| v.line == 5));
    // The simulator itself owns virtual time and is exempt.
    assert!(check_source("crates/sim/src/fixture.rs", src).is_empty());
}

/// D003: ambient entropy, flagged in every non-exempt crate.
#[test]
fn d003_ambient_entropy_flagged() {
    let src = "\
fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rand::random::<u64>()
}
";
    let v = check_source("crates/sim/src/fixture.rs", src);
    let d003: Vec<_> = v.iter().filter(|v| v.rule == "D003").collect();
    assert_eq!(d003.len(), 2, "{v:?}");
    // The vendored rand shim is the seeded implementation itself.
    assert!(check_source("shims/rand/src/fixture.rs", src).is_empty());
}

/// D004: float fields in replicated-state types; local float math is fine.
#[test]
fn d004_float_fields_flagged() {
    let src = "\
pub struct JobRecord {
    pub id: u64,
    pub priority: f64,
}

pub fn utilisation(busy: u64, total: u64) -> f64 {
    busy as f64 / total as f64
}
";
    let v = check_source("crates/pbs/src/fixture.rs", src);
    let d004: Vec<_> = v.iter().filter(|v| v.rule == "D004").collect();
    assert_eq!(d004.len(), 1, "{v:?}");
    assert_eq!(d004[0].line, 3);
    // Availability math is analysis output, not replicated state.
    assert!(check_source("crates/availability/src/fixture.rs", src).is_empty());
}

/// P001: panic paths in the delivery hot path only.
#[test]
fn p001_panic_paths_flagged() {
    let src = "\
fn deliver(log: &std::collections::BTreeMap<u64, u8>, cursor: u64) -> u8 {
    let m = log.get(&cursor).expect(\"must be present\");
    if *m == 0 { panic!(\"zero\"); }
    log.get(&(cursor + 1)).copied().unwrap()
}
";
    let v = check_source("crates/gcs/src/engine.rs", src);
    let p001: Vec<_> = v.iter().filter(|v| v.rule == "P001").collect();
    assert_eq!(p001.len(), 3, "{v:?}");
    // Same code outside the hot path is not P001's business.
    let elsewhere = check_source("crates/gcs/src/view.rs", src);
    assert!(elsewhere.iter().all(|v| v.rule != "P001"));
}

/// Justified pragmas suppress; on the same line or the line above.
#[test]
fn pragma_suppression_honoured() {
    let src = "\
// detlint: allow(D001): bounded lookup table, never iterated
use std::collections::HashMap;

// detlint: allow(D001): returns the allowed lookup table type
fn cache() -> HashMap<u8, u8> {
    HashMap::new() // detlint: allow(D001): constructor of the allowed table
}
";
    assert!(check_source("crates/gcs/src/fixture.rs", src).is_empty());
}

/// Bare pragmas still suppress, but are themselves reported (SUPP), as
/// are pragmas naming rule codes that do not exist.
#[test]
fn bad_pragmas_reported() {
    let src = "\
use std::collections::HashMap; // detlint: allow(D001)
// detlint: allow(D999): not a real rule
fn f() {}
";
    let v = check_source("crates/gcs/src/fixture.rs", src);
    assert!(v.iter().all(|v| v.rule == "SUPP"), "{v:?}");
    assert_eq!(v.len(), 2, "{v:?}");
}

/// Rule patterns inside strings, comments, and trailing test modules
/// never fire; a well-formed replicated-state file is clean.
#[test]
fn clean_file_stays_clean() {
    let src = "\
//! Talks about HashMap and Instant::now in prose only.

use std::collections::BTreeMap;

/// `panic!` in docs is fine too.
pub struct State {
    pub applied: BTreeMap<u64, u64>,
    pub count: u64,
}

pub fn describe() -> &'static str {
    \"uses thread_rng and SystemTime::now\"
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let m: std::collections::HashMap<u8, u8> = Default::default();
        assert!(m.get(&1).is_none());
    }
}
";
    let v = check_source("crates/gcs/src/fixture.rs", src);
    assert!(v.is_empty(), "{v:?}");
}

/// Diagnostics render as `path:line: RULE: message` (what CI greps).
#[test]
fn diagnostic_format() {
    let v = check_source("crates/gcs/src/fixture.rs", "use std::collections::HashMap;\n");
    assert_eq!(v.len(), 1);
    let s = v[0].to_string();
    assert!(s.starts_with("crates/gcs/src/fixture.rs:1: D001: "), "{s}");
}

/// The `--json` report CI archives: valid shape, escaped strings.
#[test]
fn json_report_shape() {
    let report = jrs_detlint::Report {
        files_scanned: 1,
        violations: check_source("crates/gcs/src/fixture.rs", "use std::collections::HashMap;\n"),
    };
    let j = report.to_json();
    assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
    assert!(j.contains("\"files_scanned\":1"), "{j}");
    assert!(j.contains("\"rule\":\"D001\""), "{j}");
    assert!(!j.contains('\n'), "single-line JSON: {j}");
}
