//! The protocol-conformance rules (W001–W004) plus the suppression
//! audit (WSUP), and the configuration registry naming the workspace's
//! foundation codecs, audited opaque codecs, protocol-enum matrix, and
//! checked length helpers.
//!
//! * **W001** — codec symmetry: for every `impl Codec`, the ordered
//!   field writes in `encode` must mirror the field reads in `decode`
//!   (same names, same order, compatible primitive types), and enum
//!   codecs must write/read the discriminant before any field and
//!   reject unknown tags. Violations carry a field-level diff witness.
//! * **W002** — tag stability: enum discriminants must be unique and
//!   dense, and every codec's schema must match the committed
//!   `proto.lock` manifest — schema drift vs. on-disk WAL/snapshot
//!   data is a hard error, not a runtime quarantine.
//! * **W003** — send/handle matrix: every protocol-enum variant
//!   constructed (sent) somewhere must be matched by a handler arm in
//!   its receiving role's crates; never-constructed variants are dead
//!   protocol surface.
//! * **W004** — decode-side bounds: a decoded length may size an
//!   allocation only after passing a checked limit helper, and the
//!   helpers themselves must enforce an explicit maximum.
//! * **WSUP** — every `// proto: allow(..)` pragma must name a known
//!   rule, carry a reason, and suppress something; stale opaque-codec
//!   allowlist entries are flagged too.

use crate::lock::Schema;
use crate::model::{CodecImpl, DecField, DecSide, EncOp, EncSide, ProtoModel, UseKind};
use crate::report::Finding;
use jrs_detlint::scanner::Pragma;
use std::collections::{BTreeMap, BTreeSet};

/// Rule codes jrs-proto can emit (and that pragmas may name).
pub const RULE_CODES: &[&str] = &["W001", "W002", "W003", "W004", "WSUP"];

/// One protocol enum in the send/handle matrix.
#[derive(Clone, Debug)]
pub struct MatrixEnum {
    /// Enum name.
    pub name: String,
    /// Crates acting as the receiving role: every constructed variant
    /// must be matched by a handler arm in one of these.
    pub handler_crates: Vec<String>,
    /// Why this enum is registered (shown by `rules`).
    pub why: String,
}

/// Analysis configuration: the registry the rules run against.
/// [`ProtoConfig::workspace`] is the audited production registry;
/// fixtures construct their own.
#[derive(Clone, Debug)]
pub struct ProtoConfig {
    /// Files whose `impl Codec` blocks form the foundation layer
    /// (generic containers, primitives). They are exempt from W001's
    /// structural mirror — their symmetry is pinned by their own unit
    /// tests and the round-trip property tests — and are not pinned in
    /// `proto.lock` (no per-type field list).
    pub foundation_paths: Vec<String>,
    /// Codec types whose encode/decode are legitimately not
    /// structurally mirrorable, with audited reasons. Entries must be
    /// load-bearing: a stale entry is a WSUP finding.
    pub opaque_allow: Vec<(String, String)>,
    /// The send/handle matrix (W003).
    pub matrix: Vec<MatrixEnum>,
    /// Function names never counted as construct/handle sites (wire
    /// size estimators and similar metadata matches).
    pub ignore_fns: Vec<String>,
    /// Checked length-limit helpers (W004): a decoded length must pass
    /// through one of these before sizing an allocation.
    pub len_helpers: Vec<String>,
    /// Tokens marking an explicit maximum bound inside a helper.
    pub limit_tokens: Vec<String>,
    /// Qualified raw-sink primitives (`Type::method`) exempt from W004
    /// (the bounds-checked cursor primitive itself).
    pub sink_primitives: Vec<String>,
}

impl ProtoConfig {
    /// The audited registry for this workspace.
    pub fn workspace() -> Self {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let m = |name: &str, crates: &[&str], why: &str| MatrixEnum {
            name: name.into(),
            handler_crates: s(crates),
            why: why.into(),
        };
        ProtoConfig {
            foundation_paths: s(&["crates/store/src/codec.rs"]),
            opaque_allow: vec![(
                "NodePool".into(),
                "encode flattens the pool to its ordered node list and decode \
                 rebuilds the index; symmetry is pinned by round-trip tests"
                    .into(),
            )],
            // CmdReply is deliberately unregistered: its receiving role
            // is the submitting client, which lives in the test/driver
            // harness rather than a shipping crate, so a send/handle
            // obligation inside `crates/*` would be vacuous (its codec
            // symmetry and tags are still checked by W001/W002).
            matrix: vec![
                m(
                    "Wire",
                    &["gcs"],
                    "the sequenced transport frame between group members",
                ),
                m(
                    "GcsMsg",
                    &["gcs"],
                    "ring coordination: join/heartbeat/flush/install",
                ),
                m(
                    "EngineMsg",
                    &["gcs"],
                    "total-order engine traffic carried inside the ring",
                ),
                m(
                    "Payload",
                    &["core"],
                    "the replicated command stream every head applies",
                ),
                m(
                    "ServerCmd",
                    &["pbs"],
                    "intercepted PBS user commands applied by the server core",
                ),
                m(
                    "MomInbound",
                    &["pbs"],
                    "head-to-mom dispatch: launches, verdicts, cancels",
                ),
                m(
                    "MomReport",
                    &["core", "pbs"],
                    "mom-to-head obituaries lifted into the total order",
                ),
            ],
            ignore_fns: s(&["wire_size"]),
            len_helpers: s(&["decode_len"]),
            limit_tokens: s(&["MAX_"]),
            sink_primitives: s(&["Reader::take"]),
        }
    }

    /// Is this file part of the audited foundation layer?
    pub fn is_foundation(&self, path: &str) -> bool {
        self.foundation_paths.iter().any(|p| p == path)
    }
}

/// Run every rule; returns findings sorted by path/line/rule.
pub fn run(cfg: &ProtoConfig, model: &ProtoModel, lock: Option<&str>) -> Vec<Finding> {
    let mut cands: Vec<Finding> = Vec::new();
    check_w001(cfg, model, &mut cands);
    check_w002(cfg, model, lock, &mut cands);
    check_w003(cfg, model, &mut cands);
    check_w004(cfg, model, &mut cands);

    // Central suppression: a finding is waived by a
    // `// proto: allow(RULE): reason` pragma on its line or the line
    // above; used pragmas are tracked so WSUP can flag dead ones.
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    for f in cands {
        match pragma_for(model, &f.path, f.rule, f.line) {
            Some(p) => {
                used.insert((f.path.clone(), p.line));
            }
            None => findings.push(f),
        }
    }

    check_wsup(cfg, model, &used, &mut findings);

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

/// The proto pragma (if any) waiving `rule` at `path:line`.
fn pragma_for<'m>(
    model: &'m ProtoModel,
    path: &str,
    rule: &str,
    line: usize,
) -> Option<&'m Pragma> {
    let scan = model.scans.iter().find(|s| s.path == path)?;
    scan.pragmas.iter().find(|p| {
        (p.line == line || p.line + 1 == line) && p.rules.iter().any(|r| r == rule)
    })
}

fn finding(
    rule: &'static str,
    path: &str,
    line: usize,
    message: String,
    witness: Vec<String>,
) -> Finding {
    Finding { rule, path: path.to_string(), line, message, witness }
}

// ----------------------------------------------------------------------
// W001 — codec symmetry
// ----------------------------------------------------------------------

/// Codecs subject to structural checking.
fn checked_codecs<'m>(
    cfg: &'m ProtoConfig,
    model: &'m ProtoModel,
) -> impl Iterator<Item = &'m CodecImpl> {
    model.codecs.iter().filter(move |c| {
        !cfg.is_foundation(&c.path)
            && !c.type_name.contains('$')
            && !cfg.opaque_allow.iter().any(|(t, _)| t == &c.type_name)
    })
}

fn check_w001(cfg: &ProtoConfig, model: &ProtoModel, out: &mut Vec<Finding>) {
    for c in checked_codecs(cfg, model) {
        match (&c.enc, &c.dec) {
            (EncSide::Opaque(why), _) => out.push(finding(
                "W001",
                &c.path,
                c.enc_line,
                format!(
                    "`{}` encode is not structurally checkable ({why}) — restructure \
                     it into plain field writes or add an audited opaque-allowlist \
                     entry",
                    c.type_name
                ),
                vec![],
            )),
            (_, DecSide::Opaque(why)) => out.push(finding(
                "W001",
                &c.path,
                c.dec_line,
                format!(
                    "`{}` decode is not structurally checkable ({why}) — restructure \
                     it into a plain constructor or add an audited opaque-allowlist \
                     entry",
                    c.type_name
                ),
                vec![],
            )),
            (EncSide::Struct(ops), DecSide::Struct(fields)) => {
                check_struct_codec(model, c, ops, fields, out);
            }
            (EncSide::Struct(ops), DecSide::Tuple(arity)) => {
                if let Some(op) = ops.iter().find_map(opaque_op) {
                    out.push(opaque_op_finding(c, op));
                } else if ops.len() != *arity {
                    out.push(finding(
                        "W001",
                        &c.path,
                        c.dec_line,
                        format!(
                            "`{}` encodes {} field(s) but decodes {} positionally",
                            c.type_name,
                            ops.len(),
                            arity
                        ),
                        seq_witness(&enc_names(ops), &vec!["_".to_string(); *arity]),
                    ));
                }
            }
            (EncSide::Enum { width, variants }, DecSide::Enum { width: dw, arms, rejects_unknown }) => {
                check_enum_codec(
                    model,
                    c,
                    *width,
                    variants,
                    *dw,
                    arms,
                    *rejects_unknown,
                    out,
                );
            }
            (EncSide::Enum { .. }, _) => out.push(finding(
                "W001",
                &c.path,
                c.dec_line,
                format!(
                    "`{}` encode matches over enum variants but decode does not read \
                     a discriminant",
                    c.type_name
                ),
                vec![],
            )),
            (EncSide::Struct(_), DecSide::Enum { .. }) => out.push(finding(
                "W001",
                &c.path,
                c.enc_line,
                format!(
                    "`{}` decode reads a discriminant but encode writes plain fields",
                    c.type_name
                ),
                vec![],
            )),
        }
    }
}

fn opaque_op(op: &EncOp) -> Option<&str> {
    match op {
        EncOp::Opaque(t) => Some(t),
        _ => None,
    }
}

fn opaque_op_finding(c: &CodecImpl, op: &str) -> Finding {
    finding(
        "W001",
        &c.path,
        c.enc_line,
        format!(
            "`{}` encode contains an unclassifiable write `{op}` — the field \
             sequence cannot be mirrored against decode",
            c.type_name
        ),
        vec![],
    )
}

fn enc_names(ops: &[EncOp]) -> Vec<String> {
    ops.iter()
        .map(|op| match op {
            EncOp::Tag { value, width } => format!("<tag {value}u{width}>"),
            EncOp::Val(n) => n.clone(),
            EncOp::Opaque(t) => format!("<? {t}>"),
        })
        .collect()
}

fn dec_names(fields: &[DecField]) -> Vec<String> {
    fields
        .iter()
        .enumerate()
        .map(|(i, f)| f.name.clone().unwrap_or_else(|| format!("#{i}")))
        .collect()
}

/// The two ordered sequences plus the first divergence, for the
/// witness block.
fn seq_witness(enc: &[String], dec: &[String]) -> Vec<String> {
    let mut w = vec![
        format!("encode writes : [{}]", enc.join(", ")),
        format!("decode reads  : [{}]", dec.join(", ")),
    ];
    for i in 0..enc.len().max(dec.len()) {
        let (e, d) = (enc.get(i), dec.get(i));
        if e != d {
            let show = |x: Option<&String>| {
                x.map_or("<nothing>".to_string(), |v| format!("`{v}`"))
            };
            w.push(format!(
                "first divergence at position {i}: encode writes {}, decode reads {}",
                show(e),
                show(d)
            ));
            break;
        }
    }
    w
}

fn check_struct_codec(
    model: &ProtoModel,
    c: &CodecImpl,
    ops: &[EncOp],
    fields: &[DecField],
    out: &mut Vec<Finding>,
) {
    if let Some(op) = ops.iter().find_map(opaque_op) {
        out.push(opaque_op_finding(c, op));
        return;
    }
    let e = enc_names(ops);
    let d = dec_names(fields);
    if e != d {
        out.push(finding(
            "W001",
            &c.path,
            c.dec_line,
            format!(
                "`{}` encode/decode field sequences diverge — persisted records \
                 decode positionally, so every replica reading an old record \
                 mis-assigns fields",
                c.type_name
            ),
            seq_witness(&e, &d),
        ));
        return;
    }
    // Field-type cross-check: an explicit primitive decode must match
    // the declared field type (a u32/u64 width swap shifts every later
    // field).
    for f in fields {
        let (Some(name), Some(ty)) = (&f.name, &f.ty) else { continue };
        if let Some(declared) = model.flow.field_type(&c.type_name, name) {
            if declared != ty {
                out.push(finding(
                    "W001",
                    &c.path,
                    c.dec_line,
                    format!(
                        "`{}` decodes field `{name}` as `{ty}` but the struct \
                         declares `{declared}` — width/type mismatch shifts every \
                         subsequent field",
                        c.type_name
                    ),
                    vec![],
                ));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_enum_codec(
    model: &ProtoModel,
    c: &CodecImpl,
    enc_width: Option<u8>,
    variants: &[crate::model::VariantEnc],
    dec_width: u8,
    arms: &[crate::model::VariantDec],
    rejects_unknown: bool,
    out: &mut Vec<Finding>,
) {
    if let Some(w) = enc_width {
        if w != dec_width {
            out.push(finding(
                "W001",
                &c.path,
                c.dec_line,
                format!(
                    "`{}` writes a u{w} discriminant but reads u{dec_width}",
                    c.type_name
                ),
                vec![],
            ));
        }
    }
    if !rejects_unknown {
        out.push(finding(
            "W001",
            &c.path,
            c.dec_line,
            format!(
                "`{}` decode has no `_ => Err(..)` arm — an unknown discriminant \
                 must be a decode error, never undefined behavior or a silent \
                 default",
                c.type_name
            ),
            vec![],
        ));
    }

    // The shipping enum definition is the source of truth for the
    // variant set; fall back to the union of both codec sides.
    let declared: Vec<String> = match model.flow.enum_def(&c.type_name) {
        Some(def) => def.variants.clone(),
        None => {
            let mut names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
            for a in arms {
                if !names.contains(&a.name) {
                    names.push(a.name.clone());
                }
            }
            names
        }
    };

    for name in &declared {
        let ve = variants.iter().find(|v| &v.name == name);
        let va = arms.iter().find(|a| &a.name == name);
        match (ve, va) {
            (None, _) => out.push(finding(
                "W001",
                &c.path,
                c.enc_line,
                format!("`{}::{name}` has no encode arm", c.type_name),
                vec![],
            )),
            (_, None) => out.push(finding(
                "W001",
                &c.path,
                c.dec_line,
                format!("`{}::{name}` has no decode arm", c.type_name),
                vec![],
            )),
            (Some(ve), Some(va)) => {
                check_variant_pair(c, ve, va, dec_width, out);
            }
        }
    }
    for v in variants {
        if !declared.contains(&v.name) {
            out.push(finding(
                "W001",
                &c.path,
                v.line,
                format!(
                    "encode arm for `{}::{}` matches no declared variant (stale \
                     codec arm)",
                    c.type_name, v.name
                ),
                vec![],
            ));
        }
    }
    for a in arms {
        if !declared.contains(&a.name) {
            out.push(finding(
                "W001",
                &c.path,
                a.line,
                format!(
                    "decode arm for `{}::{}` matches no declared variant (stale \
                     codec arm)",
                    c.type_name, a.name
                ),
                vec![],
            ));
        }
    }
}

fn check_variant_pair(
    c: &CodecImpl,
    ve: &crate::model::VariantEnc,
    va: &crate::model::VariantDec,
    dec_width: u8,
    out: &mut Vec<Finding>,
) {
    let qual = format!("{}::{}", c.type_name, ve.name);
    let Some(tag) = ve.tag else {
        out.push(finding(
            "W001",
            &c.path,
            ve.line,
            format!(
                "`{qual}` writes fields before (or without) its discriminant — the \
                 tag must be the first bytes of every enum encoding"
            ),
            seq_witness(&enc_names(&ve.ops), &dec_names(&va.fields)),
        ));
        return;
    };
    if tag != va.tag {
        out.push(finding(
            "W001",
            &c.path,
            va.line,
            format!("`{qual}` encodes tag {tag} but decodes tag {}", va.tag),
            vec![],
        ));
    }
    if let Some(w) = ve.tag_width {
        if w != dec_width {
            out.push(finding(
                "W001",
                &c.path,
                va.line,
                format!("`{qual}` writes a u{w} tag but the decode match reads u{dec_width}"),
                vec![],
            ));
        }
    }
    if let Some(op) = ve.ops.iter().find_map(opaque_op) {
        out.push(opaque_op_finding(c, op));
        return;
    }
    let e = enc_names(&ve.ops);
    if let Some(arity) = va.tuple_arity {
        if ve.ops.len() != arity {
            out.push(finding(
                "W001",
                &c.path,
                va.line,
                format!(
                    "`{qual}` encodes {} value(s) but decodes {arity} positionally",
                    ve.ops.len()
                ),
                seq_witness(&e, &vec!["_".to_string(); arity]),
            ));
        }
        return;
    }
    let d = dec_names(&va.fields);
    if e != d {
        out.push(finding(
            "W001",
            &c.path,
            va.line,
            format!(
                "`{qual}` encode/decode field sequences diverge — both sides must \
                 read and write the same fields in the same order"
            ),
            seq_witness(&e, &d),
        ));
    }
}

// ----------------------------------------------------------------------
// W002 — tag stability
// ----------------------------------------------------------------------

fn check_w002(
    cfg: &ProtoConfig,
    model: &ProtoModel,
    lock: Option<&str>,
    out: &mut Vec<Finding>,
) {
    // Uniqueness and density, straight from the source.
    for c in checked_codecs(cfg, model) {
        let EncSide::Enum { variants, .. } = &c.enc else { continue };
        let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for v in variants {
            if let Some(t) = v.tag {
                by_tag.entry(t).or_default().push(&v.name);
            }
        }
        for (t, names) in &by_tag {
            if names.len() > 1 {
                out.push(finding(
                    "W002",
                    &c.path,
                    c.enc_line,
                    format!(
                        "`{}` reuses discriminant {t} for variants {} — decode \
                         cannot tell them apart",
                        c.type_name,
                        names.join(", ")
                    ),
                    vec![],
                ));
            }
        }
        let tags: Vec<u64> = by_tag.keys().copied().collect();
        let dense: Vec<u64> = (0..tags.len() as u64).collect();
        if !tags.is_empty() && tags != dense {
            out.push(finding(
                "W002",
                &c.path,
                c.enc_line,
                format!(
                    "`{}` discriminants are not dense: [{}] (expected 0..={}) — \
                     holes invite accidental reuse by a future variant",
                    c.type_name,
                    tags.iter().map(u64::to_string).collect::<Vec<_>>().join(", "),
                    tags.len().saturating_sub(1)
                ),
                vec![],
            ));
        }
    }

    // Drift against the committed manifest.
    let current = Schema::from_model(cfg, model);
    let pinned = match lock {
        None => {
            if !current.enums.is_empty() || !current.structs.is_empty() {
                out.push(finding(
                    "W002",
                    "proto.lock",
                    1,
                    "no proto.lock committed — pin the wire schema with \
                     `cargo run -p jrs-proto -- lock` and commit the manifest"
                        .to_string(),
                    vec![],
                ));
            }
            return;
        }
        Some(text) => match Schema::parse(text) {
            Ok(s) => s,
            Err(e) => {
                out.push(finding(
                    "W002",
                    "proto.lock",
                    1,
                    format!("proto.lock is unparseable: {e}"),
                    vec![],
                ));
                return;
            }
        },
    };
    for (type_name, message) in Schema::diff(&pinned, &current) {
        let (path, line) = model
            .codec(&type_name)
            .map(|c| (c.path.clone(), c.enc_line))
            .unwrap_or_else(|| ("proto.lock".to_string(), 1));
        out.push(finding("W002", &path, line, message, vec![]));
    }
}

// ----------------------------------------------------------------------
// W003 — send/handle matrix
// ----------------------------------------------------------------------

fn check_w003(cfg: &ProtoConfig, model: &ProtoModel, out: &mut Vec<Finding>) {
    for m in &cfg.matrix {
        let Some(def) = model.flow.enum_def(&m.name) else { continue };
        for variant in &def.variants {
            let uses: Vec<_> = model
                .uses
                .iter()
                .filter(|u| u.enum_name == m.name && &u.variant == variant)
                .collect();
            let constructs: Vec<_> =
                uses.iter().filter(|u| u.kind == UseKind::Construct).collect();
            let handled_in_role = uses.iter().any(|u| {
                u.kind == UseKind::Handle
                    && m.handler_crates.iter().any(|c| c == &u.crate_key)
            });
            if constructs.is_empty() {
                if !m.handler_crates.is_empty() {
                    out.push(finding(
                        "W003",
                        &def.path,
                        def.line,
                        format!(
                            "`{}::{variant}` is never constructed outside its codec \
                             and tests — dead protocol surface (delete it, or the \
                             send site is hidden from the scanner)",
                            m.name
                        ),
                        vec![],
                    ));
                }
                continue;
            }
            if !handled_in_role {
                let mut witness: Vec<String> = constructs
                    .iter()
                    .take(5)
                    .map(|u| format!("constructed in {} ({}:{})", u.in_fn, u.path, u.line))
                    .collect();
                let other_crates: BTreeSet<&str> = uses
                    .iter()
                    .filter(|u| u.kind == UseKind::Handle)
                    .map(|u| u.crate_key.as_str())
                    .collect();
                if !other_crates.is_empty() {
                    witness.push(format!(
                        "handled only outside the receiving role: {}",
                        other_crates.into_iter().collect::<Vec<_>>().join(", ")
                    ));
                }
                let first = constructs[0];
                out.push(finding(
                    "W003",
                    &first.path,
                    first.line,
                    format!(
                        "`{}::{variant}` is constructed (sent) but no handler arm in \
                         the receiving role [{}] matches it — the message would be \
                         silently unhandled",
                        m.name,
                        m.handler_crates.join(", ")
                    ),
                    witness,
                ));
            }
        }
    }
}

// ----------------------------------------------------------------------
// W004 — decode-side bounds
// ----------------------------------------------------------------------

/// Lines that introduce an unchecked decoded length.
const LEN_SOURCES: &[&str] = &["::decode(", "le_u32_at(", "le_u64_at("];

fn check_w004(cfg: &ProtoConfig, model: &ProtoModel, out: &mut Vec<Finding>) {
    for (facts, scan) in model.flow.files.iter().zip(&model.scans) {
        for f in &facts.fns {
            if f.is_test {
                continue;
            }
            if cfg.sink_primitives.iter().any(|s| s == &f.qualified) {
                continue;
            }
            let body: Vec<(usize, &str)> = (f.line..=f.end_line)
                .filter_map(|n| scan.lines.get(n - 1).map(|l| (n, l.as_str())))
                .collect();
            if cfg.len_helpers.iter().any(|h| h == &f.name) {
                check_len_helper(cfg, &scan.path, f, &body, out);
                continue;
            }
            check_fn_sinks(cfg, &scan.path, &body, out);
        }
    }
}

/// A registered limit helper must enforce an explicit maximum and a
/// remaining-bytes bound itself — it is the single place corrupt
/// lengths are supposed to die.
fn check_len_helper(
    cfg: &ProtoConfig,
    path: &str,
    f: &jrs_flow::model::FnDef,
    body: &[(usize, &str)],
    out: &mut Vec<Finding>,
) {
    let text: String = body.iter().map(|(_, l)| *l).collect::<Vec<_>>().join("\n");
    let has_limit = cfg.limit_tokens.iter().any(|t| text.contains(t.as_str()));
    let has_remaining = text.contains("remaining()");
    if !has_limit || !has_remaining {
        out.push(finding(
            "W004",
            path,
            f.line,
            format!(
                "length helper `{}` must enforce an explicit maximum (a `{}` \
                 const) and a remaining-bytes bound before returning — it is the \
                 checked gate every decoded length flows through",
                f.name,
                cfg.limit_tokens.join("/"),
            ),
            vec![],
        ));
    }
}

fn check_fn_sinks(
    cfg: &ProtoConfig,
    path: &str,
    body: &[(usize, &str)],
    out: &mut Vec<Finding>,
) {
    // Single-assignment taint: names bound (directly or transitively)
    // to a decoded length that never passed a checked helper.
    let mut unchecked: BTreeSet<String> = BTreeSet::new();
    for (_, l) in body {
        let Some((name, rhs)) = parse_let(l) else { continue };
        let via_helper = cfg.len_helpers.iter().any(|h| rhs.contains(&format!("{h}(")));
        if via_helper {
            unchecked.remove(&name);
            continue;
        }
        let from_source = LEN_SOURCES.iter().any(|s| rhs.contains(s));
        let from_taint = unchecked.iter().any(|v| contains_token(rhs, v));
        if from_source || from_taint {
            unchecked.insert(name);
        } else {
            unchecked.remove(&name);
        }
    }

    for (n, l) in body {
        for (pat, render) in
            [("with_capacity(", "with_capacity"), (".take(", "take")]
        {
            let mut start = 0;
            while let Some(rel) = l[start..].find(pat) {
                let pos = start + rel;
                let arg_start = pos + pat.len();
                start = arg_start;
                let Some(arg) = paren_arg(&l[arg_start - 1..]) else { continue };
                check_sink_arg(cfg, path, *n, render, &arg, &unchecked, out);
            }
        }
        if let Some(pos) = l.find("vec![") {
            if let Some(body_txt) = bracket_arg(&l[pos + 4..]) {
                if let Some((_, len)) = body_txt.rsplit_once(';') {
                    check_sink_arg(cfg, path, *n, "vec![..; len]", len.trim(), &unchecked, out);
                }
            }
        }
    }
}

/// `let [mut] name[: T] = rhs;` -> `(name, rhs)`.
fn parse_let(l: &str) -> Option<(String, &str)> {
    let t = l.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let eq = rest.find('=')?;
    let name_part = &rest[..eq];
    let name = name_part.split(':').next()?.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some((name.to_string(), &rest[eq + 1..]))
}

fn contains_token(hay: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(rel) = hay[start..].find(token) {
        let pos = start + rel;
        start = pos + token.len();
        let before_ok = pos == 0
            || !hay[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !hay[pos + token.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Contents of the `( .. )` region `s` starts with.
fn paren_arg(s: &str) -> Option<String> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(s[1..i].trim().to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Contents of the `[ .. ]` region `s` starts with.
fn bracket_arg(s: &str) -> Option<String> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(s[1..i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn check_sink_arg(
    cfg: &ProtoConfig,
    path: &str,
    line: usize,
    sink: &str,
    arg: &str,
    unchecked: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let via_helper = cfg.len_helpers.iter().any(|h| arg.contains(&format!("{h}(")));
    if via_helper {
        return;
    }
    let inline_source = LEN_SOURCES.iter().any(|s| arg.contains(s));
    let tainted_var =
        arg.chars().all(|c| c.is_alphanumeric() || c == '_') && unchecked.contains(arg);
    if inline_source || tainted_var {
        out.push(finding(
            "W004",
            path,
            line,
            format!(
                "allocation sink `{sink}` is sized by decoded length `{arg}` that \
                 never passed a checked limit helper ({}) — a corrupt record \
                 controls the allocation size",
                cfg.len_helpers.join(", ")
            ),
            vec![],
        ));
    }
}

// ----------------------------------------------------------------------
// WSUP — suppression and registry staleness audit
// ----------------------------------------------------------------------

fn check_wsup(
    cfg: &ProtoConfig,
    model: &ProtoModel,
    used: &BTreeSet<(String, usize)>,
    out: &mut Vec<Finding>,
) {
    for scan in &model.scans {
        for p in &scan.pragmas {
            let unknown: Vec<&str> = p
                .rules
                .iter()
                .map(String::as_str)
                .filter(|r| !RULE_CODES.contains(r))
                .collect();
            if !unknown.is_empty() {
                out.push(finding(
                    "WSUP",
                    &scan.path,
                    p.line,
                    format!(
                        "proto suppression names unknown rule{} {}",
                        if unknown.len() > 1 { "s" } else { "" },
                        unknown.join(", ")
                    ),
                    vec![],
                ));
                continue;
            }
            if p.reason.is_empty() {
                out.push(finding(
                    "WSUP",
                    &scan.path,
                    p.line,
                    "proto suppression without a reason — write \
                     `// proto: allow(RULE): <why this is safe>`"
                        .to_string(),
                    vec![],
                ));
                continue;
            }
            if !used.contains(&(scan.path.clone(), p.line)) {
                out.push(finding(
                    "WSUP",
                    &scan.path,
                    p.line,
                    "proto suppression suppresses nothing — remove it".to_string(),
                    vec![],
                ));
            }
        }
    }
    // Opaque-allowlist entries must be load-bearing.
    for (type_name, _) in &cfg.opaque_allow {
        match model.codec(type_name) {
            None => out.push(finding(
                "WSUP",
                "crates/proto/src/rules.rs",
                1,
                format!(
                    "opaque-codec allowlist entry `{type_name}` names no codec in \
                     the workspace — remove it"
                ),
                vec![],
            )),
            Some(c) => {
                let enc_opaque = matches!(c.enc, EncSide::Opaque(_));
                let dec_opaque = matches!(c.dec, DecSide::Opaque(_));
                if !enc_opaque && !dec_opaque {
                    out.push(finding(
                        "WSUP",
                        &c.path,
                        c.enc_line,
                        format!(
                            "opaque-codec allowlist entry `{type_name}` is stale: \
                             the codec is structurally checkable — remove the entry"
                        ),
                        vec![],
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with_matrix(enums: &[(&str, &[&str])]) -> ProtoConfig {
        let mut cfg = ProtoConfig::workspace();
        cfg.matrix = enums
            .iter()
            .map(|(name, crates)| MatrixEnum {
                name: name.to_string(),
                handler_crates: crates.iter().map(|c| c.to_string()).collect(),
                why: "fixture".into(),
            })
            .collect();
        cfg.opaque_allow.clear();
        cfg
    }

    const GOOD_ENUM: &str = "\
pub enum Msg {
    Ping { seq: u64 },
    Bye,
}
impl Codec for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Ping { seq } => {
                0u8.encode(out);
                seq.encode(out);
            }
            Msg::Bye => {
                1u8.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Msg::Ping { seq: u64::decode(r)? }),
            1 => Ok(Msg::Bye),
            _ => Err(DecodeError::Invalid(\"Msg tag\")),
        }
    }
}
fn send() -> Msg { Msg::Ping { seq: 1 } }
fn send2() -> Msg { Msg::Bye }
fn handle(m: &Msg) {
    match m {
        Msg::Ping { seq } => helper(*seq),
        Msg::Bye => {}
    }
}
";

    #[test]
    fn w001_good_tree_is_clean() {
        let cfg = cfg_with_matrix(&[("Msg", &["core"])]);
        let lock = "enum Msg {\n  Ping = 0\n  Bye = 1\n}\n";
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", GOOD_ENUM)], Some(lock));
        assert!(r.clean(), "expected clean, got:\n{:?}", r.findings);
    }

    #[test]
    fn w001_field_order_divergence_has_diff_witness() {
        let src = "\
pub struct Grant { pub mom: u32, pub session: u64 }
impl Codec for Grant {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mom.encode(out);
        self.session.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Grant {
            session: u64::decode(r)?,
            mom: u32::decode(r)?,
        })
    }
}
";
        let cfg = cfg_with_matrix(&[]);
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", src)], None);
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == "W001")
            .expect("W001 finding");
        assert!(f.message.contains("field sequences diverge"), "{}", f.message);
        assert!(
            f.witness.iter().any(|w| w.contains("[mom, session]")),
            "{:?}",
            f.witness
        );
        assert!(
            f.witness.iter().any(|w| w.contains("[session, mom]")),
            "{:?}",
            f.witness
        );
        assert!(
            f.witness
                .iter()
                .any(|w| w.contains("position 0") && w.contains("`mom`") && w.contains("`session`")),
            "{:?}",
            f.witness
        );
    }

    #[test]
    fn w001_missing_tag_and_missing_reject_flagged() {
        let src = "\
pub enum Msg {
    Ping { seq: u64 },
}
impl Codec for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Ping { seq } => {
                seq.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Msg::Ping { seq: u64::decode(r)? }),
        }
    }
}
";
        let cfg = cfg_with_matrix(&[]);
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", src)], None);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "W001" && f.message.contains("before (or without) its discriminant")),
            "{:?}",
            r.findings
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "W001" && f.message.contains("no `_ => Err(..)` arm")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn w001_type_mismatch_flagged() {
        let src = "\
pub struct Rec { pub idx: u64 }
impl Codec for Rec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.idx.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Rec { idx: u32::decode(r)? })
    }
}
";
        let cfg = cfg_with_matrix(&[]);
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", src)], None);
        assert!(
            r.findings.iter().any(|f| f.rule == "W001"
                && f.message.contains("decodes field `idx` as `u32`")
                && f.message.contains("declares `u64`")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn w002_tag_drift_against_lock_fails() {
        let cfg = cfg_with_matrix(&[("Msg", &["core"])]);
        // The committed lock pins Bye = 2: the source (Bye = 1) drifted.
        let lock = "enum Msg {\n  Ping = 0\n  Bye = 2\n}\n";
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", GOOD_ENUM)], Some(lock));
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "W002" && f.message.contains("tag changed 2 -> 1")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn w002_missing_lock_and_duplicate_tags() {
        let src = "\
pub enum Msg {
    A,
    B,
}
impl Codec for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::A => {
                0u8.encode(out);
            }
            Msg::B => {
                0u8.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Msg::A),
            1 => Ok(Msg::B),
            _ => Err(DecodeError::Invalid(\"Msg tag\")),
        }
    }
}
";
        let cfg = cfg_with_matrix(&[]);
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", src)], None);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "W002" && f.message.contains("reuses discriminant 0")),
            "{:?}",
            r.findings
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "W002" && f.message.contains("no proto.lock committed")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn w003_unhandled_and_dead_variants() {
        let src = "\
pub enum Msg {
    Used { x: u32 },
    Unhandled { y: u32 },
    Dead { z: u32 },
}
fn send_used() -> Msg { Msg::Used { x: 1 } }
fn send_unhandled() -> Msg { Msg::Unhandled { y: 2 } }
fn handle(m: &Msg) -> u32 {
    match m {
        Msg::Used { x } => *x,
        _ => 0,
    }
}
";
        let cfg = cfg_with_matrix(&[("Msg", &["core"])]);
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", src)], None);
        assert!(
            r.findings.iter().any(|f| f.rule == "W003"
                && f.message.contains("`Msg::Unhandled` is constructed (sent)")),
            "{:?}",
            r.findings
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "W003" && f.message.contains("`Msg::Dead` is never constructed")),
            "{:?}",
            r.findings
        );
        assert!(
            !r.findings
                .iter()
                .any(|f| f.rule == "W003" && f.message.contains("`Msg::Used`")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn w004_unchecked_allocation_flagged_checked_helper_ok() {
        let bad = "\
fn replay(r: &mut Reader<'_>) -> Result<Vec<u8>, DecodeError> {
    let len = u32::decode(r)? as usize;
    let out = Vec::with_capacity(len);
    Ok(out)
}
";
        let cfg = cfg_with_matrix(&[]);
        let r = crate::check_files(&cfg, &[("crates/store/src/a.rs", bad)], None);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "W004" && f.message.contains("`with_capacity`")),
            "{:?}",
            r.findings
        );

        let good = "\
fn replay(r: &mut Reader<'_>) -> Result<Vec<u8>, DecodeError> {
    let len = decode_len(r)?;
    let out = Vec::with_capacity(len);
    Ok(out)
}
";
        let r = crate::check_files(&cfg, &[("crates/store/src/a.rs", good)], None);
        assert!(
            !r.findings.iter().any(|f| f.rule == "W004"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn w004_helper_without_limit_flagged() {
        let src = "\
fn decode_len(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let len = u32::decode(r)?;
    Ok(len as usize)
}
";
        let cfg = cfg_with_matrix(&[]);
        let r = crate::check_files(&cfg, &[("crates/store/src/a.rs", src)], None);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "W004" && f.message.contains("length helper `decode_len`")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn wsup_stale_and_unknown_pragmas() {
        let src = "\
// proto: allow(W001): nothing here violates W001
fn quiet() {}
// proto: allow(W999): no such rule
fn quiet2() {}
";
        let cfg = cfg_with_matrix(&[]);
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", src)], None);
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "WSUP" && f.message.contains("suppresses nothing")),
            "{:?}",
            r.findings
        );
        assert!(
            r.findings
                .iter()
                .any(|f| f.rule == "WSUP" && f.message.contains("unknown rule")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn pragma_waives_and_is_counted_used() {
        let src = "\
pub struct Rec { pub idx: u64 }
impl Codec for Rec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.idx.encode(out);
    }
    // proto: allow(W001): fixture — intentional narrowing pinned by tests
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Rec { idx: u32::decode(r)? })
    }
}
";
        let cfg = cfg_with_matrix(&[]);
        let r = crate::check_files(&cfg, &[("crates/core/src/a.rs", src)], None);
        assert!(
            !r.findings.iter().any(|f| f.rule == "W001" || f.rule == "WSUP"),
            "{:?}",
            r.findings
        );
    }
}
