//! Findings with field-level diff witnesses, the whole-run report, and
//! rendering (human text and the `--json` form CI archives).

use std::fmt;

/// One rule finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule code (`W001`..`W004`, `WSUP`).
    pub rule: &'static str,
    /// Workspace-relative file the finding anchors to.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// One-sentence description of the conformance violation.
    pub message: String,
    /// Field-level diff witness lines (encode/decode sequences with the
    /// first divergence called out), empty when not applicable.
    pub witness: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}:{}", self.rule, self.path, self.line)?;
        writeln!(f, "  {}", self.message)?;
        if !self.witness.is_empty() {
            writeln!(f, "  witness:")?;
            for w in &self.witness {
                writeln!(f, "    {w}")?;
            }
        }
        Ok(())
    }
}

/// Outcome of a whole-workspace conformance run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in path/line/rule order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `impl Codec` pairs parsed.
    pub codecs: usize,
    /// Number of protocol-enum variant use sites classified.
    pub use_sites: usize,
}

impl Report {
    /// Did the workspace pass?
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render as a JSON object (hand-rolled: the analysis is
    /// zero-dependency by design, like its siblings).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"files_scanned\":{},\"codecs\":{},\"use_sites\":{},\"findings\":[",
            self.files_scanned, self.codecs, self.use_sites
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{},\"witness\":[",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            ));
            for (j, w) in f.witness.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(w));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let r = Report {
            findings: vec![Finding {
                rule: "W001",
                path: "crates/x/src/a.rs".into(),
                line: 7,
                message: "encode/decode field order diverges".into(),
                witness: vec![
                    "encode writes : [a, b]".into(),
                    "decode reads  : [b, a]".into(),
                ],
            }],
            files_scanned: 1,
            codecs: 1,
            use_sites: 0,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"W001\""));
        assert!(j.contains("\"codecs\":1"));
        assert!(j.contains("encode writes : [a, b]"));
    }
}
