//! `jrs-proto` — wire-protocol & codec conformance static analysis for
//! the JOSHUA workspace.
//!
//! JOSHUA replicas agree because every head decodes exactly the bytes
//! its peers encode: the WAL a head replays at recovery, the snapshots
//! it installs, and the `Payload` stream the total-order engine
//! delivers are all hand-rolled `Codec` impls. detlint checks
//! determinism lexically, jrs-flow checks state-mutation dataflow, and
//! jrs-mc checks interleavings dynamically — but none of them see the
//! *protocol*: a swapped field pair, a renumbered discriminant, or a
//! sent-but-unhandled message ships silently and corrupts recovery or
//! wedges a replica. This crate closes that gap with a fourth
//! zero-dependency static pass built on jrs-flow's extraction:
//!
//! * **W001** — codec symmetry: `encode` and `decode` must read/write
//!   the same fields in the same order (field-level diff witnesses);
//!   enum codecs tag-first with unknown-tag rejection.
//! * **W002** — tag stability: discriminants unique, dense, and pinned
//!   against the committed [`proto.lock`](lock) manifest; drift is a
//!   hard error.
//! * **W003** — send/handle matrix: every protocol-enum variant that
//!   is constructed must be handled in its receiving role's crates;
//!   never-constructed variants are dead protocol surface.
//! * **W004** — decode-side bounds: decoded lengths must pass a
//!   checked limit helper before sizing any allocation.
//! * **WSUP** — suppressions (`// proto: allow(W00x): reason`) must
//!   name real rules, carry reasons, and suppress something.
//!
//! Run it three ways:
//!
//! * `cargo run -p jrs-proto -- check [--json]` — CI/CLI entry;
//! * the root crate's `tests/proto_gate.rs` — `cargo test` enforces it;
//! * [`check_workspace`] / [`check_files`] — library API for both.
//!
//! ## Scope and limitations
//!
//! Like its siblings this is a brace/token state machine tuned to
//! rustfmt-shaped code, not a parser. A codec the scanner cannot
//! classify does not pass silently — it becomes a W001 opaque finding
//! that must be restructured or explicitly allowlisted with an audited
//! reason ([`rules::ProtoConfig::opaque_allow`]), and the allowlist
//! itself is audited for staleness (WSUP). Generic container codecs in
//! the foundation layer are exempt from the structural mirror (their
//! symmetry is pinned by unit tests and the round-trip property tests)
//! but still subject to W004's bounds discipline.

pub mod extract;
pub mod lock;
pub mod model;
pub mod report;
pub mod rules;

pub use report::{Finding, Report};
pub use rules::ProtoConfig;

use jrs_flow::model::Model;
use model::ProtoModel;
use std::fs;
use std::io;
use std::path::Path;

pub use jrs_flow::find_workspace_root;

/// Build the protocol model from in-memory files
/// (`(workspace-relative path, source text)`).
pub fn model_for_files(cfg: &ProtoConfig, files: &[(&str, &str)]) -> ProtoModel {
    let flow = Model {
        files: files.iter().map(|(p, t)| jrs_flow::parse::extract(p, t)).collect(),
    };
    extract::build(cfg, flow)
}

/// Analyse a set of in-memory files (the unit fixture tests drive).
/// `lock` is the committed `proto.lock` text, if any.
pub fn check_files(cfg: &ProtoConfig, files: &[(&str, &str)], lock: Option<&str>) -> Report {
    let model = model_for_files(cfg, files);
    report_for(cfg, &model, lock)
}

/// Build the protocol model for the workspace rooted at `root`
/// (every `crates/*/src/**/*.rs` plus the umbrella crate's `src/`).
pub fn workspace_model(cfg: &ProtoConfig, root: &Path) -> io::Result<ProtoModel> {
    let mut rel_files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(root, &src, &mut rel_files)?;
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs(root, &umbrella, &mut rel_files)?;
    }
    rel_files.sort();

    let mut flow = Model::default();
    for rel in &rel_files {
        let text = fs::read_to_string(root.join(rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_else(|| rel.to_string_lossy().into_owned());
        flow.files.push(jrs_flow::parse::extract(&rel_str, &text));
    }
    Ok(extract::build(cfg, flow))
}

/// Analyse the workspace rooted at `root`, reading `root/proto.lock`
/// when present.
pub fn check_workspace(cfg: &ProtoConfig, root: &Path) -> io::Result<Report> {
    let model = workspace_model(cfg, root)?;
    let lock = fs::read_to_string(root.join("proto.lock")).ok();
    Ok(report_for(cfg, &model, lock.as_deref()))
}

/// Render the current schema as `proto.lock` text for the workspace
/// rooted at `root`.
pub fn generate_lock(cfg: &ProtoConfig, root: &Path) -> io::Result<String> {
    let model = workspace_model(cfg, root)?;
    Ok(lock::Schema::from_model(cfg, &model).render())
}

fn report_for(cfg: &ProtoConfig, model: &ProtoModel, lock: Option<&str>) -> Report {
    let findings = rules::run(cfg, model, lock);
    Report {
        findings,
        files_scanned: model.flow.files.len(),
        codecs: model.codecs.len(),
        use_sites: model.uses.len(),
    }
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    out: &mut Vec<std::path::PathBuf>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}
