//! Build the [`ProtoModel`]: parse every `impl Codec` body into
//! ordered encode/decode shapes, and classify every registered
//! protocol-enum variant occurrence as a construct or handle site.
//!
//! Like its siblings this is a line/token scanner tuned to
//! rustfmt-shaped code, not a parser. Anything it cannot classify
//! degrades to an `Opaque` shape, which the rules refuse to pass
//! silently: unparseable codecs must either be restructured or carry
//! an audited allowlist entry.

use crate::model::{
    CodecImpl, DecField, DecSide, EncOp, EncSide, FileScan, ProtoModel, UseKind,
    VariantDec, VariantEnc, VariantUse,
};
use crate::rules::ProtoConfig;
use jrs_detlint::scanner::preprocess_keyed;
use jrs_flow::model::{FileFacts, Model};
use std::collections::BTreeMap;

/// Build the protocol model from a flow model (consumes it; the flow
/// model rides along for type lookups).
pub fn build(cfg: &ProtoConfig, flow: Model) -> ProtoModel {
    let mut codecs: Vec<CodecImpl> = Vec::new();
    let mut uses: Vec<VariantUse> = Vec::new();
    let mut scans: Vec<FileScan> = Vec::new();

    // Enum name -> shipping variant list, for use-site scanning.
    let matrix_variants: Vec<(String, Vec<String>)> = cfg
        .matrix
        .iter()
        .filter_map(|m| {
            flow.enum_def(&m.name).map(|d| (m.name.clone(), d.variants.clone()))
        })
        .collect();

    for facts in &flow.files {
        let clean = preprocess_keyed(&facts.text, "proto");

        collect_codecs(facts, &clean.code_lines, &mut codecs);
        collect_uses(cfg, facts, &clean.code_lines, &matrix_variants, &mut uses);
        scans.push(FileScan {
            path: facts.path.clone(),
            lines: clean.code_lines,
            pragmas: clean.pragmas,
        });
    }

    ProtoModel { flow, codecs, uses, scans }
}

/// `(line_no, clean text)` for the body span of one fn.
fn span(lines: &[String], first: usize, last: usize) -> Vec<(usize, &str)> {
    (first..=last)
        .filter_map(|n| lines.get(n - 1).map(|l| (n, l.as_str())))
        .collect()
}

fn collect_codecs(facts: &FileFacts, lines: &[String], out: &mut Vec<CodecImpl>) {
    // type -> (enc fn, dec fn)
    let mut halves: BTreeMap<&str, (Option<&jrs_flow::model::FnDef>, Option<&jrs_flow::model::FnDef>)> =
        BTreeMap::new();
    for f in &facts.fns {
        if f.is_test || f.impl_trait.as_deref() != Some("Codec") {
            continue;
        }
        let Some(ty) = f.impl_type.as_deref() else { continue };
        let slot = halves.entry(ty).or_default();
        match f.name.as_str() {
            "encode" => slot.0 = Some(f),
            "decode" => slot.1 = Some(f),
            _ => {}
        }
    }
    for (ty, (enc_fn, dec_fn)) in halves {
        let (Some(e), Some(d)) = (enc_fn, dec_fn) else { continue };
        out.push(CodecImpl {
            type_name: ty.to_string(),
            path: facts.path.clone(),
            enc_line: e.line,
            dec_line: d.line,
            enc: parse_encode(&span(lines, e.line, e.end_line)),
            dec: parse_decode(&span(lines, d.line, d.end_line)),
        });
    }
}

// ----------------------------------------------------------------------
// encode-side parsing
// ----------------------------------------------------------------------

fn parse_encode(body: &[(usize, &str)]) -> EncSide {
    // Enum codecs match over self; a tag table binds the discriminant
    // first: `let tag: u8 = match self { V => 0, .. }` then
    // `tag.encode(out)`.
    for (i, (_, l)) in body.iter().enumerate() {
        if let Some(pos) = find_token(l, "match") {
            let rest = l[pos + "match".len()..].trim_start();
            let rest = rest.trim_start_matches(['*', '&']);
            if let Some(after) = rest.strip_prefix("self") {
                // `match self` / `match *self`, but not `match self.kind`.
                let scrutinee_is_self = !after
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.');
                if scrutinee_is_self {
                    let table = parse_tag_table_let(l);
                    return parse_encode_match(body, i, table);
                }
            }
        }
    }
    let mut ops = Vec::new();
    for (_, l) in body {
        scan_encode_ops(l, &mut ops);
    }
    if ops.is_empty() {
        EncSide::Opaque("no field or tag writes recognized".to_string())
    } else {
        EncSide::Struct(ops)
    }
}

/// `let NAME: uN = match self {` -> `(NAME, N)`.
fn parse_tag_table_let(l: &str) -> Option<(String, u8)> {
    let t = l.trim_start();
    let rest = t.strip_prefix("let ")?;
    let (name, rest) = rest.split_once(':')?;
    let ty = rest.trim_start();
    let width = ["u8", "u16", "u32", "u64"]
        .iter()
        .find(|w| ty.starts_with(**w))
        .and_then(|w| w[1..].parse::<u8>().ok())?;
    Some((name.trim().to_string(), width))
}

fn parse_encode_match(
    body: &[(usize, &str)],
    match_idx: usize,
    table: Option<(String, u8)>,
) -> EncSide {
    let mut variants: Vec<VariantEnc> = Vec::new();
    let mut width: Option<u8> = table.as_ref().map(|(_, w)| *w);
    let mut depth = 0i32;
    // Current arm: (variant, bindings, renamed, tag-table value, ops)
    type EncArm = (String, Vec<String>, bool, Option<u64>, Vec<EncOp>, usize);
    let mut cur: Option<EncArm> = None;

    let finish =
        |cur: &mut Option<EncArm>,
         variants: &mut Vec<VariantEnc>,
         width: &mut Option<u8>| {
            let Some((name, _binds, renamed, table_val, mut ops, line)) = cur.take() else {
                return;
            };
            if renamed {
                ops.push(EncOp::Opaque("arm pattern renames fields".to_string()));
            }
            let (tag, tag_width) = if let Some(v) = table_val {
                (Some(v), *width)
            } else if let Some(EncOp::Tag { value, width: w }) = ops.first().cloned() {
                ops.remove(0);
                if width.is_none() {
                    *width = Some(w);
                }
                (Some(value), Some(w))
            } else {
                (None, None)
            };
            variants.push(VariantEnc { name, line, tag, tag_width, ops });
        };

    for (i, (n, l)) in body.iter().enumerate() {
        if i < match_idx {
            continue;
        }
        if i > match_idx && depth == 1 {
            if let Some(arrow) = l.find("=>") {
                finish(&mut cur, &mut variants, &mut width);
                let pat = &l[..arrow];
                let rhs = &l[arrow + 2..];
                match parse_arm_pattern(pat) {
                    Some((variant, binds, renamed)) => {
                        let table_val = table
                            .as_ref()
                            .and_then(|_| parse_int(rhs.trim().trim_end_matches(',')));
                        let mut ops = Vec::new();
                        scan_encode_ops(rhs, &mut ops);
                        cur = Some((variant, binds, renamed, table_val, ops, *n));
                    }
                    None => {
                        return EncSide::Opaque(format!(
                            "unrecognized encode arm pattern `{}`",
                            pat.trim()
                        ));
                    }
                }
            }
        } else if i > match_idx && depth >= 2 {
            if let Some(c) = cur.as_mut() {
                scan_encode_ops(l, &mut c.4);
            }
        }
        depth += net_braces(l);
        if i > match_idx && depth <= 0 {
            break;
        }
    }
    finish(&mut cur, &mut variants, &mut width);
    if variants.is_empty() {
        return EncSide::Opaque("match over self with no parseable arms".to_string());
    }
    EncSide::Enum { width, variants }
}

/// `Payload::Client { client, req_id, cmd }` / `ServerCmd::Qsub(spec)`
/// / `JobState::Queued` -> `(variant, bound names, renamed?)`.
fn parse_arm_pattern(p: &str) -> Option<(String, Vec<String>, bool)> {
    let p = p.trim().trim_start_matches('&').trim_start_matches("mut ").trim();
    let head_end = p
        .char_indices()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_' || *c == ':')
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    let head = &p[..head_end];
    let variant = head.rsplit("::").next()?.trim();
    if variant.is_empty() || !variant.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    let rest = p[head_end..].trim_start();
    let mut binds = Vec::new();
    let mut renamed = false;
    if rest.starts_with('{') || rest.starts_with('(') {
        let (open, close) = if rest.starts_with('{') { ('{', '}') } else { ('(', ')') };
        let inner = balanced(rest, open, close)?;
        for part in split_top_level(&inner, ',') {
            let part = part.trim();
            if part.is_empty() || part == ".." {
                continue;
            }
            if part.contains(':') {
                renamed = true;
            }
            let name = part.rsplit(':').next().unwrap_or(part).trim();
            binds.push(name.trim_start_matches("ref ").trim_start_matches("mut ").to_string());
        }
    }
    Some((variant.to_string(), binds, renamed))
}

/// Append every `<recv>.encode(out)` op found on the line.
fn scan_encode_ops(l: &str, out: &mut Vec<EncOp>) {
    let needle = ".encode(out)";
    let mut start = 0;
    while let Some(rel) = l[start..].find(needle) {
        let idx = start + rel;
        out.push(classify_recv(&recv_before(l, idx)));
        start = idx + needle.len();
    }
}

/// Capture the receiver expression ending just before byte `idx`.
fn recv_before(l: &str, idx: usize) -> String {
    let mut start = idx;
    let mut depth = 0i32;
    for (i, c) in l[..idx].char_indices().rev() {
        let ok = if depth > 0 {
            if c == '(' {
                depth -= 1;
            } else if c == ')' {
                depth += 1;
            }
            true
        } else if c == ')' {
            depth += 1;
            true
        } else {
            c.is_alphanumeric() || c == '_' || c == '.' || c == ':' || c == '$'
        };
        if !ok {
            break;
        }
        start = i;
    }
    l[start..idx].to_string()
}

fn classify_recv(r: &str) -> EncOp {
    if let Some(tag) = parse_int_tag(r) {
        return tag;
    }
    if let Some(rest) = r.strip_prefix("self.") {
        if is_simple(rest) {
            return EncOp::Val(rest.to_string());
        }
        return EncOp::Opaque(r.to_string());
    }
    let r2 = r.strip_suffix(".as_ref()").unwrap_or(r);
    if is_simple(r2) && r2 != "self" {
        return EncOp::Val(r2.to_string());
    }
    EncOp::Opaque(r.to_string())
}

/// `"3u8"` -> `Tag { value: 3, width: 8 }`.
fn parse_int_tag(s: &str) -> Option<EncOp> {
    let u = s.find('u')?;
    let value = s[..u].parse::<u64>().ok()?;
    let width = s[u + 1..].parse::<u8>().ok()?;
    if matches!(width, 8 | 16 | 32 | 64) {
        Some(EncOp::Tag { value, width })
    } else {
        None
    }
}

fn parse_int(s: &str) -> Option<u64> {
    s.trim().parse().ok()
}

fn is_simple(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

// ----------------------------------------------------------------------
// decode-side parsing
// ----------------------------------------------------------------------

fn parse_decode(body: &[(usize, &str)]) -> DecSide {
    for (i, (_, l)) in body.iter().enumerate() {
        if let Some(pos) = find_token(l, "match") {
            let rest = &l[pos + "match".len()..];
            if rest.contains("::decode(") {
                let Some(width) = decode_width(rest) else {
                    return DecSide::Opaque(format!(
                        "cannot determine discriminant width from `{}`",
                        rest.trim()
                    ));
                };
                return parse_decode_match(body, i, width);
            }
        }
    }
    // Struct codec: a single constructor inside Ok(..).
    let joined: String =
        body.iter().map(|(_, l)| *l).collect::<Vec<_>>().join("\n");
    let Some(ok) = joined.find("Ok(") else {
        return DecSide::Opaque("no Ok(..) constructor found".to_string());
    };
    match parse_ctor(&joined[ok + 3..]) {
        Some((_, CtorBody::Named(fields))) => DecSide::Struct(fields),
        Some((_, CtorBody::Tuple(n))) => DecSide::Tuple(n),
        Some((_, CtorBody::Unit)) | None => {
            DecSide::Opaque("constructor is not a struct/tuple literal".to_string())
        }
    }
}

/// `" u8::decode(r)? {"` -> `8`.
fn decode_width(s: &str) -> Option<u8> {
    for w in [8u8, 16, 32, 64] {
        if s.contains(&format!("u{w}::decode(")) {
            return Some(w);
        }
    }
    None
}

fn parse_decode_match(body: &[(usize, &str)], match_idx: usize, width: u8) -> DecSide {
    let mut arms: Vec<VariantDec> = Vec::new();
    let mut rejects_unknown = false;
    let mut depth = 0i32;
    // (arm line, tag or None for `_`, accumulated body text)
    let mut cur: Option<(usize, Option<u64>, String)> = None;
    let mut opaque: Option<String> = None;

    let finish = |cur: &mut Option<(usize, Option<u64>, String)>,
                      arms: &mut Vec<VariantDec>,
                      rejects: &mut bool,
                      opaque: &mut Option<String>| {
        let Some((line, tag, text)) = cur.take() else { return };
        let Some(tag) = tag else {
            if text.contains("Err(") {
                *rejects = true;
            }
            return;
        };
        let Some(ok) = text.find("Ok(") else {
            if opaque.is_none() {
                *opaque = Some(format!("decode arm for tag {tag} has no Ok(..)"));
            }
            return;
        };
        match parse_ctor(&text[ok + 3..]) {
            Some((variant, CtorBody::Named(fields))) => arms.push(VariantDec {
                name: variant,
                line,
                tag,
                fields,
                tuple_arity: None,
            }),
            Some((variant, CtorBody::Tuple(n))) => arms.push(VariantDec {
                name: variant,
                line,
                tag,
                fields: Vec::new(),
                tuple_arity: Some(n),
            }),
            Some((variant, CtorBody::Unit)) => arms.push(VariantDec {
                name: variant,
                line,
                tag,
                fields: Vec::new(),
                tuple_arity: None,
            }),
            None => {
                if opaque.is_none() {
                    *opaque =
                        Some(format!("unparseable constructor in decode arm for tag {tag}"));
                }
            }
        }
    };

    for (i, (n, l)) in body.iter().enumerate() {
        if i < match_idx {
            continue;
        }
        if i > match_idx && depth == 1 {
            if let Some(arrow) = l.find("=>") {
                finish(&mut cur, &mut arms, &mut rejects_unknown, &mut opaque);
                let pat = l[..arrow].trim();
                let tag = if pat == "_" { None } else { parse_int(pat) };
                if pat != "_" && tag.is_none() {
                    return DecSide::Opaque(format!(
                        "decode arm pattern `{pat}` is not an integer tag"
                    ));
                }
                cur = Some((*n, tag, l[arrow + 2..].to_string()));
            }
        } else if i > match_idx && depth >= 2 {
            if let Some(c) = cur.as_mut() {
                c.2.push(' ');
                c.2.push_str(l);
            }
        }
        depth += net_braces(l);
        if i > match_idx && depth <= 0 {
            break;
        }
    }
    finish(&mut cur, &mut arms, &mut rejects_unknown, &mut opaque);
    if let Some(why) = opaque {
        return DecSide::Opaque(why);
    }
    DecSide::Enum { width, arms, rejects_unknown }
}

enum CtorBody {
    Named(Vec<DecField>),
    Tuple(usize),
    Unit,
}

/// Parse `Payload::Client { client: ProcId::decode(r)?, .. }` (text
/// directly after `Ok(`).
fn parse_ctor(s: &str) -> Option<(String, CtorBody)> {
    let s = s.trim_start();
    let head_end = s
        .char_indices()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_' || *c == ':')
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    let head = &s[..head_end];
    let variant = head.rsplit("::").next()?.trim();
    if variant.is_empty() || !variant.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    let rest = s[head_end..].trim_start();
    if rest.starts_with('{') {
        let inner = balanced(rest, '{', '}')?;
        let mut fields = Vec::new();
        for part in split_top_level(&inner, ',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, expr) = part.split_once(':')?;
            fields.push(DecField {
                name: Some(name.trim().to_string()),
                ty: ty_head(expr),
            });
        }
        Some((variant.to_string(), CtorBody::Named(fields)))
    } else if rest.starts_with('(') {
        let inner = balanced(rest, '(', ')')?;
        let n = split_top_level(&inner, ',')
            .into_iter()
            .filter(|p| !p.trim().is_empty())
            .count();
        Some((variant.to_string(), CtorBody::Tuple(n)))
    } else {
        Some((variant.to_string(), CtorBody::Unit))
    }
}

/// The type a field expression decodes as: `ProcId::decode(r)?` ->
/// `ProcId`; `Box::new(ReplicaState::decode(r)?)` -> `ReplicaState`;
/// inferred `Codec::decode(r)?` -> `None`.
fn ty_head(expr: &str) -> Option<String> {
    let pos = expr.find("::decode(")?;
    let head: String = expr[..pos]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if head.is_empty() || head == "Codec" {
        None
    } else {
        Some(head)
    }
}

// ----------------------------------------------------------------------
// protocol-enum use sites
// ----------------------------------------------------------------------

fn collect_uses(
    cfg: &ProtoConfig,
    facts: &FileFacts,
    lines: &[String],
    matrix: &[(String, Vec<String>)],
    out: &mut Vec<VariantUse>,
) {
    for f in &facts.fns {
        if f.is_test
            || cfg.ignore_fns.iter().any(|n| n == &f.name)
            || (f.impl_trait.as_deref() == Some("Codec")
                && matches!(f.name.as_str(), "encode" | "decode"))
        {
            continue;
        }
        for (n, l) in span(lines, f.line, f.end_line) {
            for (enum_name, variants) in matrix {
                let enum_prefix = format!("{enum_name}::");
                if !l.contains(&enum_prefix) {
                    continue;
                }
                for v in variants {
                    let token = format!("{enum_name}::{v}");
                    let mut start = 0;
                    while let Some(rel) = l[start..].find(&token) {
                        let pos = start + rel;
                        start = pos + token.len();
                        if !boundary_ok(l, pos, token.len()) {
                            continue;
                        }
                        let kind = classify_use(
                            &l[..pos],
                            &l[pos + token.len()..],
                            facts,
                            n,
                            &token,
                        );
                        out.push(VariantUse {
                            enum_name: enum_name.clone(),
                            variant: v.clone(),
                            path: facts.path.clone(),
                            crate_key: facts.crate_key.clone(),
                            line: n,
                            kind,
                            in_fn: f.qualified.clone(),
                        });
                    }
                }
            }
        }
    }
}

/// Token-boundary check: the char before must not be an identifier
/// char (a path `::` prefix is fine); the char after must not extend
/// the variant name.
fn boundary_ok(l: &str, pos: usize, len: usize) -> bool {
    let before_ok = pos == 0
        || !l[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after_ok = !l[pos + len..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

fn classify_use(
    before: &str,
    after: &str,
    facts: &FileFacts,
    line: usize,
    token: &str,
) -> UseKind {
    // `E::V { .. }` shorthand only exists in patterns.
    let a = after.trim_start();
    if a.starts_with("{ ..") || a.starts_with("{..") {
        return UseKind::Handle;
    }
    if before.contains("matches!") {
        return UseKind::Handle;
    }
    // Already past an arm's `=>`: this is arm-body (expression) position.
    if before.contains("=>") {
        return UseKind::Construct;
    }
    // The `=>` follows on the same line: pattern position.
    if after.contains("=>") {
        return UseKind::Handle;
    }
    // `if let` / `while let` / `let .. else` destructuring (no `=`
    // between the `let` and the variant).
    if let Some(lp) = before.rfind("let ") {
        if !before[lp..].contains('=') {
            return UseKind::Handle;
        }
    }
    // Wrapped arm patterns: the flow model joins multi-line patterns.
    if facts.matches.iter().any(|m| {
        m.arms
            .iter()
            .any(|arm| arm.pattern.contains(token) && line >= arm.line && line <= arm.line + 2)
    }) {
        return UseKind::Handle;
    }
    UseKind::Construct
}

// ----------------------------------------------------------------------
// text utilities
// ----------------------------------------------------------------------

/// Position of `word` with identifier boundaries on both sides.
fn find_token(l: &str, word: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(rel) = l[start..].find(word) {
        let pos = start + rel;
        if boundary_ok(l, pos, word.len()) {
            return Some(pos);
        }
        start = pos + word.len();
    }
    None
}

fn net_braces(l: &str) -> i32 {
    let mut n = 0;
    for c in l.chars() {
        match c {
            '{' => n += 1,
            '}' => n -= 1,
            _ => {}
        }
    }
    n
}

/// Contents of the balanced `open..close` region `s` starts with.
fn balanced(s: &str, open: char, close: char) -> Option<String> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(s[open.len_utf8()..i].to_string());
            }
        }
    }
    None
}

/// Split at `sep` occurrences outside any `(){}[]` nesting.
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' | '{' | '[' => depth += 1,
            ')' | '}' | ']' => depth -= 1,
            _ => {}
        }
        if c == sep && depth == 0 {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    parts.push(cur);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ProtoConfig;
    use jrs_flow::parse::extract;

    fn model_of(files: &[(&str, &str)]) -> ProtoModel {
        let flow = Model {
            files: files.iter().map(|(p, t)| extract(p, t)).collect(),
        };
        build(&ProtoConfig::workspace(), flow)
    }

    const STRUCT_CODEC: &str = "\
impl Codec for Grant {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mom.encode(out);
        self.session.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Grant {
            mom: ProcId::decode(r)?,
            session: u64::decode(r)?,
        })
    }
}
";

    #[test]
    fn struct_codec_shapes() {
        let m = model_of(&[("crates/core/src/a.rs", STRUCT_CODEC)]);
        let c = m.codec("Grant").expect("codec found");
        match &c.enc {
            EncSide::Struct(ops) => {
                assert_eq!(
                    ops,
                    &vec![EncOp::Val("mom".into()), EncOp::Val("session".into())]
                );
            }
            other => panic!("expected struct enc, got {other:?}"),
        }
        match &c.dec {
            DecSide::Struct(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].name.as_deref(), Some("mom"));
                assert_eq!(fields[0].ty.as_deref(), Some("ProcId"));
                assert_eq!(fields[1].ty.as_deref(), Some("u64"));
            }
            other => panic!("expected struct dec, got {other:?}"),
        }
    }

    const ENUM_CODEC: &str = "\
impl Codec for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Ping { seq } => {
                0u8.encode(out);
                seq.encode(out);
            }
            Msg::Pong(id) => {
                1u8.encode(out);
                id.encode(out);
            }
            Msg::Bye => {
                2u8.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Msg::Ping { seq: u64::decode(r)? }),
            1 => Ok(Msg::Pong(JobId::decode(r)?)),
            2 => Ok(Msg::Bye),
            _ => Err(DecodeError::Invalid(\"Msg tag\")),
        }
    }
}
";

    #[test]
    fn enum_codec_shapes() {
        let m = model_of(&[("crates/core/src/a.rs", ENUM_CODEC)]);
        let c = m.codec("Msg").expect("codec found");
        let EncSide::Enum { width, variants } = &c.enc else {
            panic!("expected enum enc, got {:?}", c.enc);
        };
        assert_eq!(*width, Some(8));
        assert_eq!(variants.len(), 3);
        assert_eq!(variants[0].name, "Ping");
        assert_eq!(variants[0].tag, Some(0));
        assert_eq!(variants[0].ops, vec![EncOp::Val("seq".into())]);
        assert_eq!(variants[2].name, "Bye");
        assert_eq!(variants[2].tag, Some(2));
        assert!(variants[2].ops.is_empty());

        let DecSide::Enum { width, arms, rejects_unknown } = &c.dec else {
            panic!("expected enum dec, got {:?}", c.dec);
        };
        assert_eq!(*width, 8);
        assert!(*rejects_unknown);
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].name, "Ping");
        assert_eq!(arms[0].tag, 0);
        assert_eq!(arms[0].fields[0].name.as_deref(), Some("seq"));
        assert_eq!(arms[1].tuple_arity, Some(1));
        assert_eq!(arms[2].name, "Bye");
    }

    const TAG_TABLE: &str = "\
impl Codec for JobState {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            JobState::Queued => 0,
            JobState::Running => 1,
        };
        tag.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(JobState::Queued),
            1 => Ok(JobState::Running),
            _ => Err(DecodeError::Invalid(\"JobState tag\")),
        }
    }
}
";

    #[test]
    fn tag_table_codec_shapes() {
        let m = model_of(&[("crates/pbs/src/a.rs", TAG_TABLE)]);
        let c = m.codec("JobState").expect("codec found");
        let EncSide::Enum { width, variants } = &c.enc else {
            panic!("expected enum enc, got {:?}", c.enc);
        };
        assert_eq!(*width, Some(8));
        assert_eq!(variants.len(), 2);
        assert_eq!(variants[0].tag, Some(0));
        assert_eq!(variants[1].tag, Some(1));
        assert!(variants[1].ops.is_empty());
    }

    #[test]
    fn boxed_and_as_ref_fields_resolve() {
        let src = "\
impl Codec for Snap {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Snap::Full { targets, state } => {
                0u8.encode(out);
                targets.encode(out);
                state.as_ref().encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Snap::Full {
                targets: Codec::decode(r)?,
                state: Box::new(ReplicaState::decode(r)?),
            }),
            _ => Err(DecodeError::Invalid(\"Snap tag\")),
        }
    }
}
";
        let m = model_of(&[("crates/core/src/a.rs", src)]);
        let c = m.codec("Snap").expect("codec found");
        let EncSide::Enum { variants, .. } = &c.enc else { panic!() };
        assert_eq!(
            variants[0].ops,
            vec![EncOp::Val("targets".into()), EncOp::Val("state".into())]
        );
        let DecSide::Enum { arms, .. } = &c.dec else { panic!() };
        assert_eq!(arms[0].fields[1].name.as_deref(), Some("state"));
        assert_eq!(arms[0].fields[1].ty.as_deref(), Some("ReplicaState"));
    }

    #[test]
    fn use_sites_classify_construct_and_handle() {
        let src = "\
pub enum Payload {
    Client { client: u32 },
    Output { client: u32 },
}
fn send(x: u32) -> Payload {
    Payload::Client { client: x }
}
fn apply(p: &Payload) {
    match p {
        Payload::Client { client } => helper(*client),
        Payload::Output { .. } => {}
    }
}
";
        let m = model_of(&[("crates/core/src/a.rs", src)]);
        let c: Vec<_> = m
            .uses
            .iter()
            .filter(|u| u.kind == UseKind::Construct)
            .map(|u| u.variant.as_str())
            .collect();
        assert_eq!(c, vec!["Client"]);
        let h: Vec<_> = m
            .uses
            .iter()
            .filter(|u| u.kind == UseKind::Handle)
            .map(|u| u.variant.as_str())
            .collect();
        assert_eq!(h, vec!["Client", "Output"]);
    }
}
