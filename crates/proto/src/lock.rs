//! The `proto.lock` manifest: the committed pin of every wire /
//! persistence schema (enum discriminant tables, struct field orders,
//! tuple arities).
//!
//! The WAL and snapshot files on every head's disk were written by
//! *earlier builds*. Any schema change — a reordered field, a renumbered
//! tag — silently corrupts recovery, so W002 makes drift against the
//! committed manifest a hard error. The lifecycle is:
//!
//! 1. `cargo run -p jrs-proto -- check` compares source against
//!    `proto.lock`; any difference is a W002 finding with a precise
//!    diff.
//! 2. After a *deliberate*, migration-reviewed schema change, regenerate
//!    with `cargo run -p jrs-proto -- lock` and commit the new manifest
//!    alongside the code — the diff in review is the schema change.

use crate::model::{DecSide, EncSide, ProtoModel};
use crate::rules::ProtoConfig;
use std::collections::BTreeMap;

/// The pinnable schema extracted from codecs (or parsed from a
/// `proto.lock` file).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Schema {
    /// Enum codecs: type -> `(variant, tag)` sorted by tag.
    pub enums: BTreeMap<String, Vec<(String, u64)>>,
    /// Struct codecs: type -> field names in encode order.
    pub structs: BTreeMap<String, Vec<String>>,
    /// Tuple codecs: type -> positional arity.
    pub tuples: BTreeMap<String, usize>,
}

impl Schema {
    /// Extract the pinnable schema from the model. Foundation-layer and
    /// allowlisted-opaque codecs are not pinned (generic containers and
    /// audited wrappers have no stable per-type field list).
    pub fn from_model(cfg: &ProtoConfig, model: &ProtoModel) -> Schema {
        let mut s = Schema::default();
        for c in &model.codecs {
            if cfg.is_foundation(&c.path)
                || cfg.opaque_allow.iter().any(|(t, _)| t == &c.type_name)
                || c.type_name.contains('$')
            {
                continue;
            }
            match (&c.enc, &c.dec) {
                (EncSide::Enum { variants, .. }, _) => {
                    let mut table: Vec<(String, u64)> = variants
                        .iter()
                        .filter_map(|v| v.tag.map(|t| (v.name.clone(), t)))
                        .collect();
                    table.sort_by_key(|(_, t)| *t);
                    s.enums.insert(c.type_name.clone(), table);
                }
                (EncSide::Struct(_), DecSide::Struct(fields)) => {
                    s.structs.insert(
                        c.type_name.clone(),
                        fields.iter().filter_map(|f| f.name.clone()).collect(),
                    );
                }
                (EncSide::Struct(_), DecSide::Tuple(n)) => {
                    s.tuples.insert(c.type_name.clone(), *n);
                }
                _ => {}
            }
        }
        s
    }

    /// Render as the committed `proto.lock` text.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# proto.lock — pinned wire/persistence schema (jrs-proto W002).\n\
             # On-disk WAL and snapshot data was written by earlier builds; any\n\
             # drift from this manifest is a hard error. After a deliberate,\n\
             # migration-reviewed schema change, regenerate with\n\
             #   cargo run -p jrs-proto -- lock\n\
             # and commit the new manifest alongside the code change.\n\n",
        );
        for (name, table) in &self.enums {
            out.push_str(&format!("enum {name} {{\n"));
            for (v, t) in table {
                out.push_str(&format!("  {v} = {t}\n"));
            }
            out.push_str("}\n");
        }
        for (name, fields) in &self.structs {
            out.push_str(&format!("struct {name} {{ {} }}\n", fields.join(", ")));
        }
        for (name, arity) in &self.tuples {
            out.push_str(&format!("tuple {name}({arity})\n"));
        }
        out
    }

    /// Parse a committed `proto.lock`.
    pub fn parse(text: &str) -> Result<Schema, String> {
        let mut s = Schema::default();
        let mut cur_enum: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |m: &str| format!("proto.lock:{}: {m}", i + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("enum ") {
                let name = rest.trim_end_matches('{').trim();
                if name.is_empty() {
                    return Err(err("empty enum name"));
                }
                s.enums.insert(name.to_string(), Vec::new());
                cur_enum = Some(name.to_string());
            } else if let Some(rest) = line.strip_prefix("struct ") {
                let (name, body) =
                    rest.split_once('{').ok_or_else(|| err("struct needs { .. }"))?;
                let body = body.trim_end_matches('}').trim();
                let fields: Vec<String> = if body.is_empty() {
                    Vec::new()
                } else {
                    body.split(',').map(|f| f.trim().to_string()).collect()
                };
                s.structs.insert(name.trim().to_string(), fields);
                cur_enum = None;
            } else if let Some(rest) = line.strip_prefix("tuple ") {
                let (name, arity) =
                    rest.split_once('(').ok_or_else(|| err("tuple needs (N)"))?;
                let arity: usize = arity
                    .trim_end_matches(')')
                    .trim()
                    .parse()
                    .map_err(|_| err("bad tuple arity"))?;
                s.tuples.insert(name.trim().to_string(), arity);
                cur_enum = None;
            } else if line == "}" {
                cur_enum = None;
            } else if let Some(name) = &cur_enum {
                let (v, t) =
                    line.split_once('=').ok_or_else(|| err("expected `Variant = tag`"))?;
                let tag: u64 =
                    t.trim().parse().map_err(|_| err("bad discriminant"))?;
                if let Some(table) = s.enums.get_mut(name) {
                    table.push((v.trim().to_string(), tag));
                }
            } else {
                return Err(err("unrecognized line"));
            }
        }
        for table in s.enums.values_mut() {
            table.sort_by_key(|(_, t)| *t);
        }
        Ok(s)
    }

    /// Precise drift diffs: `(type name, message)` per divergence.
    pub fn diff(pinned: &Schema, current: &Schema) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (name, cur) in &current.enums {
            match pinned.enums.get(name) {
                None => out.push((
                    name.clone(),
                    format!(
                        "enum codec `{name}` is not pinned in proto.lock (new wire \
                         schema) — review migration impact, then regenerate the lock"
                    ),
                )),
                Some(pin) => {
                    for (v, t) in cur {
                        match pin.iter().find(|(pv, _)| pv == v) {
                            None => out.push((
                                name.clone(),
                                format!(
                                    "enum `{name}`: variant `{v}` (tag {t}) is not \
                                     pinned — new variants must be appended and the \
                                     lock regenerated"
                                ),
                            )),
                            Some((_, pt)) if pt != t => out.push((
                                name.clone(),
                                format!(
                                    "enum `{name}`: variant `{v}` tag changed \
                                     {pt} -> {t} — WAL/snapshot records written by \
                                     earlier builds become unreadable"
                                ),
                            )),
                            _ => {}
                        }
                    }
                    for (v, t) in pin {
                        if !cur.iter().any(|(cv, _)| cv == v) {
                            out.push((
                                name.clone(),
                                format!(
                                    "enum `{name}`: pinned variant `{v}` (tag {t}) \
                                     no longer exists in the codec"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        for (name, pin) in &pinned.enums {
            if !current.enums.contains_key(name) {
                out.push((
                    name.clone(),
                    format!("pinned enum codec `{name}` no longer exists ({pin:?})"),
                ));
            }
        }
        for (name, cur) in &current.structs {
            match pinned.structs.get(name) {
                None => out.push((
                    name.clone(),
                    format!("struct codec `{name}` is not pinned in proto.lock"),
                )),
                Some(pin) if pin != cur => out.push((
                    name.clone(),
                    format!(
                        "struct `{name}`: field order changed [{}] -> [{}] — \
                         persisted records decode fields positionally",
                        pin.join(", "),
                        cur.join(", ")
                    ),
                )),
                _ => {}
            }
        }
        for name in pinned.structs.keys() {
            if !current.structs.contains_key(name) {
                out.push((
                    name.clone(),
                    format!("pinned struct codec `{name}` no longer exists"),
                ));
            }
        }
        for (name, cur) in &current.tuples {
            match pinned.tuples.get(name) {
                None => out.push((
                    name.clone(),
                    format!("tuple codec `{name}` is not pinned in proto.lock"),
                )),
                Some(pin) if pin != cur => out.push((
                    name.clone(),
                    format!("tuple `{name}`: arity changed {pin} -> {cur}"),
                )),
                _ => {}
            }
        }
        for name in pinned.tuples.keys() {
            if !current.tuples.contains_key(name) {
                out.push((
                    name.clone(),
                    format!("pinned tuple codec `{name}` no longer exists"),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        let mut s = Schema::default();
        s.enums.insert(
            "Payload".into(),
            vec![("Client".into(), 0), ("Output".into(), 1)],
        );
        s.structs.insert("Grant".into(), vec!["mom".into(), "session".into()]);
        s.tuples.insert("JobId".into(), 1);
        s
    }

    #[test]
    fn render_parse_round_trip() {
        let s = sample();
        let text = s.render();
        let back = Schema::parse(&text).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn drift_is_precise() {
        let pinned = sample();
        let mut cur = sample();
        // Renumber a tag, reorder a struct, drop the tuple.
        cur.enums.get_mut("Payload").unwrap()[1] = ("Output".into(), 2);
        cur.structs.insert("Grant".into(), vec!["session".into(), "mom".into()]);
        cur.tuples.clear();
        let diffs = Schema::diff(&pinned, &cur);
        let msgs: Vec<&str> = diffs.iter().map(|(_, m)| m.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("tag changed 1 -> 2")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("[mom, session] -> [session, mom]")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("tuple codec `JobId` no longer exists")),
            "{msgs:?}"
        );
    }

    #[test]
    fn unparseable_lock_is_an_error() {
        assert!(Schema::parse("what is this").is_err());
        assert!(Schema::parse("enum X {\n  Variant = pizza\n}").is_err());
    }
}
