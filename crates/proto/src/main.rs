//! CLI for the protocol-conformance analysis:
//! `cargo run -p jrs-proto -- check`.

use jrs_proto::ProtoConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "jrs-proto — wire-protocol & codec conformance analysis for the JOSHUA workspace

USAGE:
    jrs-proto check [--root <dir>] [--json]   analyse the workspace; exit 1 on findings
    jrs-proto lock [--root <dir>]             print the current schema as proto.lock text
    jrs-proto matrix [--root <dir>]           dump per-variant construct/handle sites
    jrs-proto rules                           print the rule set and the audited registry

Waive a finding inline with `// proto: allow(W001): <reason>` on the offending
line or the line above it. Reasons are mandatory; stale pragmas are themselves
findings (WSUP)."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("lock") => lock(&args[1..]),
        Some("matrix") => matrix(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Parse `[--root <dir>] [--json]`; `None` on bad args.
fn parse_opts(args: &[String], allow_json: bool) -> Option<(PathBuf, bool)> {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => root = Some(PathBuf::from(it.next()?)),
            "--json" if allow_json => json = true,
            _ => return None,
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match jrs_proto::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "jrs-proto: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return None;
                }
            }
        }
    };
    Some((root, json))
}

fn check(args: &[String]) -> ExitCode {
    let Some((root, json)) = parse_opts(args, true) else { return usage() };
    let cfg = ProtoConfig::workspace();
    match jrs_proto::check_workspace(&cfg, &root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
                return if report.clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
            }
            for f in &report.findings {
                println!("{f}");
            }
            if report.clean() {
                println!(
                    "proto: OK — {} files, {} codecs, {} use sites, 0 findings",
                    report.files_scanned, report.codecs, report.use_sites
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "proto: FAILED — {} finding(s) across {} files ({} codecs, {} use \
                     sites; run `cargo run -p jrs-proto -- rules` for rationale)",
                    report.findings.len(),
                    report.files_scanned,
                    report.codecs,
                    report.use_sites
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("jrs-proto: I/O error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn lock(args: &[String]) -> ExitCode {
    let Some((root, _)) = parse_opts(args, false) else { return usage() };
    let cfg = ProtoConfig::workspace();
    match jrs_proto::generate_lock(&cfg, &root) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jrs-proto: I/O error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Dump every registered protocol-enum variant's construct/handle
/// sites, grouped by crate — the evidence base for calibrating the
/// W003 handler registry.
fn matrix(args: &[String]) -> ExitCode {
    let Some((root, _)) = parse_opts(args, false) else { return usage() };
    let cfg = ProtoConfig::workspace();
    let model = match jrs_proto::workspace_model(&cfg, &root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("jrs-proto: I/O error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for m in &cfg.matrix {
        println!("== {} (handlers expected in: {}) ==", m.name, m.handler_crates.join(", "));
        let Some(def) = model.flow.enum_def(&m.name) else {
            println!("  (no enum definition found)");
            continue;
        };
        for variant in &def.variants {
            println!("  {}::{variant}", m.name);
            for u in model
                .uses
                .iter()
                .filter(|u| u.enum_name == m.name && &u.variant == variant)
            {
                println!(
                    "    {:9} [{}] in {} ({}:{})",
                    format!("{:?}", u.kind),
                    u.crate_key,
                    u.in_fn,
                    u.path,
                    u.line
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_rules() {
    println!("jrs-proto rule set (wire-protocol & codec conformance)\n");
    println!(
        "W001  codec symmetry: encode and decode read/write the same fields in\n      \
         the same order (field-level diff witness on divergence); enum codecs\n      \
         write/read the discriminant first and reject unknown tags\n"
    );
    println!(
        "W002  tag stability: enum discriminants unique and dense, and the whole\n      \
         schema pinned against the committed proto.lock manifest — drift vs\n      \
         on-disk WAL/snapshot data is a hard error\n"
    );
    println!(
        "W003  send/handle matrix: every constructed protocol-enum variant is\n      \
         handled in its receiving role's crates; never-constructed variants\n      \
         are dead protocol surface\n"
    );
    println!(
        "W004  decode-side bounds: decoded lengths pass a checked limit helper\n      \
         before sizing any allocation; the helpers themselves must enforce an\n      \
         explicit maximum and a remaining-bytes bound\n"
    );
    println!(
        "WSUP  suppressions must name a known rule, carry a reason, and be\n      \
         load-bearing; the opaque-codec allowlist is audited for staleness\n"
    );
    let cfg = ProtoConfig::workspace();
    println!("foundation codec layer (exempt from the structural mirror):");
    for p in &cfg.foundation_paths {
        println!("  {p}");
    }
    println!("\naudited opaque codecs:");
    for (t, why) in &cfg.opaque_allow {
        println!("  {t} — {why}");
    }
    println!("\nsend/handle matrix:");
    for m in &cfg.matrix {
        println!("  {} -> [{}] — {}", m.name, m.handler_crates.join(", "), m.why);
    }
    println!("\nchecked length helpers: {}", cfg.len_helpers.join(", "));
    println!("ignored fns (size estimators): {}", cfg.ignore_fns.join(", "));
}
