//! The protocol model jrs-proto extracts from the workspace: every
//! `impl Codec` parsed into ordered encode/decode shapes, and every
//! registered protocol-enum variant occurrence classified as a
//! construct (send) or handle (match/destructure) site.
//!
//! Built by [`crate::extract::build`] on top of jrs-flow's file facts
//! (function spans, enum definitions, `match` sites) and consumed by
//! [`crate::rules`] (the W-rules) and [`crate::lock`] (the pinned
//! schema manifest).

use jrs_detlint::scanner::Pragma;
use jrs_flow::model::Model;

/// One recognized operation in an `encode` body, in source order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncOp {
    /// An integer-literal discriminant write (`3u8.encode(out)`) or a
    /// tag-table entry (`let tag: u8 = match self { V => 3, .. }`).
    Tag {
        /// Discriminant value.
        value: u64,
        /// Primitive width in bits (8/16/32/64).
        width: u8,
    },
    /// A named value write: `self.field.encode(out)`, a bound pattern
    /// name inside a match arm (`session.encode(out)`), or a tuple
    /// index (`self.0` yields `"0"`).
    Val(String),
    /// Anything the scanner cannot classify (method-call chains etc) —
    /// forces the codec into the audited opaque allowlist.
    Opaque(String),
}

/// One decoded field on the `decode` side.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecField {
    /// Field name for struct / struct-variant literals; `None` for
    /// positional (tuple) decodes.
    pub name: Option<String>,
    /// Head of the type the value is decoded as (`u64`, `ProcId`,
    /// `ReplicaState` …) when written explicitly; `None` for inferred
    /// `Codec::decode` calls.
    pub ty: Option<String>,
}

/// One variant's encode arm.
#[derive(Clone, Debug)]
pub struct VariantEnc {
    /// Variant name.
    pub name: String,
    /// 1-based line of the arm pattern.
    pub line: usize,
    /// Discriminant written first (or the tag-table value); `None`
    /// when the arm writes fields before any tag — a W001 violation.
    pub tag: Option<u64>,
    /// Width of the discriminant write, when present.
    pub tag_width: Option<u8>,
    /// Field writes after the tag.
    pub ops: Vec<EncOp>,
}

/// One variant's decode arm.
#[derive(Clone, Debug)]
pub struct VariantDec {
    /// Variant name.
    pub name: String,
    /// 1-based line of the arm.
    pub line: usize,
    /// Discriminant matched.
    pub tag: u64,
    /// Named fields (struct variants), decode order; empty for unit
    /// and tuple variants.
    pub fields: Vec<DecField>,
    /// Positional arity for tuple variants.
    pub tuple_arity: Option<usize>,
}

/// Parsed shape of an `encode` body.
#[derive(Clone, Debug)]
pub enum EncSide {
    /// Plain op sequence (struct / tuple-struct codec).
    Struct(Vec<EncOp>),
    /// `match self { .. }` over the enum's variants.
    Enum {
        /// Discriminant width, when determinable.
        width: Option<u8>,
        /// Arms in source order.
        variants: Vec<VariantEnc>,
    },
    /// Unparseable — needs an audited allowlist entry.
    Opaque(String),
}

/// Parsed shape of a `decode` body.
#[derive(Clone, Debug)]
pub enum DecSide {
    /// Named-field struct literal, in decode order.
    Struct(Vec<DecField>),
    /// Positional construction `Ok(T(..))` — arity only.
    Tuple(usize),
    /// `match uN::decode(r)? { .. }`.
    Enum {
        /// Discriminant width read.
        width: u8,
        /// Tag arms in source order.
        arms: Vec<VariantDec>,
        /// Has a `_ => Err(..)` arm rejecting unknown tags.
        rejects_unknown: bool,
    },
    /// Unparseable — needs an audited allowlist entry.
    Opaque(String),
}

/// One `impl Codec for T` pair (encode + decode).
#[derive(Clone, Debug)]
pub struct CodecImpl {
    /// The implementing type.
    pub type_name: String,
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line of `fn encode`.
    pub enc_line: usize,
    /// 1-based line of `fn decode`.
    pub dec_line: usize,
    /// Parsed encode side.
    pub enc: EncSide,
    /// Parsed decode side.
    pub dec: DecSide,
}

/// How a protocol-enum variant occurrence is used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UseKind {
    /// Pattern position — match arm, `if let`, `let .. else`,
    /// `matches!`: the variant is consumed here.
    Handle,
    /// Expression position: the variant is constructed (sent) here.
    Construct,
}

/// One protocol-enum variant occurrence outside its codec.
#[derive(Clone, Debug)]
pub struct VariantUse {
    /// The enum.
    pub enum_name: String,
    /// The variant.
    pub variant: String,
    /// Workspace-relative file.
    pub path: String,
    /// Crate key of the file.
    pub crate_key: String,
    /// 1-based line.
    pub line: usize,
    /// Construct or handle.
    pub kind: UseKind,
    /// Qualified name of the enclosing function (diagnostics).
    pub in_fn: String,
}

/// Per-file scan artifacts: the comment/string-blanked lines (W004
/// scans them for allocation sinks) and the file's proto pragmas
/// (`// proto: allow(W00x): reason`).
#[derive(Clone, Debug)]
pub struct FileScan {
    /// Workspace-relative file.
    pub path: String,
    /// Clean (blanked) source lines, 1-based via index + 1.
    pub lines: Vec<String>,
    /// Pragmas in line order.
    pub pragmas: Vec<Pragma>,
}

/// The whole-workspace protocol model.
#[derive(Debug)]
pub struct ProtoModel {
    /// The underlying jrs-flow model (enum/struct definitions, fn
    /// spans, raw text — used for type cross-checks and W004).
    pub flow: Model,
    /// Every parsed `impl Codec`.
    pub codecs: Vec<CodecImpl>,
    /// Every registered protocol-enum variant occurrence.
    pub uses: Vec<VariantUse>,
    /// Per-file clean lines and proto pragmas.
    pub scans: Vec<FileScan>,
}

impl ProtoModel {
    /// The codec for `type_name`, if any.
    pub fn codec(&self, type_name: &str) -> Option<&CodecImpl> {
        self.codecs.iter().find(|c| c.type_name == type_name)
    }
}
