//! Coverage for the sim-harness embedding paths not exercised elsewhere:
//! the injected Leave command, heartbeat-driven stability GC timing, and
//! view inspection through the wrapper.

use jrs_gcs::config::GroupConfig;
use jrs_gcs::simharness::{GcsCommand, GcsProcess};
use jrs_gcs::GcsEvent;
use jrs_sim::{NetworkConfig, ProcId, SimDuration, SimTime, World};

type Payload = u32;

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn build(n: u32, seed: u64) -> (World, Vec<ProcId>) {
    let mut world = World::with_network(seed, NetworkConfig::default());
    let ids: Vec<ProcId> = (0..n).map(ProcId).collect();
    for i in 0..n {
        let node = world.add_node(format!("m{i}"));
        let p = world.add_process(
            node,
            GcsProcess::<Payload>::new(ids[i as usize], GroupConfig::default(), ids.clone()),
        );
        assert_eq!(p, ids[i as usize]);
    }
    (world, ids)
}

#[test]
fn injected_leave_removes_member_quickly() {
    let (mut world, ids) = build(3, 4);
    world.schedule_at(at(500), move |w| {
        w.inject(ProcId(1), GcsCommand::<Payload>::Leave);
    });
    world.run_until(at(3000));
    // The leaver's process exited voluntarily.
    assert!(!world.is_proc_alive(ids[1]));
    // Remaining members installed the 2-member view.
    for &p in [ids[0], ids[2]].iter() {
        let m = world.proc_ref::<GcsProcess<Payload>>(p).unwrap().member();
        assert_eq!(m.view().members, vec![ids[0], ids[2]]);
    }
    // A leave is condemned instantly: the view change should appear well
    // before a full failure-detection timeout would have fired. Verify via
    // the emitted ViewChange timestamps.
    let events = world.take_emitted::<GcsEvent<Payload>>();
    let vc_at = events
        .iter()
        .find_map(|(t, _, e)| match e {
            GcsEvent::ViewChange { .. } => Some(*t),
            _ => None,
        })
        .expect("a view change must have been emitted");
    assert!(
        vc_at < at(1500),
        "leave-triggered view change too slow: {vc_at}"
    );
}

#[test]
fn wrapper_exposes_tick_interval_and_member() {
    let cfg = GroupConfig::default();
    let tick = cfg.tick_every;
    let proc = GcsProcess::<Payload>::new(ProcId(0), cfg, vec![ProcId(0)]);
    assert_eq!(proc.tick_interval(), tick);
    assert_eq!(proc.member().me(), ProcId(0));
}

#[test]
fn broadcast_after_membership_churn_still_totally_ordered() {
    let (mut world, ids) = build(4, 9);
    // Kill one member, then broadcast from every survivor.
    let dead = ids[2];
    world.schedule_at(at(300), move |w| {
        let node = w.node_of(dead);
        w.crash_node(node);
    });
    for i in 0..12u32 {
        let who = ids[(i % 4) as usize];
        world.schedule_at(at(600 + i as u64 * 40), move |w| {
            if w.is_proc_alive(who) {
                w.inject(who, GcsCommand::Broadcast(i));
            }
        });
    }
    world.run_until(at(8000));
    let mut per_member: std::collections::BTreeMap<ProcId, Vec<(u64, u32)>> = Default::default();
    for (_, from, ev) in world.take_emitted::<GcsEvent<Payload>>() {
        if let GcsEvent::Deliver { seq, payload, .. } = ev {
            per_member.entry(from).or_default().push((seq, payload));
        }
    }
    let survivors = [ids[0], ids[1], ids[3]];
    let reference = per_member.get(&survivors[0]).expect("deliveries");
    // 9 broadcasts issued (the dead member's 3 slots skipped).
    assert_eq!(reference.len(), 9);
    for s in &survivors {
        assert_eq!(per_member.get(s), Some(reference), "{s} diverged");
    }
}
