//! Property-based tests: for arbitrary interleavings of broadcasts,
//! crashes, leaves and joins, the group communication system must uphold
//! its core invariants:
//!
//! 1. **Agreement** — all surviving members deliver the same sequence.
//! 2. **Gap-free total order** — delivered sequence numbers are 1..n.
//! 3. **FIFO per origin** — one origin's payloads are delivered in
//!    submission order.
//! 4. **No survivor loss** — a payload submitted by a member that stays
//!    alive to the end is eventually delivered.
//! 5. **Prefix property** — a crashed member's delivery sequence is a
//!    prefix-compatible subsequence of the survivors' (it never delivered
//!    something different at the same position).

use jrs_gcs::config::GroupConfig;
use jrs_gcs::testkit::Pump;
use jrs_sim::{ProcId, SimDuration};
use proptest::prelude::*;

/// One step of a randomized schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Member (index into the live set) broadcasts.
    Broadcast(u8),
    /// Advance time by a few ticks.
    Advance(u8),
    /// Crash the member with this index (if more than one remains).
    Crash(u8),
    /// Voluntary leave (if more than one remains).
    Leave(u8),
    /// Add a fresh joiner.
    Join,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => any::<u8>().prop_map(Step::Broadcast),
        3 => (1u8..6).prop_map(Step::Advance),
        1 => any::<u8>().prop_map(Step::Crash),
        1 => any::<u8>().prop_map(Step::Leave),
        1 => Just(Step::Join),
    ]
}

#[derive(Clone, Debug, Default)]
struct Model {
    /// Per-origin submitted payloads, in order.
    submitted: std::collections::BTreeMap<ProcId, Vec<u32>>,
}

fn run_schedule(n_members: u32, steps: &[Step]) -> (Pump<u32>, Model) {
    let mut pump: Pump<u32> = Pump::group(n_members, GroupConfig::default());
    let mut model = Model::default();
    let mut next_payload = 0u32;
    let mut next_joiner = 100u32;
    let tick = SimDuration::from_millis(5);
    for step in steps {
        match step {
            Step::Broadcast(sel) => {
                let ids: Vec<ProcId> = pump.members.keys().copied().collect();
                if ids.is_empty() {
                    break;
                }
                let who = ids[*sel as usize % ids.len()];
                // Only count submissions from installed members: a joiner
                // queues them too, but if it never finishes joining the
                // payload is legitimately never delivered.
                let installed = pump.members[&who].is_installed();
                pump.broadcast(who, next_payload);
                if installed {
                    model.submitted.entry(who).or_default().push(next_payload);
                }
                next_payload += 1;
            }
            Step::Advance(k) => {
                for _ in 0..*k {
                    pump.tick(tick);
                }
            }
            Step::Crash(sel) => {
                let ids: Vec<ProcId> = pump.members.keys().copied().collect();
                if ids.len() > 1 {
                    let who = ids[*sel as usize % ids.len()];
                    pump.crash(who);
                    model.submitted.remove(&who);
                }
            }
            Step::Leave(sel) => {
                let ids: Vec<ProcId> = pump.members.keys().copied().collect();
                if ids.len() > 1 {
                    let who = ids[*sel as usize % ids.len()];
                    pump.leave(who);
                    model.submitted.remove(&who);
                }
            }
            Step::Join => {
                let contacts: Vec<ProcId> = pump.members.keys().copied().collect();
                if !contacts.is_empty() {
                    pump.add_joiner(ProcId(next_joiner), contacts, GroupConfig::default());
                    next_joiner += 1;
                }
            }
        }
    }
    // Let everything settle: detection + flush + retries.
    pump.tick_for(tick, SimDuration::from_secs(3));
    (pump, model)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn agreement_under_random_schedules(
        n in 2u32..5,
        steps in prop::collection::vec(step_strategy(), 1..40),
    ) {
        let (pump, model) = run_schedule(n, &steps);

        // (1) Pairwise content agreement: no two processes (live or dead,
        // before or after ejection) ever delivered different payloads at
        // the same total-order position.
        let live: Vec<ProcId> = pump.members.keys().copied().collect();
        prop_assert!(!live.is_empty());
        let mut by_seq: std::collections::BTreeMap<u64, u32> = Default::default();
        for (p, dl) in &pump.delivered {
            for d in dl {
                match by_seq.get(&d.seq) {
                    None => {
                        by_seq.insert(d.seq, d.payload);
                    }
                    Some(&x) => prop_assert_eq!(
                        x, d.payload,
                        "member {} delivered a different payload at seq {}",
                        p, d.seq
                    ),
                }
            }
        }

        // (2) Gap-free order: a never-ejected member's delivered seqs are
        // contiguous from its first delivery (ejection legitimately skips
        // history — the application receives a state snapshot instead).
        for p in &live {
            if pump.ejections.get(p).copied().unwrap_or(0) > 0 {
                continue;
            }
            if let Some(dl) = pump.delivered.get(p) {
                for w in dl.windows(2) {
                    prop_assert_eq!(
                        w[1].seq, w[0].seq + 1,
                        "gap in member {}'s delivery order", p
                    );
                }
            }
        }

        // Reference history for the per-origin checks: the union over all
        // members, which (1) proved consistent.
        let reference: Vec<(u64, u32)> =
            by_seq.iter().map(|(&s, &x)| (s, x)).collect();

        // (3) FIFO per origin + (4) no survivor loss.
        for (origin, submitted) in &model.submitted {
            if !pump.members.contains_key(origin) {
                continue; // crashed after submitting: loss is allowed
            }
            // Find the origin's payloads in the reference order.
            let delivered_from_origin: Vec<u32> = reference
                .iter()
                .map(|(_, pay)| *pay)
                .filter(|pay| submitted.contains(pay))
                .collect();
            let ejected = pump.ejections.get(origin).copied().unwrap_or(0) > 0;
            if ejected {
                // An ejected member loses its pending (unacknowledged)
                // submissions — the client layer retries those. What *was*
                // delivered must still respect submission order.
                let mut it = submitted.iter();
                let in_order = delivered_from_origin
                    .iter()
                    .all(|d| it.any(|s| s == d));
                prop_assert!(
                    in_order,
                    "origin {} deliveries reordered: {:?} vs submitted {:?}",
                    origin, delivered_from_origin, submitted
                );
            } else {
                prop_assert_eq!(
                    &delivered_from_origin, submitted,
                    "origin {} payloads lost or reordered", origin
                );
            }
        }

        // (5) is subsumed by (1): crashed members' logs participate in the
        // pairwise same-seq agreement above.
    }
}
