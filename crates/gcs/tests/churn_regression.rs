//! Regression test distilled from a proptest counterexample: a surviving
//! original member is ejected during a storm of joins and leaves; its
//! pending (unacknowledged) submission is wiped by the ejection reset, but
//! the group must still converge to a consistent, live view.

use jrs_gcs::config::GroupConfig;
use jrs_gcs::testkit::Pump;
use jrs_sim::{ProcId, SimDuration};

#[test]
fn churn_storm_converges_despite_ejection() {
    let mut pump: Pump<u32> = Pump::group(3, GroupConfig::default());
    let tick = SimDuration::from_millis(5);
    pump.leave(ProcId(0));
    pump.add_joiner(ProcId(100), vec![ProcId(1), ProcId(2)], GroupConfig::default());
    pump.leave(ProcId(1));
    pump.tick(tick);
    pump.add_joiner(ProcId(101), vec![ProcId(2), ProcId(100)], GroupConfig::default());
    pump.add_joiner(ProcId(102), vec![ProcId(2), ProcId(100), ProcId(101)], GroupConfig::default());
    pump.crash(ProcId(101));
    pump.add_joiner(ProcId(103), vec![ProcId(2), ProcId(100), ProcId(102)], GroupConfig::default());
    pump.leave(ProcId(102));
    pump.tick(tick);
    pump.leave(ProcId(103));
    pump.broadcast(ProcId(2), 0);
    pump.tick_for(tick, SimDuration::from_secs(3));

    // Both survivors converge to the same installed, unblocked view.
    assert_eq!(pump.view_of(ProcId(2)), vec![ProcId(2), ProcId(100)]);
    assert_eq!(pump.view_of(ProcId(100)), vec![ProcId(2), ProcId(100)]);
    for id in [ProcId(2), ProcId(100)] {
        assert!(pump.members[&id].is_installed());
        assert!(!pump.members[&id].is_blocked());
    }
    // The submission either survived (delivered everywhere) or its origin
    // was ejected and legitimately lost the pending. Either way, the group
    // is live afterwards.
    let delivered = pump.delivered_payloads(ProcId(2)).contains(&0);
    let ejected = pump.ejections.get(&ProcId(2)).copied().unwrap_or(0) > 0;
    assert!(delivered || ejected, "payload silently lost without ejection");
    pump.broadcast(ProcId(100), 7);
    // Followers deliver after the collector's (tick-batched) stability
    // announcement.
    pump.tick(tick);
    pump.tick(tick);
    assert!(pump.delivered_payloads(ProcId(2)).contains(&7));
    assert!(pump.delivered_payloads(ProcId(100)).contains(&7));
    pump.assert_agreement();
    pump.assert_same_view_delivery();
}
