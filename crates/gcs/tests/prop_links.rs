//! Property-based test of the reliable link layer: under arbitrary loss,
//! duplication and reordering of wire frames, the receiver delivers the
//! sender's message sequence exactly once, in order, as long as
//! retransmission eventually gets a frame through.

use jrs_gcs::link::LinkManager;
use jrs_gcs::msg::{GcsMsg, Wire};
use jrs_gcs::ViewId;
use jrs_sim::{ProcId, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::VecDeque;

const PEER: ProcId = ProcId(1);

fn msg(n: u64) -> GcsMsg<u32> {
    GcsMsg::Heartbeat {
        view_id: ViewId { num: n, coord: ProcId(0) },
        view_size: 1,
        delivered_up_to: 0,
    }
}

fn msg_id(m: &GcsMsg<u32>) -> u64 {
    match m {
        GcsMsg::Heartbeat { view_id, .. } => view_id.num,
        _ => unreachable!(),
    }
}

/// Per-frame adversary decision, derived from a random byte.
#[derive(Clone, Copy, Debug)]
enum Fate {
    Deliver,
    Drop,
    Duplicate,
    DelayBehindNext,
}

fn fate(b: u8) -> Fate {
    match b % 8 {
        0..=3 => Fate::Deliver,
        4 => Fate::Drop,
        5 => Fate::Duplicate,
        _ => Fate::DelayBehindNext,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn reliable_fifo_exactly_once(
        n_msgs in 1usize..40,
        fates in prop::collection::vec(any::<u8>(), 1..400),
    ) {
        let rto = SimDuration::from_millis(10);
        let mut tx: LinkManager<u32> = LinkManager::new(rto);
        let mut rx: LinkManager<u32> = LinkManager::new(rto);
        let mut now = SimTime::ZERO;

        // The sender frames all messages up front.
        let mut in_flight: VecDeque<Wire<u32>> = (0..n_msgs as u64)
            .map(|i| tx.send(now, PEER, msg(i + 1)))
            .collect();
        let mut delivered: Vec<u64> = Vec::new();
        // The adversary has a finite mischief budget (the `fates` vector);
        // once it is spent every frame is delivered — any reliable
        // protocol only promises delivery under finite interference.
        let mut fate_iter = fates.iter();

        // Adversarial delivery loop; retransmissions refill the queue.
        let mut rounds = 0;
        while delivered.len() < n_msgs && rounds < 5000 {
            rounds += 1;
            if let Some(frame) = in_flight.pop_front() {
                match fate_iter.next().map(|b| fate(*b)).unwrap_or(Fate::Deliver) {
                    Fate::Drop => {}
                    Fate::Duplicate => {
                        in_flight.push_back(frame.clone());
                        let inb = rx.on_wire(now, PEER, frame);
                        delivered.extend(inb.deliver.iter().map(msg_id));
                        if let Some(reply) = inb.reply {
                            let _ = tx.on_wire(now, PEER, reply);
                        }
                    }
                    Fate::DelayBehindNext => in_flight.push_back(frame),
                    Fate::Deliver => {
                        let inb = rx.on_wire(now, PEER, frame);
                        delivered.extend(inb.deliver.iter().map(msg_id));
                        if let Some(reply) = inb.reply {
                            let _ = tx.on_wire(now, PEER, reply);
                        }
                    }
                }
            } else {
                // Queue drained without full delivery: let the RTO expire
                // and collect retransmissions.
                now += rto;
                for (_, frame) in tx.tick(now) {
                    in_flight.push_back(frame);
                }
            }
        }

        // Exactly once, in order.
        let want: Vec<u64> = (1..=n_msgs as u64).collect();
        prop_assert_eq!(delivered, want);
        // Drain remaining frames cleanly: nothing further may deliver.
        while let Some(frame) = in_flight.pop_front() {
            let inb = rx.on_wire(now, PEER, frame);
            prop_assert!(inb.deliver.is_empty(), "late duplicate delivered twice");
        }
    }
}
