//! Regression test for a flush-protocol wedge found by the `jrs-mc`
//! bounded model checker (minimized counterexample: `submit,
//! deliver:0-2, tick, deliver:2-0, tick, deliver:0-2, tick, tick,
//! tick`, then quiescence).
//!
//! Transient asymmetric silence makes p0 suspect p1 and start a flush
//! proposing `[p0, p2]`; ten milliseconds later p0 also suspects p2 and
//! *restarts* with proposal `[p0]`. Before the fixes this orphaned p2:
//!
//! 1. the restarted attempt never aborted the superseded epoch, so p2
//!    stayed `Blocked` on a flush nobody was coordinating;
//! 2. a blocked member's stall handling only condemned the coordinator
//!    locally — the next heartbeat cleared the condemnation and the
//!    member halted forever instead of taking over or resuming;
//! 3. acks absorbed by the collector while halted advanced stability
//!    without setting the announce flag, so followers never learned the
//!    message was stable even after everyone resumed.
//!
//! With the fixes, the group heals in place (no view change is needed —
//! the silence was transient) and all members deliver.

use jrs_gcs::testkit::Pump;
use jrs_gcs::{EngineKind, GroupConfig, MembershipPolicy};
use jrs_sim::{ProcId, SimDuration};

fn cfg() -> GroupConfig {
    GroupConfig {
        engine: EngineKind::Sequencer,
        membership: MembershipPolicy::PrimaryComponent,
        tick_every: SimDuration::from_millis(10),
        heartbeat_every: SimDuration::from_millis(20),
        fail_after: SimDuration::from_millis(45),
        rto: SimDuration::from_millis(15),
        flush_timeout: SimDuration::from_millis(60),
        token_idle_pass: SimDuration::from_millis(10),
        request_retry: SimDuration::from_millis(30),
        payload_bytes: 128,
    }
}

#[test]
fn orphaned_flush_epoch_recovers_and_delivers() {
    let mut pump: Pump<u64> = Pump::group(3, cfg());
    let _ = pump.take_events();
    pump.submit(ProcId(0), 7);
    // Asymmetric partial connectivity: only a few frames move between
    // p0 and p2 while p1 hears nothing, until p0's detector fires.
    assert!(pump.deliver_from(ProcId(0), ProcId(2)));
    pump.tick_members(SimDuration::from_millis(10));
    let _ = pump.deliver_from(ProcId(2), ProcId(0));
    pump.tick_members(SimDuration::from_millis(10));
    let _ = pump.deliver_from(ProcId(0), ProcId(2));
    for _ in 0..3 {
        pump.tick_members(SimDuration::from_millis(10));
    }
    // Heal: run to quiescence with regular ticks and full delivery.
    for _ in 0..28 {
        pump.tick_members(SimDuration::from_millis(10));
        pump.run();
        let _ = pump.take_events();
    }
    pump.assert_agreement();
    for (id, m) in &pump.members {
        assert!(
            !m.is_blocked(),
            "{id:?} must resume ordering after the orphaned flush"
        );
    }
    let d0 = pump.delivered_payloads(ProcId(0));
    assert_eq!(d0, vec![7], "p0 must deliver the payload");
    for p in [1u32, 2] {
        assert_eq!(
            pump.delivered_payloads(ProcId(p)),
            d0,
            "p{p} must deliver the same prefix"
        );
    }
}
