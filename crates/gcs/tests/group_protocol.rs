//! Protocol-level tests of the group member state machine, driven through
//! the in-memory pump (zero-latency FIFO network, manual time control).

use jrs_gcs::config::{EngineKind, GroupConfig};
use jrs_gcs::testkit::Pump;
use jrs_sim::{ProcId, SimDuration};

fn p(i: u32) -> ProcId {
    ProcId(i)
}

fn cfg(kind: EngineKind) -> GroupConfig {
    GroupConfig::with_engine(kind)
}

fn cfg_primary() -> GroupConfig {
    GroupConfig {
        membership: jrs_gcs::MembershipPolicy::PrimaryComponent,
        ..GroupConfig::default()
    }
}

const TICK: SimDuration = SimDuration::from_millis(5);

/// Tick long enough for failure detection + flush to complete.
fn settle(pump: &mut Pump<&'static str>) {
    pump.tick_for(TICK, SimDuration::from_millis(1500));
}

#[test]
fn bootstrap_group_agrees_on_initial_view() {
    let pump: Pump<&'static str> = Pump::group(3, cfg(EngineKind::Sequencer));
    for i in 0..3 {
        assert_eq!(pump.view_of(p(i)), vec![p(0), p(1), p(2)]);
        assert!(pump.members[&p(i)].is_installed());
    }
}

#[test]
fn broadcasts_totally_ordered_across_members() {
    let mut pump = Pump::group(3, cfg(EngineKind::Sequencer));
    pump.broadcast(p(0), "a");
    pump.broadcast(p(1), "b");
    pump.broadcast(p(2), "c");
    pump.broadcast(p(1), "d");
    let order = pump.assert_agreement();
    pump.assert_same_view_delivery();
    assert_eq!(order.len(), 4);
    // Sequence numbers are gap-free from 1.
    let seqs: Vec<u64> = order.iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, vec![1, 2, 3, 4]);
    // Everyone (including origins) delivered all four payloads.
    for i in 0..3 {
        assert_eq!(pump.delivered_payloads(p(i)).len(), 4);
    }
}

#[test]
fn fifo_per_origin_is_preserved() {
    let mut pump = Pump::group(2, cfg(EngineKind::Sequencer));
    for pay in ["m1", "m2", "m3", "m4", "m5"] {
        pump.broadcast(p(1), pay);
    }
    let d0 = pump.delivered_payloads(p(0));
    assert_eq!(d0, vec!["m1", "m2", "m3", "m4", "m5"]);
}

#[test]
fn crash_of_follower_shrinks_view_and_service_continues() {
    let mut pump = Pump::group(3, cfg(EngineKind::Sequencer));
    pump.broadcast(p(0), "before");
    pump.crash(p(2));
    settle(&mut pump);
    assert_eq!(pump.view_of(p(0)), vec![p(0), p(1)]);
    assert_eq!(pump.view_of(p(1)), vec![p(0), p(1)]);
    pump.broadcast(p(1), "after");
    pump.assert_agreement();
    assert_eq!(pump.delivered_payloads(p(0)), vec!["before", "after"]);
}

#[test]
fn crash_of_sequencer_reelects_and_preserves_pending() {
    let mut pump = Pump::group(3, cfg(EngineKind::Sequencer));
    pump.broadcast(p(0), "one");
    // Crash the sequencer (lowest rank = p0).
    pump.crash(p(0));
    // A member submits while the group is still detecting the failure;
    // the submission must survive the view change.
    let out = pump
        .members
        .get_mut(&p(1))
        .unwrap()
        .broadcast(pump.now, "two");
    // absorb manually
    for (to, frame, _) in out.wire {
        if let Some(m) = pump.members.get_mut(&to) {
            let o = m.on_wire(pump.now, p(1), frame);
            assert!(o.events.is_empty());
        }
    }
    settle(&mut pump);
    assert_eq!(pump.view_of(p(1)), vec![p(1), p(2)]);
    let d1 = pump.delivered_payloads(p(1));
    let d2 = pump.delivered_payloads(p(2));
    assert!(d1.contains(&"two"), "pending submission lost: {d1:?}");
    assert_eq!(d1, d2);
}

#[test]
fn simultaneous_double_crash_recovers() {
    let mut pump = Pump::group(4, cfg(EngineKind::Sequencer));
    pump.broadcast(p(3), "x");
    pump.crash(p(0));
    pump.crash(p(1));
    settle(&mut pump);
    assert_eq!(pump.view_of(p(2)), vec![p(2), p(3)]);
    assert_eq!(pump.view_of(p(3)), vec![p(2), p(3)]);
    pump.broadcast(p(2), "y");
    pump.assert_agreement();
    pump.assert_same_view_delivery();
}

#[test]
fn cascade_down_to_single_member() {
    let mut pump = Pump::group(4, cfg(EngineKind::Sequencer));
    for (i, pay) in ["a", "b", "c"].into_iter().enumerate() {
        pump.broadcast(p(i as u32), pay);
    }
    pump.crash(p(0));
    settle(&mut pump);
    pump.crash(p(1));
    settle(&mut pump);
    pump.crash(p(2));
    settle(&mut pump);
    assert_eq!(pump.view_of(p(3)), vec![p(3)]);
    // The last member still provides service.
    pump.broadcast(p(3), "solo");
    assert!(pump.delivered_payloads(p(3)).contains(&"solo"));
}

#[test]
fn voluntary_leave_is_fast() {
    let mut pump = Pump::group(3, cfg(EngineKind::Sequencer));
    pump.leave(p(1));
    // Leave condemns immediately: a single failure-detection round is not
    // needed, only the flush. Give it a few ticks.
    pump.tick_for(TICK, SimDuration::from_millis(200));
    assert_eq!(pump.view_of(p(0)), vec![p(0), p(2)]);
    pump.broadcast(p(2), "post-leave");
    pump.assert_agreement();
}

#[test]
fn joiner_is_admitted_and_delivers_only_new_messages() {
    let mut pump = Pump::group(2, cfg(EngineKind::Sequencer));
    pump.broadcast(p(0), "old");
    pump.add_joiner(p(7), vec![p(0), p(1)], cfg(EngineKind::Sequencer));
    settle(&mut pump);
    assert_eq!(pump.view_of(p(0)), vec![p(0), p(1), p(7)]);
    assert_eq!(pump.view_of(p(7)), vec![p(0), p(1), p(7)]);
    pump.broadcast(p(7), "new");
    let d7 = pump.delivered_payloads(p(7));
    assert_eq!(d7, vec!["new"], "joiner must not see pre-join history");
    let d0 = pump.delivered_payloads(p(0));
    assert_eq!(d0, vec!["old", "new"]);
}

#[test]
fn join_then_crash_then_join_again() {
    let mut pump = Pump::group(2, cfg(EngineKind::Sequencer));
    pump.add_joiner(p(5), vec![p(0), p(1)], cfg(EngineKind::Sequencer));
    settle(&mut pump);
    assert_eq!(pump.view_of(p(0)).len(), 3);
    pump.crash(p(5));
    settle(&mut pump);
    assert_eq!(pump.view_of(p(0)).len(), 2);
    pump.add_joiner(p(6), vec![p(0), p(1)], cfg(EngineKind::Sequencer));
    settle(&mut pump);
    assert_eq!(pump.view_of(p(0)).len(), 3);
    pump.broadcast(p(6), "works");
    pump.assert_agreement();
    pump.assert_same_view_delivery();
}

#[test]
fn minority_partition_blocks_majority_continues() {
    let mut pump = Pump::group(3, cfg_primary());
    // Cut p2 off from p0 and p1.
    pump.partition(p(2), p(0));
    pump.partition(p(2), p(1));
    settle(&mut pump);
    // Majority side moved on.
    assert_eq!(pump.view_of(p(0)), vec![p(0), p(1)]);
    assert_eq!(pump.view_of(p(1)), vec![p(0), p(1)]);
    pump.broadcast(p(0), "majority-only");
    assert!(pump.delivered_payloads(p(0)).contains(&"majority-only"));
    // Minority side must NOT have formed its own one-node view.
    let v2 = pump.view_of(p(2));
    assert_ne!(v2, vec![p(2)], "minority formed a split-brain view");
    assert!(!pump.delivered_payloads(p(2)).contains(&"majority-only"));
}

#[test]
fn healed_minority_rejoins_via_ejection() {
    let mut pump = Pump::group(3, cfg_primary());
    pump.partition(p(2), p(0));
    pump.partition(p(2), p(1));
    settle(&mut pump);
    pump.broadcast(p(0), "while-away");
    pump.heal();
    // Needs: behind detection (2x flush timeout) + rejoin flush.
    pump.tick_for(TICK, SimDuration::from_secs(4));
    assert_eq!(pump.view_of(p(0)), vec![p(0), p(1), p(2)]);
    assert_eq!(pump.view_of(p(2)), vec![p(0), p(1), p(2)]);
    assert!(pump.ejections.get(&p(2)).copied().unwrap_or(0) >= 1);
    // After rejoining, p2 participates again.
    pump.broadcast(p(2), "back");
    assert!(pump.delivered_payloads(p(0)).contains(&"back"));
    assert!(pump.delivered_payloads(p(2)).contains(&"back"));
}

#[test]
fn token_engine_orders_across_members() {
    let mut pump = Pump::group(3, cfg(EngineKind::Token));
    pump.broadcast(p(2), "a");
    // Token must circulate before non-holders can order.
    pump.tick_for(TICK, SimDuration::from_millis(100));
    pump.broadcast(p(1), "b");
    pump.tick_for(TICK, SimDuration::from_millis(100));
    pump.broadcast(p(0), "c");
    pump.tick_for(TICK, SimDuration::from_millis(100));
    let order = pump.assert_agreement();
    assert_eq!(order.len(), 3);
    for i in 0..3 {
        assert_eq!(pump.delivered_payloads(p(i)).len(), 3);
    }
}

#[test]
fn token_engine_survives_holder_crash() {
    let mut pump = Pump::group(3, cfg(EngineKind::Token));
    pump.broadcast(p(0), "pre");
    pump.tick_for(TICK, SimDuration::from_millis(50));
    // Crash the leader (token origin).
    pump.crash(p(0));
    settle(&mut pump);
    assert_eq!(pump.view_of(p(1)), vec![p(1), p(2)]);
    pump.broadcast(p(1), "post");
    pump.tick_for(TICK, SimDuration::from_millis(200));
    let d1 = pump.delivered_payloads(p(1));
    let d2 = pump.delivered_payloads(p(2));
    assert!(d1.contains(&"post"));
    assert_eq!(d1, d2);
}

#[test]
fn stability_gc_bounds_log_growth() {
    let mut pump = Pump::group(3, cfg(EngineKind::Sequencer));
    for i in 0..200 {
        let pay: &'static str = Box::leak(format!("m{i}").into_boxed_str());
        pump.broadcast(p(i % 3), pay);
        if i % 10 == 0 {
            // Let heartbeats carry stability info.
            pump.tick(SimDuration::from_millis(60));
        }
    }
    pump.tick_for(SimDuration::from_millis(60), SimDuration::from_millis(600));
    for i in 0..3 {
        let log = pump.members[&p(i)].log_len();
        assert!(log < 50, "member {i} log grew to {log} entries (GC broken)");
    }
    pump.assert_agreement();
}

#[test]
fn hundreds_of_broadcasts_remain_consistent() {
    let mut pump = Pump::group(4, cfg(EngineKind::Sequencer));
    for i in 0..300u32 {
        let pay: &'static str = Box::leak(format!("j{i}").into_boxed_str());
        pump.broadcast(p(i % 4), pay);
    }
    let order = pump.assert_agreement();
    assert_eq!(order.len(), 300);
}

#[test]
fn view_change_during_burst_loses_nothing_from_survivors() {
    let mut pump = Pump::group(3, cfg(EngineKind::Sequencer));
    for i in 0..20u32 {
        let pay: &'static str = Box::leak(format!("pre{i}").into_boxed_str());
        pump.broadcast(p(i % 3), pay);
    }
    pump.crash(p(0));
    // Survivors keep submitting during the reconfiguration window.
    for i in 0..10u32 {
        let who = p(1 + (i % 2));
        let pay: &'static str = Box::leak(format!("mid{i}").into_boxed_str());
        let out = pump.members.get_mut(&who).unwrap().broadcast(pump.now, pay);
        for (to, frame, _) in out.wire {
            if let Some(m) = pump.members.get_mut(&to) {
                let _ = m.on_wire(pump.now, who, frame);
            }
        }
    }
    settle(&mut pump);
    pump.run();
    let d1 = pump.delivered_payloads(p(1));
    let d2 = pump.delivered_payloads(p(2));
    assert_eq!(d1, d2, "survivors diverged");
    for i in 0..10 {
        let want = format!("mid{i}");
        assert!(d1.iter().any(|s| *s == want), "lost survivor submission {want}");
    }
}
