//! The group communication system over the realistic `jrs-sim` network:
//! latency jitter, shared-hub contention, message loss and node crashes.

use jrs_gcs::config::GroupConfig;
use jrs_gcs::simharness::{GcsCommand, GcsProcess};
use jrs_gcs::GcsEvent;
use jrs_sim::{NetworkConfig, NodeId, ProcId, SimDuration, SimTime, World};
use std::collections::BTreeMap;

type Payload = u32;

struct Cluster {
    world: World,
    procs: Vec<ProcId>,
    nodes: Vec<NodeId>,
}

fn build(n: u32, seed: u64, net: NetworkConfig, cfg: GroupConfig) -> Cluster {
    let mut world = World::with_network(seed, net);
    let mut nodes = Vec::new();
    // ProcIds are assigned sequentially from 0 by the world, so the member
    // list is known up front.
    let ids: Vec<ProcId> = (0..n).map(ProcId).collect();
    let mut procs = Vec::new();
    for i in 0..n {
        let node = world.add_node(format!("head-{i}"));
        nodes.push(node);
        let p = world.add_process(node, GcsProcess::<Payload>::new(ids[i as usize], cfg.clone(), ids.clone()));
        assert_eq!(p, ids[i as usize]);
        procs.push(p);
    }
    Cluster { world, procs, nodes }
}

/// Collect per-member delivered payload sequences from emitted events.
fn deliveries(world: &mut World) -> BTreeMap<ProcId, Vec<(u64, Payload)>> {
    let mut map: BTreeMap<ProcId, Vec<(u64, Payload)>> = BTreeMap::new();
    for (_t, from, ev) in world.take_emitted::<GcsEvent<Payload>>() {
        if let GcsEvent::Deliver { seq, payload, .. } = ev {
            map.entry(from).or_default().push((seq, payload));
        }
    }
    map
}

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

#[test]
fn agreement_over_default_hub_network() {
    let mut c = build(4, 11, NetworkConfig::default(), GroupConfig::default());
    // 40 broadcasts interleaved from all members.
    for i in 0..40u32 {
        let who = c.procs[(i % 4) as usize];
        c.world.schedule_at(at(100 + i as u64 * 10), move |w| {
            w.inject(who, GcsCommand::Broadcast(i));
        });
    }
    c.world.run_until(at(3000));
    let d = deliveries(&mut c.world);
    let reference = &d[&c.procs[0]];
    assert_eq!(reference.len(), 40);
    for p in &c.procs {
        assert_eq!(&d[p], reference, "member {p} diverged");
    }
    // Gap-free sequence numbers.
    for (i, (seq, _)) in reference.iter().enumerate() {
        assert_eq!(*seq, i as u64 + 1);
    }
}

#[test]
fn agreement_under_five_percent_loss() {
    let mut net = NetworkConfig::default();
    net.lan.drop_prob = 50; // 5% loss, per-mille
    let mut c = build(3, 7, net, GroupConfig::default());
    for i in 0..30u32 {
        let who = c.procs[(i % 3) as usize];
        c.world.schedule_at(at(100 + i as u64 * 20), move |w| {
            w.inject(who, GcsCommand::Broadcast(i));
        });
    }
    c.world.run_until(at(8000));
    let d = deliveries(&mut c.world);
    let reference = &d[&c.procs[0]];
    assert_eq!(reference.len(), 30, "lost messages despite reliable links");
    for p in &c.procs {
        assert_eq!(&d[p], reference);
    }
    // Loss must actually have occurred for this test to mean anything.
    assert!(c.world.network().dropped_loss > 0);
}

#[test]
fn head_node_crash_mid_burst_over_sim() {
    let mut c = build(3, 23, NetworkConfig::default(), GroupConfig::default());
    for i in 0..30u32 {
        let who = c.procs[(i % 2 + 1) as usize]; // only members 1 and 2 submit
        c.world.schedule_at(at(100 + i as u64 * 15), move |w| {
            w.inject(who, GcsCommand::Broadcast(i));
        });
    }
    // Crash the sequencer (member 0) in the middle of the burst.
    let dead_node = c.nodes[0];
    c.world.schedule_at(at(300), move |w| w.crash_node(dead_node));
    c.world.run_until(at(6000));
    let d = deliveries(&mut c.world);
    let d1: Vec<(u64, Payload)> = d[&c.procs[1]].clone();
    let d2: Vec<(u64, Payload)> = d[&c.procs[2]].clone();
    // Survivors agree and eventually delivered every submission (each
    // submission survives in its origin's pending buffer across the view
    // change).
    assert_eq!(d1, d2, "survivors diverged after crash");
    let payloads: Vec<Payload> = d1.iter().map(|(_, p)| *p).collect();
    for i in 0..30u32 {
        assert!(payloads.contains(&i), "submission {i} lost across view change");
    }
    // View shrank to the survivors.
    let m1 = c
        .world
        .proc_ref::<GcsProcess<Payload>>(c.procs[1])
        .unwrap()
        .member();
    assert_eq!(m1.view().members, vec![c.procs[1], c.procs[2]]);
}

#[test]
fn deterministic_same_seed() {
    let run = |seed: u64| {
        let mut c = build(4, seed, NetworkConfig::default(), GroupConfig::default());
        for i in 0..20u32 {
            let who = c.procs[(i % 4) as usize];
            c.world.schedule_at(at(100 + i as u64 * 7), move |w| {
                w.inject(who, GcsCommand::Broadcast(i));
            });
        }
        let node = c.nodes[1];
        c.world.schedule_at(at(180), move |w| w.crash_node(node));
        c.world.run_until(at(4000));
        let d = deliveries(&mut c.world);
        (c.world.events_processed(), d)
    };
    let (e1, d1) = run(5);
    let (e2, d2) = run(5);
    assert_eq!(e1, e2, "same seed must process the same number of events");
    assert_eq!(d1, d2, "same seed must produce identical deliveries");
}

#[test]
fn long_soak_with_periodic_traffic_stays_stable() {
    // The paper reports Transis crashing after days of excessive load;
    // this soak pushes continuous traffic through the group and asserts
    // liveness, agreement and bounded memory (log GC) at the end.
    let mut c = build(3, 99, NetworkConfig::default(), GroupConfig::default());
    for i in 0..500u32 {
        let who = c.procs[(i % 3) as usize];
        c.world.schedule_at(at(50 + i as u64 * 20), move |w| {
            w.inject(who, GcsCommand::Broadcast(i));
        });
    }
    c.world.run_until(at(15_000));
    let d = deliveries(&mut c.world);
    let reference = &d[&c.procs[0]];
    assert_eq!(reference.len(), 500);
    for p in &c.procs {
        assert_eq!(&d[p], reference);
        let m = c.world.proc_ref::<GcsProcess<Payload>>(*p).unwrap().member();
        assert!(
            m.log_len() < 100,
            "ordered-message log not garbage collected: {}",
            m.log_len()
        );
    }
}
