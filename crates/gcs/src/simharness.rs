//! Embedding of a [`GroupMember`] into a `jrs-sim` process.
//!
//! This is both the reference embedding (joshua-core follows the same
//! pattern with application logic attached) and the vehicle for running
//! the group communication system over the realistic network model —
//! latency jitter, shared-hub contention, message loss, partitions and
//! node crashes.

use crate::config::GroupConfig;
use crate::group::{GroupMember, Output};
use crate::msg::Wire;
use jrs_sim::{Ctx, Msg, ProcId, Process, TimerId, EXTERNAL};

/// Commands the harness can inject into a [`GcsProcess`] (via
/// `World::inject`).
#[derive(Debug)]
pub enum GcsCommand<P> {
    /// Submit a payload for totally ordered broadcast.
    Broadcast(P),
    /// Announce a voluntary leave and exit the process.
    Leave,
}

/// A simulation process wrapping one group member.
///
/// Delivered messages, view changes and ejections are published through
/// `Ctx::emit` as [`GcsEvent`](crate::GcsEvent) values; drain them with
/// `World::take_emitted::<GcsEvent<P>>()`.
pub struct GcsProcess<P> {
    member: GroupMember<P>,
    tick_every: jrs_sim::SimDuration,
}

impl<P: Clone + 'static> GcsProcess<P> {
    /// Wrap a configured member.
    pub fn new(me: ProcId, config: GroupConfig, initial: Vec<ProcId>) -> Self {
        let tick_every = config.tick_every;
        GcsProcess { member: GroupMember::new(me, config, initial), tick_every }
    }

    /// Read-only access to the wrapped member (post-run inspection).
    pub fn member(&self) -> &GroupMember<P> {
        &self.member
    }

    fn flush_output(&mut self, ctx: &mut Ctx<'_>, out: Output<P>) {
        for (to, frame, bytes) in out.wire {
            ctx.send_sized(to, frame, bytes);
        }
        for ev in out.events {
            ctx.emit(ev);
        }
    }
}

impl<P: Clone + 'static> Process for GcsProcess<P> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let out = self.member.start(ctx.now());
        self.flush_output(ctx, out);
        let tick = self.tick_every;
        ctx.set_timer(tick, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Msg) {
        if from == EXTERNAL {
            // Unknown harness payloads are dropped, not fatal (F003).
            let Ok(cmd) = msg.downcast::<GcsCommand<P>>() else { return };
            match *cmd {
                GcsCommand::Broadcast(p) => {
                    let out = self.member.broadcast(ctx.now(), p);
                    self.flush_output(ctx, out);
                }
                GcsCommand::Leave => {
                    let out = self.member.leave(ctx.now());
                    self.flush_output(ctx, out);
                    ctx.exit();
                }
            }
            return;
        }
        let Ok(frame) = msg.downcast::<Wire<P>>() else { return };
        let now = ctx.now();
        let out = self.member.on_wire(now, from, *frame);
        self.flush_output(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId, _tag: u64) {
        let out = self.member.tick(ctx.now());
        self.flush_output(ctx, out);
        let tick = self.tick_every;
        ctx.set_timer(tick, 0);
    }
}

impl<P> GcsProcess<P> {
    /// The tick interval used by this embedding.
    pub fn tick_interval(&self) -> jrs_sim::SimDuration {
        self.tick_every
    }
}
