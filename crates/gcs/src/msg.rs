//! Wire messages exchanged between group members.

use crate::view::{View, ViewId};
use jrs_sim::ProcId;

/// Flush-protocol epoch: identifies one view-change attempt. Orders first by
/// the view being replaced, then by attempt counter, then by coordinator id
/// (so concurrent coordinators resolve deterministically).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch {
    /// The id of the view this flush is replacing.
    pub view_id: ViewId,
    /// Restart counter within that view change.
    pub attempt: u32,
    /// Which member is coordinating this attempt.
    pub coord: ProcId,
}

/// A message that has been assigned a global sequence number.
#[derive(Clone, Debug, PartialEq, Hash)]
pub struct OrderedMsg<P> {
    /// Global, gap-free sequence number (total order position).
    pub seq: u64,
    /// The member that originated the payload.
    pub origin: ProcId,
    /// Origin-local submission counter (for duplicate suppression across
    /// view changes).
    pub local_id: u64,
    /// Application payload.
    pub payload: P,
}

/// In-view ordering traffic; which variants appear depends on the engine.
#[derive(Clone, Debug, Hash)]
pub enum EngineMsg<P> {
    /// Sequencer engine: origin asks the sequencer to order a payload.
    Request {
        /// Origin-local submission counter.
        local_id: u64,
        /// Payload to order.
        payload: P,
    },
    /// Both engines: an ordered message multicast to the group.
    Ordered(OrderedMsg<P>),
    /// Both engines: cumulative stability ack — the sender holds every
    /// ordered message up to `up_to`. Delivery to the application waits
    /// until the whole view has acked (safe delivery / output commit).
    /// Sequencer engine: sent to the sequencer only; token engine: sent
    /// all-to-all.
    Ack {
        /// Highest contiguously received sequence number.
        up_to: u64,
    },
    /// Sequencer engine: the sequencer's stability announcement — every
    /// view member holds everything up to `up_to`; followers may deliver.
    Stable {
        /// Highest stable sequence number.
        up_to: u64,
    },
    /// Token engine: the rotating token.
    Token {
        /// Next sequence number to assign.
        next_seq: u64,
        /// How many consecutive holders passed it without ordering
        /// anything (used for idle-pass accounting, diagnostic only).
        idle_hops: u32,
    },
}

/// Digest of a member's ordering state, reported during a flush.
#[derive(Clone, Debug, Hash)]
pub struct FlushDigest<P> {
    /// Highest sequence number up to which this member has everything.
    pub max_contig: u64,
    /// Ordered messages this member holds with `seq > coord_known` (the
    /// coordinator asked relative to its own knowledge).
    pub extra: Vec<OrderedMsg<P>>,
    /// Per-origin highest ordered `local_id` this member has observed
    /// (duplicate suppression state, merged by the coordinator).
    pub dedup: Vec<(ProcId, u64)>,
}

/// Group communication wire protocol.
#[derive(Clone, Debug, Hash)]
pub enum GcsMsg<P> {
    /// Periodic liveness beacon; carries the sender's installed view id and
    /// contiguously-delivered sequence number (for stability/GC).
    Heartbeat {
        /// Sender's installed view.
        view_id: ViewId,
        /// Size of the sender's installed view (used by the deterministic
        /// split-brain merge rule under the fail-stop policy).
        view_size: u32,
        /// Sender has delivered everything up to here.
        delivered_up_to: u64,
    },
    /// A process outside the group asks to be let in. The incarnation
    /// counter distinguishes a fresh (re)join episode from duplicate
    /// datagrams of an old one.
    JoinReq {
        /// Joiner's join-episode counter.
        incarnation: u64,
    },
    /// A member announces it is leaving voluntarily (treated like a
    /// failure, per the paper).
    Leave,
    /// Coordinator starts a flush for a proposed next view.
    FlushReq {
        /// This attempt's epoch.
        epoch: Epoch,
        /// Proposed member set of the next view.
        proposed: Vec<ProcId>,
        /// Coordinator's own `max_contig`, so members only ship messages
        /// the coordinator might miss.
        coord_known: u64,
    },
    /// Member answers a `FlushReq` with its ordering digest.
    FlushInfo {
        /// Echoed epoch.
        epoch: Epoch,
        /// The member's digest.
        digest: FlushDigest<P>,
    },
    /// Coordinator concludes the flush: everyone delivers `msgs`, installs
    /// `view`, and the engine restarts at `next_seq`.
    FlushFinal {
        /// Echoed epoch.
        epoch: Epoch,
        /// The new view.
        view: View,
        /// Members of `view` that were not members of the previous view
        /// (joiners and rejoiners — they need application state transfer).
        joined: Vec<ProcId>,
        /// Ordered messages filling every member up to `next_seq - 1`;
        /// starts right after the smallest `max_contig` among old members.
        msgs: Vec<OrderedMsg<P>>,
        /// First sequence number of the new view.
        next_seq: u64,
        /// Per-origin dedup floor for the new view.
        dedup: Vec<(ProcId, u64)>,
    },
    /// Coordinator abandons a flush whose trigger disappeared (e.g. a
    /// falsely suspected member came back); blocked members resume in the
    /// current view.
    FlushAbort {
        /// The abandoned epoch.
        epoch: Epoch,
    },
    /// A member confirms it installed the view of `epoch`'s flush. The
    /// coordinator installs only after every proposed member acked,
    /// preventing a coordinator from unilaterally installing a view nobody
    /// else accepted.
    InstallAck {
        /// The epoch of the flush being acknowledged.
        epoch: Epoch,
    },
    /// In-view ordering traffic. Tagged with the sender's installed view so
    /// stragglers from superseded views are discarded.
    Engine {
        /// View the sender had installed when it sent this.
        view_id: ViewId,
        /// The engine message.
        msg: EngineMsg<P>,
    },
}

/// Link-layer framing: raw datagrams for idempotent periodic traffic,
/// sequenced data + cumulative acks for everything that must not be lost.
#[derive(Clone, Debug, Hash)]
pub enum Wire<P> {
    /// Fire-and-forget (heartbeats, join requests — both periodic).
    Raw(GcsMsg<P>),
    /// Reliable FIFO stream data.
    Data {
        /// Per-link sequence number.
        seq: u64,
        /// The framed message.
        msg: GcsMsg<P>,
    },
    /// Cumulative acknowledgement of stream data.
    Ack {
        /// Everything `<= cum` has been received.
        cum: u64,
    },
}

/// Saturating `usize → u32` length conversion for wire-size estimates
/// (a lossy `as` cast here would wrap on pathological inputs, D005).
fn len32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

impl<P> GcsMsg<P> {
    /// Approximate wire size in bytes, for the network model.
    pub fn wire_size(&self, payload_bytes: u32) -> u32 {
        match self {
            GcsMsg::Heartbeat { .. } => 64,
            GcsMsg::JoinReq { .. } => 48,
            GcsMsg::Leave => 48,
            GcsMsg::InstallAck { .. } => 56,
            GcsMsg::FlushAbort { .. } => 56,
            GcsMsg::FlushReq { proposed, .. } => 72 + 8 * len32(proposed.len()),
            GcsMsg::FlushInfo { digest, .. } => {
                96 + len32(digest.extra.len()) * (40 + payload_bytes)
                    + 16 * len32(digest.dedup.len())
            }
            GcsMsg::FlushFinal { msgs, view, joined, dedup, .. } => {
                96 + len32(msgs.len()) * (40 + payload_bytes)
                    + 8 * len32(view.members.len() + joined.len())
                    + 16 * len32(dedup.len())
            }
            GcsMsg::Engine { msg, .. } => match msg {
                EngineMsg::Request { .. } => 48 + payload_bytes,
                EngineMsg::Ordered(_) => 64 + payload_bytes,
                EngineMsg::Ack { .. } => 48,
                EngineMsg::Stable { .. } => 48,
                EngineMsg::Token { .. } => 56,
            },
        }
    }
}

impl<P> Wire<P> {
    /// Approximate wire size in bytes, for the network model.
    pub fn wire_size(&self, payload_bytes: u32) -> u32 {
        match self {
            Wire::Raw(m) => 16 + m.wire_size(payload_bytes),
            Wire::Data { msg, .. } => 24 + msg.wire_size(payload_bytes),
            Wire::Ack { .. } => 40,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_ordering() {
        let e = |v: u64, a, c| Epoch {
            view_id: ViewId { num: v, coord: ProcId(0) },
            attempt: a,
            coord: ProcId(c),
        };
        assert!(e(1, 0, 5) < e(2, 0, 1));
        assert!(e(2, 0, 9) < e(2, 1, 1));
        assert!(e(2, 1, 1) < e(2, 1, 2));
        assert_eq!(e(3, 2, 4), e(3, 2, 4));
        // Same counter, different coordinator: distinct view ids.
        let v1 = ViewId { num: 2, coord: ProcId(1) };
        let v2 = ViewId { num: 2, coord: ProcId(2) };
        assert!(v1 < v2);
        assert_ne!(v1, v2);
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = GcsMsg::Engine {
            view_id: ViewId { num: 1, coord: ProcId(0) },
            msg: EngineMsg::Ordered(OrderedMsg {
                seq: 1,
                origin: ProcId(0),
                local_id: 1,
                payload: (),
            }),
        };
        assert!(small.wire_size(64) < small.wire_size(4096));
        let hb: GcsMsg<()> = GcsMsg::Heartbeat {
            view_id: ViewId { num: 1, coord: ProcId(0) },
            view_size: 1,
            delivered_up_to: 0,
        };
        assert_eq!(hb.wire_size(64), hb.wire_size(4096));
    }

    #[test]
    fn flush_final_size_scales_with_msgs() {
        let mk = |n: usize| GcsMsg::FlushFinal {
            epoch: Epoch {
                view_id: ViewId { num: 1, coord: ProcId(0) },
                attempt: 0,
                coord: ProcId(0),
            },
            view: View::new(ViewId { num: 2, coord: ProcId(0) }, vec![ProcId(0)]),
            joined: vec![],
            msgs: (0..n)
                .map(|i| OrderedMsg {
                    seq: i as u64,
                    origin: ProcId(0),
                    local_id: i as u64,
                    payload: (),
                })
                .collect(),
            next_seq: n as u64,
            dedup: vec![],
        };
        assert!(mk(10).wire_size(100) > mk(1).wire_size(100));
    }
}
