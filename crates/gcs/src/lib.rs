//! # jrs-gcs — group communication for symmetric active/active replication
//!
//! A from-scratch replacement for the Transis group communication system
//! the JOSHUA paper builds on. It provides the guarantees JOSHUA's external
//! replication needs:
//!
//! * **Reliable, totally ordered multicast** — every member of a view
//!   delivers the same messages in the same order ([`GcsEvent::Deliver`]).
//! * **Fault-tolerant membership** — a heartbeat failure detector plus a
//!   coordinator-driven view-change flush agree on who is in the group
//!   ([`GcsEvent::ViewChange`]); joins, voluntary leaves and crash failures
//!   (single and simultaneous) are all membership changes.
//! * **Virtual synchrony** — members that survive from one view into the
//!   next deliver the same set of messages before the view change.
//! * **Primary-component semantics** — after a partition, only the side
//!   holding a quorum of the previous view makes progress; the minority
//!   blocks and its members later rejoin with state transfer.
//!
//! Two total-order engines are provided ([`EngineKind`]): a fixed
//! **sequencer** (ISIS-style, the default) and a rotating **token**
//! (Totem-style, used for the paper reproduction's ordering ablation).
//!
//! The member is a sans-IO state machine: embed a [`GroupMember`] in your
//! process, feed it `start`/`on_wire`/`tick`, transmit the frames it
//! returns, and react to the events. See `jrs-sim` for the simulation
//! substrate and `joshua-core` for the intended embedding.
//!
//! ## Fault model
//!
//! Fail-stop, like the paper: components fail by stopping, and a suspected
//! component is treated as failed. Under partitions the implementation
//! remains safe (quorum rule, unique view identifiers, epoch-fenced
//! flushes) but a minority component stalls by design. Byzantine behaviour
//! is out of scope, as it is for JOSHUA.

#![warn(missing_docs)]

pub mod config;
pub mod detector;
pub mod engine;
pub mod group;
pub mod link;
pub mod msg;
pub mod simharness;
pub mod testkit;
pub mod view;

pub use config::{EngineKind, GroupConfig, MembershipPolicy};
pub use group::{GcsEvent, GroupMember, GroupStats, Output};
pub use msg::{EngineMsg, Epoch, FlushDigest, GcsMsg, OrderedMsg, Wire};
pub use view::{View, ViewId};
