//! In-memory network pump for driving [`GroupMember`]s directly in tests —
//! no simulation kernel, zero latency, fully deterministic FIFO delivery.
//!
//! This is the unit-test complement to the full `jrs-sim` integration (used
//! by downstream crates): protocol logic can be exercised step by step,
//! with surgical crash/partition control between steps.

use crate::config::GroupConfig;
use crate::group::{GcsEvent, GroupMember, Output};
use crate::msg::Wire;
use jrs_sim::{ProcId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A delivered application message, as recorded by the pump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivered<P> {
    /// Total-order position.
    pub seq: u64,
    /// Originating member.
    pub origin: ProcId,
    /// Payload.
    pub payload: P,
}

/// A little in-memory cluster of group members with a FIFO network.
pub struct Pump<P> {
    /// The members, by id. Crashed members are removed.
    pub members: BTreeMap<ProcId, GroupMember<P>>,
    queue: VecDeque<(ProcId, ProcId, Wire<P>)>,
    /// Everything each member delivered, in order.
    pub delivered: BTreeMap<ProcId, Vec<Delivered<P>>>,
    /// Views each member installed, in order (member lists).
    pub views: BTreeMap<ProcId, Vec<Vec<ProcId>>>,
    /// Ejection notifications per member.
    pub ejections: BTreeMap<ProcId, u32>,
    /// Directed pairs currently cut (simulates partitions/cable pulls).
    pub cut: BTreeSet<(ProcId, ProcId)>,
    /// Current virtual time.
    pub now: SimTime,
}

impl<P: Clone + 'static> Pump<P> {
    /// Build a group of `n` members with ids `ProcId(0)..ProcId(n-1)`,
    /// started and pumped until quiet.
    pub fn group(n: u32, config: GroupConfig) -> Self {
        let ids: Vec<ProcId> = (0..n).map(ProcId).collect();
        let mut pump = Pump {
            members: BTreeMap::new(),
            queue: VecDeque::new(),
            delivered: BTreeMap::new(),
            views: BTreeMap::new(),
            ejections: BTreeMap::new(),
            cut: BTreeSet::new(),
            now: SimTime::ZERO,
        };
        for &id in &ids {
            let mut m = GroupMember::new(id, config.clone(), ids.clone());
            let out = m.start(pump.now);
            pump.members.insert(id, m);
            pump.absorb(id, out);
        }
        pump.run();
        pump
    }

    /// Add a fresh joiner whose contact list is the given set.
    pub fn add_joiner(&mut self, id: ProcId, contacts: Vec<ProcId>, config: GroupConfig) {
        let mut m = GroupMember::new(id, config, contacts);
        let out = m.start(self.now);
        self.members.insert(id, m);
        self.absorb(id, out);
        self.run();
    }

    fn absorb(&mut self, who: ProcId, out: Output<P>) {
        for (to, frame, _bytes) in out.wire {
            self.queue.push_back((who, to, frame));
        }
        for ev in out.events {
            match ev {
                GcsEvent::Deliver { seq, origin, payload } => self
                    .delivered
                    .entry(who)
                    .or_default()
                    .push(Delivered { seq, origin, payload }),
                GcsEvent::ViewChange { view, .. } => {
                    self.views.entry(who).or_default().push(view.members)
                }
                GcsEvent::Ejected => *self.ejections.entry(who).or_default() += 1,
            }
        }
    }

    /// Deliver all in-flight frames (and whatever they trigger) until the
    /// network is quiet. Time does not advance.
    pub fn run(&mut self) {
        // Guard against protocol ping-pong loops in broken code.
        let mut budget = 1_000_000u64;
        while let Some((from, to, frame)) = self.queue.pop_front() {
            budget -= 1;
            assert!(budget > 0, "network did not quiesce");
            if self.cut.contains(&(from, to)) {
                continue;
            }
            let Some(m) = self.members.get_mut(&to) else {
                continue; // crashed
            };
            let out = m.on_wire(self.now, from, frame);
            self.absorb(to, out);
        }
    }

    /// Advance time by `d` and tick every member once, then pump.
    pub fn tick(&mut self, d: SimDuration) {
        self.now += d;
        let ids: Vec<ProcId> = self.members.keys().copied().collect();
        for id in ids {
            let out = self.members.get_mut(&id).unwrap().tick(self.now);
            self.absorb(id, out);
        }
        self.run();
    }

    /// Tick repeatedly with the members' tick interval for `total` time.
    pub fn tick_for(&mut self, step: SimDuration, total: SimDuration) {
        let steps = (total.as_nanos() / step.as_nanos().max(1)).max(1);
        for _ in 0..steps {
            self.tick(step);
        }
    }

    /// Broadcast a payload from `who`, pump, and flush the tick-batched
    /// stability announcements so followers deliver too.
    pub fn broadcast(&mut self, who: ProcId, payload: P) {
        let out = self
            .members
            .get_mut(&who)
            .expect("broadcasting member exists")
            .broadcast(self.now, payload);
        self.absorb(who, out);
        self.run();
        // Two zero-advance tick rounds: collector announces stability,
        // followers deliver.
        self.tick(SimDuration::ZERO);
        self.tick(SimDuration::ZERO);
    }

    /// Crash a member (removed; its in-flight messages still deliver).
    pub fn crash(&mut self, who: ProcId) {
        self.members.remove(&who);
    }

    /// Gracefully leave: announce, then crash.
    pub fn leave(&mut self, who: ProcId) {
        if let Some(m) = self.members.get_mut(&who) {
            let out = m.leave(self.now);
            self.absorb(who, out);
        }
        self.crash(who);
        self.run();
    }

    /// Cut both directions between two members.
    pub fn partition(&mut self, a: ProcId, b: ProcId) {
        self.cut.insert((a, b));
        self.cut.insert((b, a));
    }

    /// Restore all connectivity.
    pub fn heal(&mut self) {
        self.cut.clear();
    }

    /// Payload sequences delivered by each live member (for agreement
    /// assertions).
    pub fn delivered_payloads(&self, who: ProcId) -> Vec<P> {
        self.delivered
            .get(&who)
            .map(|v| v.iter().map(|d| d.payload.clone()).collect())
            .unwrap_or_default()
    }

    /// Assert every live member delivered exactly the same sequence.
    /// Returns that common sequence.
    pub fn assert_agreement(&self) -> Vec<(u64, ProcId)>
    where
        P: std::fmt::Debug + PartialEq,
    {
        let mut reference: Option<(ProcId, &Vec<Delivered<P>>)> = None;
        for (&id, dl) in &self.delivered {
            if !self.members.contains_key(&id) {
                continue; // crashed members may legitimately lag
            }
            match &reference {
                None => reference = Some((id, dl)),
                Some((rid, rdl)) => {
                    assert_eq!(
                        rdl, &dl,
                        "member {id} disagrees with member {rid} on the delivery sequence"
                    );
                }
            }
        }
        reference
            .map(|(_, dl)| dl.iter().map(|d| (d.seq, d.origin)).collect())
            .unwrap_or_default()
    }

    /// The current installed view members of a live member.
    pub fn view_of(&self, who: ProcId) -> Vec<ProcId> {
        self.members[&who].view().members.clone()
    }
}
