//! In-memory network pump for driving [`GroupMember`]s directly in tests —
//! no simulation kernel, zero latency, fully deterministic FIFO delivery.
//!
//! This is the unit-test complement to the full `jrs-sim` integration (used
//! by downstream crates): protocol logic can be exercised step by step,
//! with surgical crash/partition control between steps.
//!
//! The network is a set of per-sender/receiver FIFO channels. The default
//! [`Pump::run`] drains them in global arrival order (equivalent to one
//! shared FIFO queue), but a [`Scheduler`] can drive any other interleaving
//! — this is the seam the `jrs-mc` bounded model checker plugs into to
//! explore *all* interleavings.

use crate::config::GroupConfig;
use crate::group::{GcsEvent, GroupMember, Output};
use crate::msg::Wire;
use crate::view::ViewId;
use jrs_sim::{ProcId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};

/// A delivered application message, as recorded by the pump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivered<P> {
    /// Total-order position.
    pub seq: u64,
    /// Originating member.
    pub origin: ProcId,
    /// The view the receiving member had installed when it delivered this
    /// message (same-view / virtual synchrony assertions).
    pub view: ViewId,
    /// Payload.
    pub payload: P,
}

/// Picks which pending channel the pump delivers from next.
///
/// `pending` lists the non-empty, non-cut channels in `(from, to)` key
/// order; the scheduler returns an index into it, or `None` to stop the
/// pump with frames still in flight. [`FifoScheduler`] reproduces the
/// classic global-FIFO order; the model checker supplies schedulers that
/// replay a specific interleaving.
pub trait Scheduler<P> {
    /// Choose the next channel to deliver from.
    fn choose(&mut self, pump: &Pump<P>, pending: &[(ProcId, ProcId)]) -> Option<usize>;
}

/// Delivers frames in global arrival order — exactly one shared FIFO
/// queue, the pump's historical (and default) behaviour.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoScheduler;

impl<P: Clone + 'static> Scheduler<P> for FifoScheduler {
    fn choose(&mut self, pump: &Pump<P>, pending: &[(ProcId, ProcId)]) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(from, to))| pump.head_arrival(from, to))
            .map(|(i, _)| i)
    }
}

/// One FIFO channel: frames stamped with a global arrival number so the
/// default scheduler can reproduce one shared FIFO queue.
type Channel<P> = VecDeque<(u64, Wire<P>)>;

/// A little in-memory cluster of group members with a FIFO-channel network.
#[derive(Clone, Debug)]
pub struct Pump<P> {
    /// The members, by id. Crashed members are removed.
    pub members: BTreeMap<ProcId, GroupMember<P>>,
    /// Per `(from, to)` FIFO channels.
    channels: BTreeMap<(ProcId, ProcId), Channel<P>>,
    /// Next global arrival stamp.
    arrivals: u64,
    /// Everything each member delivered, in order.
    pub delivered: BTreeMap<ProcId, Vec<Delivered<P>>>,
    /// Views each member installed, in order (member lists).
    pub views: BTreeMap<ProcId, Vec<Vec<ProcId>>>,
    /// Ejection notifications per member.
    pub ejections: BTreeMap<ProcId, u32>,
    /// Directed pairs currently cut (simulates partitions/cable pulls).
    pub cut: BTreeSet<(ProcId, ProcId)>,
    /// Current virtual time.
    pub now: SimTime,
    /// Each member's installed view at this instant (stamps deliveries).
    cur_view: BTreeMap<ProcId, ViewId>,
    /// Undrained application upcalls, in global emission order. The model
    /// checker's application layer consumes these via
    /// [`Pump::take_events`]; plain tests can ignore them.
    event_log: Vec<(ProcId, GcsEvent<P>)>,
}

impl<P: Clone + 'static> Pump<P> {
    /// Build a group of `n` members with ids `ProcId(0)..ProcId(n-1)`,
    /// started and pumped until quiet.
    pub fn group(n: u32, config: GroupConfig) -> Self {
        let ids: Vec<ProcId> = (0..n).map(ProcId).collect();
        let mut pump = Pump {
            members: BTreeMap::new(),
            channels: BTreeMap::new(),
            arrivals: 0,
            delivered: BTreeMap::new(),
            views: BTreeMap::new(),
            ejections: BTreeMap::new(),
            cut: BTreeSet::new(),
            now: SimTime::ZERO,
            cur_view: BTreeMap::new(),
            event_log: Vec::new(),
        };
        for &id in &ids {
            let mut m = GroupMember::new(id, config.clone(), ids.clone());
            let out = m.start(pump.now);
            pump.cur_view.insert(id, m.view().id);
            pump.members.insert(id, m);
            pump.absorb(id, out);
        }
        pump.run();
        pump
    }

    /// Add a fresh joiner whose contact list is the given set.
    pub fn add_joiner(&mut self, id: ProcId, contacts: Vec<ProcId>, config: GroupConfig) {
        let mut m = GroupMember::new(id, config, contacts);
        let out = m.start(self.now);
        self.cur_view.insert(id, m.view().id);
        self.members.insert(id, m);
        self.absorb(id, out);
        self.run();
    }

    fn absorb(&mut self, who: ProcId, out: Output<P>) {
        for (to, frame, _bytes) in out.wire {
            let stamp = self.arrivals;
            self.arrivals += 1;
            self.channels.entry((who, to)).or_default().push_back((stamp, frame));
        }
        for ev in out.events {
            match &ev {
                GcsEvent::Deliver { seq, origin, payload } => {
                    let view = self.cur_view.get(&who).copied().unwrap_or(ViewId::NONE);
                    self.delivered.entry(who).or_default().push(Delivered {
                        seq: *seq,
                        origin: *origin,
                        view,
                        payload: payload.clone(),
                    });
                }
                GcsEvent::ViewChange { view, .. } => {
                    self.cur_view.insert(who, view.id);
                    self.views.entry(who).or_default().push(view.members.clone());
                }
                GcsEvent::Ejected => {
                    self.cur_view.insert(who, ViewId::NONE);
                    *self.ejections.entry(who).or_default() += 1;
                }
            }
            self.event_log.push((who, ev));
        }
    }

    // ------------------------------------------------------------------
    // Stepping primitives (the model-checker seam)
    // ------------------------------------------------------------------

    /// Non-empty, non-cut channels towards live members, in `(from, to)`
    /// key order. These are the frames a scheduler may deliver next.
    #[must_use]
    pub fn pending(&self) -> Vec<(ProcId, ProcId)> {
        self.channels
            .iter()
            .filter(|((from, to), q)| {
                !q.is_empty() && !self.cut.contains(&(*from, *to)) && self.members.contains_key(to)
            })
            .map(|(&k, _)| k)
            .collect()
    }

    /// The head frame of a channel, if any.
    #[must_use]
    pub fn peek(&self, from: ProcId, to: ProcId) -> Option<&Wire<P>> {
        self.channels.get(&(from, to)).and_then(|q| q.front()).map(|(_, w)| w)
    }

    /// Arrival stamp of a channel's head frame (global FIFO tiebreak).
    #[must_use]
    pub fn head_arrival(&self, from: ProcId, to: ProcId) -> u64 {
        self.channels
            .get(&(from, to))
            .and_then(|q| q.front())
            .map_or(u64::MAX, |&(stamp, _)| stamp)
    }

    /// Pop the head frame of one channel and deliver it (discarded if the
    /// pair is cut or the target crashed). Returns whether a member
    /// processed it.
    pub fn deliver_from(&mut self, from: ProcId, to: ProcId) -> bool {
        let Some((_, frame)) = self.channels.get_mut(&(from, to)).and_then(VecDeque::pop_front)
        else {
            return false;
        };
        if self.cut.contains(&(from, to)) {
            return false;
        }
        let Some(m) = self.members.get_mut(&to) else {
            return false; // crashed
        };
        let out = m.on_wire(self.now, from, frame);
        self.absorb(to, out);
        true
    }

    /// Drop the head frame of one channel on the floor (models message
    /// loss). Returns whether a frame was dropped.
    pub fn drop_head(&mut self, from: ProcId, to: ProcId) -> bool {
        self.channels
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
            .is_some()
    }

    /// Drain undrained application upcalls, in global emission order.
    #[must_use]
    pub fn take_events(&mut self) -> Vec<(ProcId, GcsEvent<P>)> {
        std::mem::take(&mut self.event_log)
    }

    /// Advance time by `d` and tick every member once, *without* pumping
    /// the network (the model checker interleaves deliveries explicitly).
    pub fn tick_members(&mut self, d: SimDuration) {
        self.now += d;
        let ids: Vec<ProcId> = self.members.keys().copied().collect();
        for id in ids {
            let out = self.members.get_mut(&id).unwrap().tick(self.now);
            self.absorb(id, out);
        }
    }

    /// Submit a payload from `who` without pumping the network.
    pub fn submit(&mut self, who: ProcId, payload: P) {
        let out = self
            .members
            .get_mut(&who)
            .expect("submitting member exists")
            .broadcast(self.now, payload);
        self.absorb(who, out);
    }

    /// Deliver in-flight frames under an arbitrary schedule until the
    /// network is quiet or the scheduler declines.
    pub fn run_with<S: Scheduler<P> + ?Sized>(&mut self, sched: &mut S) {
        // Guard against protocol ping-pong loops in broken code.
        let mut budget = 1_000_000u64;
        loop {
            let pending = self.pending();
            if pending.is_empty() {
                // Channels to cut pairs / crashed members drain silently.
                self.discard_dead_frames();
                if self.pending().is_empty() {
                    return;
                }
                continue;
            }
            let Some(i) = sched.choose(self, &pending) else { return };
            let (from, to) = pending[i];
            self.deliver_from(from, to);
            budget -= 1;
            assert!(budget > 0, "network did not quiesce");
        }
    }

    /// Discard frames queued towards crashed members or over cut pairs.
    fn discard_dead_frames(&mut self) {
        let cut = &self.cut;
        let members = &self.members;
        self.channels.retain(|(from, to), q| {
            if cut.contains(&(*from, *to)) || !members.contains_key(to) {
                q.clear();
            }
            !q.is_empty()
        });
    }

    /// Deliver all in-flight frames (and whatever they trigger) in global
    /// arrival order until the network is quiet. Time does not advance.
    pub fn run(&mut self) {
        self.run_with(&mut FifoScheduler);
    }

    // ------------------------------------------------------------------
    // Convenience drivers (FIFO order, as classic tests expect)
    // ------------------------------------------------------------------

    /// Advance time by `d` and tick every member once, then pump.
    pub fn tick(&mut self, d: SimDuration) {
        self.tick_members(d);
        self.run();
    }

    /// Tick repeatedly with the members' tick interval for `total` time.
    pub fn tick_for(&mut self, step: SimDuration, total: SimDuration) {
        let steps = (total.as_nanos() / step.as_nanos().max(1)).max(1);
        for _ in 0..steps {
            self.tick(step);
        }
    }

    /// Broadcast a payload from `who`, pump, and flush the tick-batched
    /// stability announcements so followers deliver too.
    pub fn broadcast(&mut self, who: ProcId, payload: P) {
        self.submit(who, payload);
        self.run();
        // Two zero-advance tick rounds: collector announces stability,
        // followers deliver.
        self.tick(SimDuration::ZERO);
        self.tick(SimDuration::ZERO);
    }

    /// Crash a member (removed; its in-flight messages still deliver, but
    /// frames addressed *to* it are void).
    pub fn crash(&mut self, who: ProcId) {
        self.members.remove(&who);
        self.channels.retain(|(_, to), _| *to != who);
    }

    /// Gracefully leave: announce, then crash.
    pub fn leave(&mut self, who: ProcId) {
        if let Some(m) = self.members.get_mut(&who) {
            let out = m.leave(self.now);
            self.absorb(who, out);
        }
        self.crash(who);
        self.run();
    }

    /// Cut both directions between two members.
    pub fn partition(&mut self, a: ProcId, b: ProcId) {
        self.cut.insert((a, b));
        self.cut.insert((b, a));
    }

    /// Restore all connectivity.
    pub fn heal(&mut self) {
        self.cut.clear();
    }

    // ------------------------------------------------------------------
    // Observations and assertions
    // ------------------------------------------------------------------

    /// Payload sequences delivered by each live member (for agreement
    /// assertions).
    #[must_use]
    pub fn delivered_payloads(&self, who: ProcId) -> Vec<P> {
        self.delivered
            .get(&who)
            .map(|v| v.iter().map(|d| d.payload.clone()).collect())
            .unwrap_or_default()
    }

    /// Assert every live member delivered exactly the same sequence.
    /// Returns that common sequence.
    pub fn assert_agreement(&self) -> Vec<(u64, ProcId)>
    where
        P: std::fmt::Debug + PartialEq,
    {
        let mut reference: Option<(ProcId, &Vec<Delivered<P>>)> = None;
        for (&id, dl) in &self.delivered {
            if !self.members.contains_key(&id) {
                continue; // crashed members may legitimately lag
            }
            match &reference {
                None => reference = Some((id, dl)),
                Some((rid, rdl)) => {
                    assert_eq!(
                        rdl, &dl,
                        "member {id} disagrees with member {rid} on the delivery sequence"
                    );
                }
            }
        }
        reference
            .map(|(_, dl)| dl.iter().map(|d| (d.seq, d.origin)).collect())
            .unwrap_or_default()
    }

    /// Assert virtual synchrony's same-view property: every message (by
    /// global sequence number) was delivered in the *same* installed view
    /// by every member that delivered it — including members that crashed
    /// later. A violation means a view change cut through a delivery.
    pub fn assert_same_view_delivery(&self) {
        let mut view_of_seq: BTreeMap<u64, (ProcId, ViewId)> = BTreeMap::new();
        for (&id, dl) in &self.delivered {
            for d in dl {
                match view_of_seq.get(&d.seq) {
                    None => {
                        view_of_seq.insert(d.seq, (id, d.view));
                    }
                    Some(&(first, v)) => {
                        assert_eq!(
                            v, d.view,
                            "seq {} delivered in view {v} by member {first} \
                             but in view {} by member {id}",
                            d.seq, d.view
                        );
                    }
                }
            }
        }
    }

    /// The current installed view members of a live member.
    #[must_use]
    pub fn view_of(&self, who: ProcId) -> Vec<ProcId> {
        self.members[&who].view().members.clone()
    }
}

impl<P: Clone + Hash + 'static> Pump<P> {
    /// Deterministic fingerprint of the whole cluster: virtual time, cut
    /// set, in-flight frames per channel (contents and order, but not
    /// absolute arrival stamps) and every member's protocol state. The
    /// model checker uses this for visited-state deduplication; delivery
    /// histories are deliberately excluded (invariants over them are
    /// checked eagerly at every step).
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        let mut h = jrs_sim::Fnv64::new();
        self.now.hash(&mut h);
        self.cut.hash(&mut h);
        for ((from, to), q) in &self.channels {
            if q.is_empty() {
                continue;
            }
            (from, to).hash(&mut h);
            for (_, frame) in q {
                frame.hash(&mut h);
            }
        }
        for (&id, m) in &self.members {
            id.hash(&mut h);
            m.state_hash().hash(&mut h);
        }
        h.finish()
    }
}
