//! Reliable FIFO point-to-point links over the lossy network.
//!
//! Every flush and ordering message rides on one of these: per-peer
//! sequence numbers, cumulative acks, timeout-driven retransmission and
//! in-order delivery with an out-of-order buffer. The FIFO property is
//! load-bearing for the ordering engines: it guarantees that the sequence
//! of `Ordered` messages a member receives from the sequencer has no gaps,
//! which makes the view-change flush a simple max-union.

use crate::msg::{GcsMsg, Wire};
use jrs_sim::{ProcId, SimDuration, SimTime};
use std::collections::BTreeMap;

#[derive(Clone, Debug, Hash)]
struct OutLink<P> {
    next_seq: u64,
    /// seq → (message, last transmission time).
    unacked: BTreeMap<u64, (GcsMsg<P>, SimTime)>,
}

impl<P> Default for OutLink<P> {
    fn default() -> Self {
        OutLink { next_seq: 1, unacked: BTreeMap::new() }
    }
}

#[derive(Clone, Debug, Hash)]
struct InLink<P> {
    /// Everything up to here has been delivered up the stack.
    cum: u64,
    /// Out-of-order holding buffer.
    buffer: BTreeMap<u64, GcsMsg<P>>,
}

impl<P> Default for InLink<P> {
    fn default() -> Self {
        InLink { cum: 0, buffer: BTreeMap::new() }
    }
}

/// All reliable links of one member, keyed by peer. Ordered maps so
/// retransmission scans walk peers in a deterministic order (detlint
/// D001).
#[derive(Clone, Debug, Hash)]
pub struct LinkManager<P> {
    rto: SimDuration,
    out: BTreeMap<ProcId, OutLink<P>>,
    inc: BTreeMap<ProcId, InLink<P>>,
    /// Retransmissions performed (diagnostic).
    pub retransmissions: u64,
}

/// Result of processing one incoming wire frame.
pub struct Inbound<P> {
    /// Messages now deliverable in FIFO order.
    pub deliver: Vec<GcsMsg<P>>,
    /// Ack to send back, if any.
    pub reply: Option<Wire<P>>,
}

impl<P: Clone> LinkManager<P> {
    /// New manager with the given retransmission timeout.
    pub fn new(rto: SimDuration) -> Self {
        LinkManager {
            rto,
            out: BTreeMap::new(),
            inc: BTreeMap::new(),
            retransmissions: 0,
        }
    }

    /// Frame `msg` for reliable transmission to `peer`. The caller
    /// transmits the returned wire frame; the manager keeps a copy for
    /// retransmission until acked.
    pub fn send(&mut self, now: SimTime, peer: ProcId, msg: GcsMsg<P>) -> Wire<P> {
        let link = self.out.entry(peer).or_default();
        let seq = link.next_seq;
        link.next_seq += 1;
        link.unacked.insert(seq, (msg.clone(), now));
        Wire::Data { seq, msg }
    }

    /// Process an incoming frame from `peer`.
    ///
    /// `Raw` frames pass straight through; `Data` frames are sequenced and
    /// delivered in order (duplicates dropped, gaps buffered); `Ack` frames
    /// clear the retransmission buffer.
    pub fn on_wire(&mut self, _now: SimTime, peer: ProcId, wire: Wire<P>) -> Inbound<P> {
        match wire {
            Wire::Raw(msg) => Inbound { deliver: vec![msg], reply: None },
            Wire::Data { seq, msg } => {
                let link = self.inc.entry(peer).or_default();
                if seq > link.cum {
                    link.buffer.entry(seq).or_insert(msg);
                }
                let mut deliver = Vec::new();
                while let Some(m) = link.buffer.remove(&(link.cum + 1)) {
                    link.cum += 1;
                    deliver.push(m);
                }
                let cum = link.cum;
                Inbound { deliver, reply: Some(Wire::Ack { cum }) }
            }
            Wire::Ack { cum } => {
                if let Some(link) = self.out.get_mut(&peer) {
                    link.unacked.retain(|&s, _| s > cum);
                }
                Inbound { deliver: vec![], reply: None }
            }
        }
    }

    /// Collect frames that need retransmission (unacked for longer than the
    /// RTO). Marks them as retransmitted at `now`.
    pub fn tick(&mut self, now: SimTime) -> Vec<(ProcId, Wire<P>)> {
        let mut resend = Vec::new();
        for (&peer, link) in self.out.iter_mut() {
            for (&seq, (msg, last)) in link.unacked.iter_mut() {
                if now.since(*last) >= self.rto {
                    *last = now;
                    self.retransmissions += 1;
                    resend.push((peer, Wire::Data { seq, msg: msg.clone() }));
                }
            }
        }
        resend
    }

    /// Forget all state for a peer (it left or was ejected); a future
    /// conversation starts from a clean stream.
    pub fn reset_peer(&mut self, peer: ProcId) {
        self.out.remove(&peer);
        self.inc.remove(&peer);
    }

    /// Number of frames awaiting ack towards `peer`.
    pub fn unacked_to(&self, peer: ProcId) -> usize {
        self.out.get(&peer).map_or(0, |l| l.unacked.len())
    }

    /// Total frames awaiting ack across all peers.
    pub fn unacked_total(&self) -> usize {
        self.out.values().map(|l| l.unacked.len()).sum()
    }
}

impl<P: Clone + std::hash::Hash> LinkManager<P> {
    /// Deterministic fingerprint of all link state (stream positions,
    /// retransmission buffers, reorder buffers) for model-checker
    /// deduplication.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        jrs_sim::fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = GcsMsg<u32>;

    fn hb(v: u64) -> M {
        GcsMsg::Heartbeat {
            view_id: crate::view::ViewId { num: v, coord: ProcId(0) },
            view_size: 1,
            delivered_up_to: 0,
        }
    }

    fn hb_view(m: &M) -> u64 {
        match m {
            GcsMsg::Heartbeat { view_id, .. } => view_id.num,
            _ => panic!("not a heartbeat"),
        }
    }

    const T0: SimTime = SimTime::ZERO;
    const A: ProcId = ProcId(1);

    #[test]
    fn in_order_delivery_and_ack() {
        let mut rx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let mut tx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let w1 = tx.send(T0, A, hb(1));
        let w2 = tx.send(T0, A, hb(2));
        let r1 = rx.on_wire(T0, A, w1);
        assert_eq!(r1.deliver.len(), 1);
        assert_eq!(hb_view(&r1.deliver[0]), 1);
        assert!(matches!(r1.reply, Some(Wire::Ack { cum: 1 })));
        let r2 = rx.on_wire(T0, A, w2);
        assert_eq!(hb_view(&r2.deliver[0]), 2);
        assert!(matches!(r2.reply, Some(Wire::Ack { cum: 2 })));
    }

    #[test]
    fn out_of_order_buffered_until_gap_fills() {
        let mut rx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let mut tx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let w1 = tx.send(T0, A, hb(1));
        let w2 = tx.send(T0, A, hb(2));
        let w3 = tx.send(T0, A, hb(3));
        let r3 = rx.on_wire(T0, A, w3);
        assert!(r3.deliver.is_empty());
        assert!(matches!(r3.reply, Some(Wire::Ack { cum: 0 })));
        let r2 = rx.on_wire(T0, A, w2);
        assert!(r2.deliver.is_empty());
        let r1 = rx.on_wire(T0, A, w1);
        let views: Vec<u64> = r1.deliver.iter().map(hb_view).collect();
        assert_eq!(views, vec![1, 2, 3]);
        assert!(matches!(r1.reply, Some(Wire::Ack { cum: 3 })));
    }

    #[test]
    fn duplicates_dropped() {
        let mut rx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let mut tx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let w1 = tx.send(T0, A, hb(1));
        let r = rx.on_wire(T0, A, w1.clone());
        assert_eq!(r.deliver.len(), 1);
        let r = rx.on_wire(T0, A, w1);
        assert!(r.deliver.is_empty());
        // Still acks so the sender stops retransmitting.
        assert!(matches!(r.reply, Some(Wire::Ack { cum: 1 })));
    }

    #[test]
    fn retransmission_after_rto() {
        let mut tx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let _w = tx.send(T0, A, hb(1));
        assert_eq!(tx.unacked_to(A), 1);
        // Before RTO: nothing.
        assert!(tx.tick(T0 + SimDuration::from_millis(5)).is_empty());
        // After RTO: one retransmission.
        let r = tx.tick(T0 + SimDuration::from_millis(10));
        assert_eq!(r.len(), 1);
        assert_eq!(tx.retransmissions, 1);
        // Immediately after, the clock was refreshed: no double resend.
        assert!(tx.tick(T0 + SimDuration::from_millis(11)).is_empty());
    }

    #[test]
    fn ack_clears_retransmission_buffer() {
        let mut tx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let _ = tx.send(T0, A, hb(1));
        let _ = tx.send(T0, A, hb(2));
        let _ = tx.on_wire(T0, A, Wire::Ack { cum: 1 });
        assert_eq!(tx.unacked_to(A), 1);
        let _ = tx.on_wire(T0, A, Wire::Ack { cum: 2 });
        assert_eq!(tx.unacked_to(A), 0);
        assert!(tx.tick(T0 + SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn raw_frames_bypass_sequencing() {
        let mut rx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let r = rx.on_wire(T0, A, Wire::Raw(hb(9)));
        assert_eq!(r.deliver.len(), 1);
        assert!(r.reply.is_none());
    }

    #[test]
    fn reset_peer_restarts_stream() {
        let mut rx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let mut tx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let w1 = tx.send(T0, A, hb(1));
        let _ = rx.on_wire(T0, A, w1);
        tx.reset_peer(A);
        rx.reset_peer(A);
        // New stream from seq 1 again.
        let w = tx.send(T0, A, hb(7));
        match &w {
            Wire::Data { seq, .. } => assert_eq!(*seq, 1),
            _ => panic!(),
        }
        let r = rx.on_wire(T0, A, w);
        assert_eq!(r.deliver.len(), 1);
    }

    #[test]
    fn lost_then_retransmitted_end_to_end() {
        let mut tx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let mut rx: LinkManager<u32> = LinkManager::new(SimDuration::from_millis(10));
        let _lost = tx.send(T0, A, hb(1)); // frame never arrives
        let t1 = T0 + SimDuration::from_millis(10);
        let resend = tx.tick(t1);
        assert_eq!(resend.len(), 1);
        let r = rx.on_wire(t1, A, resend.into_iter().next().unwrap().1);
        assert_eq!(r.deliver.len(), 1);
    }
}
