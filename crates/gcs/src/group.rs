//! The group member state machine: membership, virtual synchrony and the
//! view-change flush protocol.
//!
//! A [`GroupMember`] is embedded into an application process (the JOSHUA
//! daemon embeds one next to its PBS server). The embedding process feeds
//! it three stimuli — `start`, `on_wire`, `tick` — and transmits the frames
//! it returns. In exchange the application gets the two classic group
//! communication upcalls: totally ordered **Deliver** and agreed
//! **ViewChange**, with virtual synchrony between them.
//!
//! ## View-change (flush) protocol
//!
//! 1. The lowest-ranked unsuspected member of the current view coordinates.
//!    It halts its engine and sends `FlushReq` to every proposed member of
//!    the next view (survivors + joiners).
//! 2. Members halt and answer `FlushInfo` with a digest of their ordering
//!    state (a promise: they will ignore flushes with lower epochs).
//! 3. With all digests in hand — and only if the proposal passes the
//!    primary-component quorum check against the current view — the
//!    coordinator reconciles one agreed history, renumbers any undelivered
//!    tail compactly, and sends `FlushFinal`.
//! 4. Members deliver the reconciled tail, install the view, and ack. The
//!    coordinator installs only after *every* proposed member has acked, so
//!    it can never move to a view nobody else accepted.
//!
//! Failures during the flush are handled by epoch takeover: a member that
//! waits too long condemns the coordinator and the next-lowest live member
//! restarts with a higher epoch. A member that discovers (via heartbeat
//! view ids) that the group moved on without it ejects itself, resets, and
//! rejoins as a fresh joiner — the application is told via
//! [`GcsEvent::Ejected`] so it can await state transfer.

use crate::config::{GroupConfig, MembershipPolicy};
use crate::detector::FailureDetector;
use crate::engine::{Engine, EngineOut};
use crate::link::LinkManager;
use crate::msg::{Epoch, FlushDigest, GcsMsg, OrderedMsg, Wire};
use crate::view::{View, ViewId};
use jrs_sim::{ProcId, SimTime};
use std::collections::{BTreeMap, BTreeSet};

use std::hash::Hash;

/// Saturating `usize → u32` for view sizes carried in heartbeats (a lossy
/// `as` cast would wrap on pathological inputs, D005).
fn size32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Upcalls from the group to the embedding application.
#[derive(Clone, Debug)]
pub enum GcsEvent<P> {
    /// A totally ordered message. Every member of a view delivers the same
    /// messages in the same `seq` order.
    Deliver {
        /// Global total-order position.
        seq: u64,
        /// Originating member.
        origin: ProcId,
        /// Application payload.
        payload: P,
    },
    /// A new view was installed. `joined` members need state transfer.
    ViewChange {
        /// The newly installed view.
        view: View,
        /// Members present now but not in the previous view (from the
        /// perspective of the whole group: includes rejoiners).
        joined: Vec<ProcId>,
        /// Members of the previous view that are gone.
        left: Vec<ProcId>,
    },
    /// The group moved on without us (we were wrongly suspected, or missed
    /// an install). All group and application state is void; the member
    /// rejoins automatically and the application must await state
    /// transfer after the next `ViewChange` that lists us in `joined`.
    Ejected,
}

/// Frames to transmit and events to hand to the application.
#[derive(Debug)]
pub struct Output<P> {
    /// `(destination, frame, wire_size_bytes)` to transmit.
    pub wire: Vec<(ProcId, Wire<P>, u32)>,
    /// Upcalls, in order.
    pub events: Vec<GcsEvent<P>>,
}

impl<P> Default for Output<P> {
    fn default() -> Self {
        Output { wire: Vec::new(), events: Vec::new() }
    }
}

/// Counters exposed for tests and experiment reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct GroupStats {
    /// Payloads submitted locally.
    pub broadcasts: u64,
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Views installed.
    pub view_changes: u64,
    /// Flush attempts coordinated by this member.
    pub flush_attempts: u64,
    /// Times this member ejected itself and rejoined.
    pub ejections: u64,
}

#[derive(Clone, Debug, Hash)]
enum Role {
    /// Not (yet) a member: periodically solicits admission.
    Joining {
        contacts: Vec<ProcId>,
        last_req: Option<SimTime>,
        /// The flush epoch we last answered; we only install that one.
        answered: Option<Epoch>,
    },
    /// Installed member of the current view.
    Member,
}

#[derive(Clone, Debug, Hash)]
struct Finalized<P> {
    view: View,
    joined: Vec<ProcId>,
    msgs: Vec<OrderedMsg<P>>,
    next_seq: u64,
    dedup: Vec<(ProcId, u64)>,
}

#[derive(Clone, Debug, Hash)]
#[allow(clippy::large_enum_variant)] // Coordinating carries the reconciliation state; boxing it buys nothing here
enum Flush<P> {
    None,
    /// Answered someone's FlushReq; awaiting their FlushFinal.
    Blocked { epoch: Epoch, since: SimTime },
    /// We are coordinating.
    Coordinating {
        epoch: Epoch,
        proposed: Vec<ProcId>,
        joiners: BTreeSet<ProcId>,
        digests: BTreeMap<ProcId, FlushDigest<P>>,
        finalized: Option<Finalized<P>>,
        acks: BTreeSet<ProcId>,
        started: SimTime,
    },
}

/// One member of a process group. See the module docs.
#[derive(Clone, Debug)]
pub struct GroupMember<P> {
    me: ProcId,
    config: GroupConfig,
    view: View,
    installed: bool,
    role: Role,
    engine: Engine<P>,
    links: LinkManager<P>,
    detector: FailureDetector,
    flush: Flush<P>,
    /// Highest flush epoch seen for the *current* view (our promise).
    max_epoch_seen: Option<Epoch>,
    /// Joiners we know about: joiner → incarnation.
    pending_joiners: BTreeMap<ProcId, u64>,
    /// Highest join incarnation seen per process. Ordered map: this is
    /// replicated view-bookkeeping state (detlint D001).
    join_incarnations: BTreeMap<ProcId, u64>,
    /// What each view member has contiguously delivered (stability/GC).
    peer_delivered: BTreeMap<ProcId, u64>,
    /// Former members (left our view but may still be alive, e.g. the
    /// other side of a healed partition). Probed occasionally so split
    /// components re-merge.
    former_members: std::collections::BTreeSet<ProcId>,
    last_hb: Option<SimTime>,
    last_probe: Option<SimTime>,
    behind_since: Option<SimTime>,
    incarnation: u64,
    stats: GroupStats,
}

impl<P: Clone + 'static> GroupMember<P> {
    /// Create a member.
    ///
    /// If `initial` contains `me`, this process bootstraps as a member of
    /// the static initial view (all initial members must be configured with
    /// the same list). Otherwise it starts as a joiner using `initial` as
    /// contact points.
    pub fn new(me: ProcId, config: GroupConfig, initial: Vec<ProcId>) -> Self {
        let engine =
            Engine::with_retry(config.engine, me, config.token_idle_pass, config.request_retry);
        let links = LinkManager::new(config.rto);
        let detector = FailureDetector::new(config.fail_after);
        let is_member = initial.contains(&me);
        let (view, role, installed) = if is_member {
            (
                View::initial(initial),
                Role::Member,
                true,
            )
        } else {
            (
                View::new(ViewId::NONE, Vec::new()),
                Role::Joining { contacts: initial, last_req: None, answered: None },
                false,
            )
        };
        GroupMember {
            me,
            config,
            view,
            installed,
            role,
            engine,
            links,
            detector,
            flush: Flush::None,
            max_epoch_seen: None,
            pending_joiners: BTreeMap::new(),
            join_incarnations: BTreeMap::new(),
            peer_delivered: BTreeMap::new(),
            former_members: std::collections::BTreeSet::new(),
            last_hb: None,
            last_probe: None,
            behind_since: None,
            incarnation: 1,
            stats: GroupStats::default(),
        }
    }

    /// Start this member's join protocol at `incarnation` (builder-style).
    ///
    /// Members ignore a `JoinReq` whose incarnation is not strictly
    /// greater than the highest they have ever seen from that `ProcId`, so
    /// a **restarted** process reusing its id would be silently ignored if
    /// it started again from incarnation 1. A recovery harness passes the
    /// sim world's per-process restart counter here; values lower than the
    /// default are ignored.
    pub fn with_incarnation(mut self, incarnation: u64) -> Self {
        self.adopt_incarnation(incarnation);
        self
    }

    /// In-place variant of [`Self::with_incarnation`] for recovery paths
    /// that learn the persisted incarnation only after construction (the
    /// durable store is readable from process context, not constructors).
    pub fn adopt_incarnation(&mut self, incarnation: u64) {
        self.incarnation = self.incarnation.max(incarnation);
    }

    /// The incarnation this member would announce in its next `JoinReq`.
    /// Recovery persists it so a restarted process can rejoin with a
    /// strictly greater one.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This member's id.
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// The currently installed view (empty placeholder while joining).
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Has this process installed a view (is it an operating member)?
    pub fn is_installed(&self) -> bool {
        self.installed
    }

    /// Is a view change in progress (ordering temporarily halted)?
    pub fn is_blocked(&self) -> bool {
        !matches!(self.flush, Flush::None) || !self.engine.is_active()
    }

    /// Highest contiguously delivered total-order sequence number.
    pub fn delivered_up_to(&self) -> u64 {
        self.engine.delivered_up_to()
    }

    /// Own submissions not yet ordered.
    pub fn pending_count(&self) -> usize {
        self.engine.pending_count()
    }

    /// Counters.
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// Link-layer retransmissions performed so far.
    pub fn retransmissions(&self) -> u64 {
        self.links.retransmissions
    }

    /// Retained ordered-message log length (stability GC diagnostics).
    pub fn log_len(&self) -> usize {
        self.engine.log_len()
    }

    /// Deterministic fingerprint of the complete protocol state: view,
    /// role, ordering engine, links, failure detector, flush machine and
    /// membership bookkeeping. Two members with equal fingerprints behave
    /// identically from here on — the model checker uses this for
    /// visited-state deduplication. Excludes diagnostic counters
    /// ([`GroupStats`]) and the static configuration.
    #[must_use]
    pub fn state_hash(&self) -> u64
    where
        P: Hash,
    {
        use std::hash::Hasher;
        let mut h = jrs_sim::Fnv64::new();
        self.me.hash(&mut h);
        self.view.hash(&mut h);
        self.installed.hash(&mut h);
        self.role.hash(&mut h);
        self.engine.hash(&mut h);
        self.links.hash(&mut h);
        self.detector.hash(&mut h);
        self.flush.hash(&mut h);
        self.max_epoch_seen.hash(&mut h);
        self.pending_joiners.hash(&mut h);
        self.join_incarnations.hash(&mut h);
        self.peer_delivered.hash(&mut h);
        self.former_members.hash(&mut h);
        self.last_hb.hash(&mut h);
        self.last_probe.hash(&mut h);
        self.behind_since.hash(&mut h);
        self.incarnation.hash(&mut h);
        h.finish()
    }

    // ------------------------------------------------------------------
    // Stimuli
    // ------------------------------------------------------------------

    /// Call once when the process starts.
    pub fn start(&mut self, now: SimTime) -> Output<P> {
        let mut out = Output::default();
        match &self.role {
            Role::Member => {
                let members = self.view.members.clone();
                for &p in &members {
                    if p != self.me {
                        self.detector.watch(p, now);
                        self.peer_delivered.insert(p, 0);
                    }
                }
                let leader = self.view.leader() == Some(self.me);
                let eo = self.engine.install(now, members, 1, &[], leader);
                self.absorb_engine(now, eo, &mut out);
                self.send_heartbeats(now, &mut out);
            }
            Role::Joining { .. } => {
                self.send_join_req(now, &mut out);
            }
        }
        out
    }

    /// Submit a payload for totally ordered delivery to the whole group.
    /// While a view change is in progress the payload is queued and
    /// resubmitted automatically after the next install.
    pub fn broadcast(&mut self, now: SimTime, payload: P) -> Output<P> {
        let mut out = Output::default();
        self.stats.broadcasts += 1;
        let eo = self.engine.submit(now, payload);
        self.absorb_engine(now, eo, &mut out);
        out
    }

    /// Announce a voluntary leave. The paper's JOSHUA handles leaves as
    /// forced failures; after calling this the process should stop calling
    /// `tick` (and typically exits).
    pub fn leave(&mut self, _now: SimTime) -> Output<P> {
        let mut out = Output::default();
        let peers: Vec<ProcId> = self.view.members.iter().copied().filter(|&p| p != self.me).collect();
        for p in peers {
            self.push_raw(p, GcsMsg::Leave, &mut out);
        }
        out
    }

    /// Periodic maintenance; call every `config.tick_every`.
    pub fn tick(&mut self, now: SimTime) -> Output<P> {
        let mut out = Output::default();
        for (to, frame) in self.links.tick(now) {
            let bytes = frame.wire_size(self.config.payload_bytes);
            out.wire.push((to, frame, bytes));
        }
        match &self.role {
            Role::Joining { last_req, .. } => {
                let due = last_req.is_none_or(|t| now.since(t) >= self.config.flush_timeout);
                if due {
                    self.send_join_req(now, &mut out);
                }
            }
            Role::Member => {
                self.member_tick(now, &mut out);
            }
        }
        out
    }

    /// Feed one received frame.
    pub fn on_wire(&mut self, now: SimTime, from: ProcId, frame: Wire<P>) -> Output<P> {
        let mut out = Output::default();
        self.detector.heard(from, now);
        let inbound = self.links.on_wire(now, from, frame);
        if let Some(reply) = inbound.reply {
            let bytes = reply.wire_size(self.config.payload_bytes);
            out.wire.push((from, reply, bytes));
        }
        for msg in inbound.deliver {
            self.handle_msg(now, from, msg, &mut out);
        }
        out
    }

    // ------------------------------------------------------------------
    // Internals: send helpers
    // ------------------------------------------------------------------

    fn push_raw(&mut self, to: ProcId, msg: GcsMsg<P>, out: &mut Output<P>) {
        let frame = Wire::Raw(msg);
        let bytes = frame.wire_size(self.config.payload_bytes);
        out.wire.push((to, frame, bytes));
    }

    fn push_link(&mut self, now: SimTime, to: ProcId, msg: GcsMsg<P>, out: &mut Output<P>) {
        let frame = self.links.send(now, to, msg);
        let bytes = frame.wire_size(self.config.payload_bytes);
        out.wire.push((to, frame, bytes));
    }

    fn absorb_engine(&mut self, now: SimTime, eo: EngineOut<P>, out: &mut Output<P>) {
        let view_id = self.view.id;
        for (to, emsg) in eo.sends {
            self.push_link(now, to, GcsMsg::Engine { view_id, msg: emsg }, out);
        }
        for m in eo.deliver {
            self.stats.delivered += 1;
            out.events.push(GcsEvent::Deliver {
                seq: m.seq,
                origin: m.origin,
                payload: m.payload,
            });
        }
    }

    fn send_heartbeats(&mut self, now: SimTime, out: &mut Output<P>) {
        self.last_hb = Some(now);
        let hb = GcsMsg::Heartbeat {
            view_id: self.view.id,
            view_size: size32(self.view.len()),
            delivered_up_to: self.engine.delivered_up_to(),
        };
        let peers: Vec<ProcId> =
            self.view.members.iter().copied().filter(|&p| p != self.me).collect();
        for p in peers {
            self.push_raw(p, hb.clone(), out);
        }
    }

    fn send_join_req(&mut self, now: SimTime, out: &mut Output<P>) {
        let incarnation = self.incarnation;
        let contacts = match &mut self.role {
            Role::Joining { contacts, last_req, .. } => {
                *last_req = Some(now);
                contacts.clone()
            }
            Role::Member => return,
        };
        for c in contacts {
            if c != self.me {
                self.push_raw(c, GcsMsg::JoinReq { incarnation }, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals: member periodic work
    // ------------------------------------------------------------------

    fn member_tick(&mut self, now: SimTime, out: &mut Output<P>) {
        // Heartbeats.
        let hb_due = self.last_hb.is_none_or(|t| now.since(t) >= self.config.heartbeat_every);
        if hb_due {
            self.send_heartbeats(now, out);
        }
        // Occasional probes to former members: the other side of a healed
        // partition would otherwise never hear from us again (both sides
        // only heartbeat their own view) and split components could not
        // re-merge.
        let probe_due =
            self.last_probe.is_none_or(|t| now.since(t) >= self.config.fail_after);
        if probe_due && !self.former_members.is_empty() {
            self.last_probe = Some(now);
            let hb = GcsMsg::Heartbeat {
                view_id: self.view.id,
                view_size: size32(self.view.len()),
                delivered_up_to: self.engine.delivered_up_to(),
            };
            for p in self.former_members.clone() {
                self.push_raw(p, hb.clone(), out);
            }
        }
        // Engine maintenance (token circulation).
        let eo = self.engine.tick(now);
        self.absorb_engine(now, eo, out);
        // Stability GC: prune what the whole view has delivered.
        let stable = self
            .view
            .members
            .iter()
            .filter(|&&p| p != self.me)
            .map(|p| self.peer_delivered.get(p).copied().unwrap_or(0))
            .min()
            .unwrap_or(self.engine.delivered_up_to());
        self.engine.prune(stable);

        // Drop suspected joiners.
        let dead_joiners: Vec<ProcId> = self
            .pending_joiners
            .keys()
            .copied()
            .filter(|&j| self.detector.suspected(j, now))
            .collect();
        for j in dead_joiners {
            self.pending_joiners.remove(&j);
            self.detector.unwatch(j);
        }

        // Flush stall handling.
        enum Stall {
            Nothing,
            GiveUpBlocked(ProcId),
            Abandon(Epoch, Vec<ProcId>),
        }
        let me = self.me;
        let detector = &self.detector;
        let stall = match &mut self.flush {
            Flush::Blocked { epoch, since } if now.since(*since) >= self.config.flush_timeout => {
                // Coordinator is taking too long: treat it as dead so a new
                // coordinator (maybe us) takes over.
                Stall::GiveUpBlocked(epoch.coord)
            }
            Flush::Coordinating { epoch, started, finalized, proposed, .. }
                if now.since(*started) >= self.config.flush_timeout =>
            {
                let someone_dead = proposed
                    .iter()
                    .any(|&p| p != me && detector.suspected(p, now));
                if finalized.is_some() && !someone_dead {
                    // All proposed members look alive; the links keep
                    // retransmitting FlushFinal until everyone acks.
                    *started = now;
                    Stall::Nothing
                } else {
                    Stall::Abandon(*epoch, proposed.clone())
                }
            }
            _ => Stall::Nothing,
        };
        match stall {
            Stall::Nothing => {}
            Stall::GiveUpBlocked(c) => {
                // Epoch takeover: condemn the stalled coordinator and give
                // up the block. The epoch promise in `max_epoch_seen`
                // stands, so a restart by anyone carries a higher epoch.
                // If we are the next candidate we coordinate the takeover
                // below; if the group otherwise looks healthy (coordinator
                // alive but its attempt orphaned), the fizzled-flush path
                // resumes ordering in the current view instead of halting
                // forever on a condemnation the next heartbeat clears.
                self.detector.watch(c, SimTime::ZERO);
                self.detector.condemn(c);
                self.flush = Flush::None;
            }
            Stall::Abandon(epoch, proposed) => {
                self.flush = Flush::None;
                // Unblock members we halted; if a restart is needed it
                // happens below with a fresh (higher) epoch.
                for p in proposed {
                    if p != self.me {
                        self.push_link(now, p, GcsMsg::FlushAbort { epoch }, out);
                    }
                }
            }
        }

        // Membership change needed?
        let suspects: Vec<ProcId> = self
            .view
            .members
            .iter()
            .copied()
            .filter(|&p| p != self.me && self.detector.suspected(p, now))
            .collect();
        if suspects.is_empty() && self.pending_joiners.is_empty() {
            // No change needed; if we halted for a flush that fizzled
            // (ours aborted, or trigger vanished before we coordinated),
            // resume ordering in the current view.
            if matches!(self.flush, Flush::None) && self.installed && !self.engine.is_active() {
                let eo = self.engine.resume(now);
                self.absorb_engine(now, eo, out);
            }
            return;
        }
        // Who should coordinate? The lowest unsuspected member.
        let candidate = self
            .view
            .members
            .iter()
            .copied()
            .find(|&p| p == self.me || !self.detector.suspected(p, now));
        if candidate != Some(self.me) {
            return;
        }
        let mut proposal: Vec<ProcId> = self
            .view
            .members
            .iter()
            .copied()
            .filter(|p| !suspects.contains(p))
            .collect();
        proposal.extend(self.pending_joiners.keys().copied());
        proposal.sort_unstable();
        proposal.dedup();
        match &self.flush {
            Flush::Coordinating { proposed, .. } if *proposed == proposal => {
                // Attempt already under way with the same proposal.
            }
            Flush::Blocked { epoch, .. }
                if epoch.coord != self.me && !self.detector.suspected(epoch.coord, now) =>
            {
                // We answered someone else's ongoing flush; let it run
                // until the stall timeout above condemns the coordinator.
            }
            _ => self.start_flush(now, proposal, out),
        }
    }

    /// Abort an in-progress `Coordinating` attempt of ours, if any,
    /// telling the old proposal's members so anyone blocked on that epoch
    /// resumes instead of waiting out the stall timeout. Their epoch
    /// promise (`max_epoch_seen`) stands, so the next attempt — ours or a
    /// competitor's — carries a higher epoch and supersedes it.
    fn abort_coordinating(&mut self, now: SimTime, out: &mut Output<P>) {
        if let Flush::Coordinating { epoch, proposed, .. } = &self.flush {
            let epoch = *epoch;
            let peers: Vec<ProcId> =
                proposed.iter().copied().filter(|&p| p != self.me).collect();
            self.flush = Flush::None;
            for p in peers {
                self.push_link(now, p, GcsMsg::FlushAbort { epoch }, out);
            }
        }
    }

    fn start_flush(&mut self, now: SimTime, proposal: Vec<ProcId>, out: &mut Output<P>) {
        // Restarting with a different proposal orphans the previous
        // attempt; release the members it blocked before replacing it.
        self.abort_coordinating(now, out);
        self.stats.flush_attempts += 1;
        let attempt = match self.max_epoch_seen {
            Some(e) if e.view_id == self.view.id => e.attempt + 1,
            _ => 0,
        };
        let epoch = Epoch { view_id: self.view.id, attempt, coord: self.me };
        self.max_epoch_seen = Some(epoch);
        self.engine.halt();
        let coord_known = self.engine.delivered_up_to();
        let mut digests = BTreeMap::new();
        digests.insert(self.me, self.engine.digest(coord_known));
        let joiners: BTreeSet<ProcId> = self.pending_joiners.keys().copied().collect();
        let peers: Vec<ProcId> = proposal.iter().copied().filter(|&p| p != self.me).collect();
        self.flush = Flush::Coordinating {
            epoch,
            proposed: proposal.clone(),
            joiners,
            digests,
            finalized: None,
            acks: BTreeSet::new(),
            started: now,
        };
        for p in peers {
            self.push_link(
                now,
                p,
                GcsMsg::FlushReq { epoch, proposed: proposal.clone(), coord_known },
                out,
            );
        }
        self.try_finalize(now, out);
    }

    // ------------------------------------------------------------------
    // Internals: message handling
    // ------------------------------------------------------------------

    fn handle_msg(&mut self, now: SimTime, from: ProcId, msg: GcsMsg<P>, out: &mut Output<P>) {
        match msg {
            GcsMsg::Heartbeat { view_id, view_size, delivered_up_to } => {
                self.on_heartbeat(now, from, view_id, view_size, delivered_up_to, out);
            }
            GcsMsg::JoinReq { incarnation } => {
                self.on_join_req(now, from, incarnation);
            }
            GcsMsg::Leave => {
                self.detector.watch(from, SimTime::ZERO);
                self.detector.condemn(from);
            }
            GcsMsg::FlushReq { epoch, proposed, coord_known } => {
                self.on_flush_req(now, from, epoch, proposed, coord_known, out);
            }
            GcsMsg::FlushInfo { epoch, digest } => {
                self.on_flush_info(now, from, epoch, digest, out);
            }
            GcsMsg::FlushFinal { epoch, view, joined, msgs, next_seq, dedup } => {
                self.on_flush_final(now, from, epoch, view, joined, msgs, next_seq, dedup, out);
            }
            GcsMsg::InstallAck { epoch } => {
                self.on_install_ack(now, from, epoch, out);
            }
            GcsMsg::FlushAbort { epoch } => {
                if let Flush::Blocked { epoch: e, .. } = self.flush {
                    if e == epoch {
                        // Our promise (max_epoch_seen) stands; a restart by
                        // the same coordinator will carry a higher attempt.
                        self.flush = Flush::None;
                        let eo = self.engine.resume(now);
                        self.absorb_engine(now, eo, out);
                    }
                }
            }
            GcsMsg::Engine { view_id, msg } => {
                if matches!(self.role, Role::Member) && self.installed && view_id == self.view.id
                {
                    let eo = self.engine.on_msg(now, from, msg);
                    self.absorb_engine(now, eo, out);
                }
            }
        }
    }

    fn on_heartbeat(
        &mut self,
        now: SimTime,
        from: ProcId,
        view_id: ViewId,
        view_size: u32,
        delivered_up_to: u64,
        out: &mut Output<P>,
    ) {
        if !matches!(self.role, Role::Member) {
            return;
        }
        if view_id == self.view.id {
            let e = self.peer_delivered.entry(from).or_insert(0);
            *e = (*e).max(delivered_up_to);
            return;
        }
        // A peer is in a different installed view. Decide deterministically
        // who must yield and rejoin: the lower installation counter loses
        // (it missed installs); between concurrent views with equal
        // counters (fail-stop split brain), the smaller component loses,
        // then the lower coordinator id.
        let ours = (self.view.id.num, size32(self.view.len()), self.view.id.coord);
        let theirs = (view_id.num, view_size, view_id.coord);
        if theirs > ours {
            match self.behind_since {
                None => self.behind_since = Some(now),
                Some(t) if now.since(t) >= self.config.flush_timeout * 2 => {
                    self.eject(now, out);
                }
                Some(_) => {}
            }
        } else if !self.view.contains(from) {
            // The sender is the stale one. If it is no longer a member of
            // our view (e.g. a healed minority node), it receives no
            // regular heartbeats from us — answer directly so it can
            // discover the newer view and rejoin.
            let hb = GcsMsg::Heartbeat {
                view_id: self.view.id,
                view_size: size32(self.view.len()),
                delivered_up_to: self.engine.delivered_up_to(),
            };
            self.push_raw(from, hb, out);
        }
    }

    fn on_join_req(&mut self, now: SimTime, from: ProcId, incarnation: u64) {
        if !matches!(self.role, Role::Member) || from == self.me {
            return;
        }
        let last = self.join_incarnations.get(&from).copied().unwrap_or(0);
        if incarnation > last {
            self.join_incarnations.insert(from, incarnation);
            // Fresh join episode: restart the byte streams between us.
            self.links.reset_peer(from);
            self.pending_joiners.insert(from, incarnation);
            self.detector.watch(from, now);
        }
        // Duplicates of the current episode just refreshed the detector.
    }

    fn on_flush_req(
        &mut self,
        now: SimTime,
        from: ProcId,
        epoch: Epoch,
        proposed: Vec<ProcId>,
        coord_known: u64,
        out: &mut Output<P>,
    ) {
        if !proposed.contains(&self.me) {
            return;
        }
        match &mut self.role {
            Role::Joining { answered, .. } => {
                if answered.is_some_and(|a| epoch < a) {
                    return;
                }
                *answered = Some(epoch);
                let digest =
                    FlushDigest { max_contig: 0, extra: Vec::new(), dedup: Vec::new() };
                self.push_link(now, from, GcsMsg::FlushInfo { epoch, digest }, out);
            }
            Role::Member => {
                if epoch.view_id != self.view.id {
                    return;
                }
                if let Some(max) = self.max_epoch_seen {
                    if epoch < max {
                        return;
                    }
                }
                self.max_epoch_seen = Some(epoch);
                self.engine.halt();
                // A competing coordinator with a higher epoch wins; abandon
                // our own attempt if any, releasing the members it blocked.
                self.abort_coordinating(now, out);
                self.flush = Flush::Blocked { epoch, since: now };
                let digest = self.engine.digest(coord_known);
                self.push_link(now, epoch.coord, GcsMsg::FlushInfo { epoch, digest }, out);
            }
        }
    }

    fn on_flush_info(
        &mut self,
        now: SimTime,
        from: ProcId,
        epoch: Epoch,
        digest: FlushDigest<P>,
        out: &mut Output<P>,
    ) {
        let Flush::Coordinating { epoch: my_epoch, proposed, digests, finalized, .. } =
            &mut self.flush
        else {
            return;
        };
        if epoch != *my_epoch || finalized.is_some() || !proposed.contains(&from) {
            return;
        }
        digests.insert(from, digest);
        self.try_finalize(now, out);
    }

    fn try_finalize(&mut self, now: SimTime, out: &mut Output<P>) {
        let Flush::Coordinating { epoch, proposed, joiners, digests, finalized, .. } =
            &mut self.flush
        else {
            return;
        };
        if finalized.is_some() || !proposed.iter().all(|p| digests.contains_key(p)) {
            return;
        }
        // Primary-component check (counts old-view members in the
        // proposal; joiners are neutral). Under the paper's fail-stop
        // policy any surviving component proceeds.
        if self.config.membership == MembershipPolicy::PrimaryComponent
            && !self.view.quorum(proposed)
        {
            return;
        }
        // Old members contribute their history; joiners are state-less.
        let old_members: Vec<ProcId> = proposed
            .iter()
            .copied()
            .filter(|p| self.view.contains(*p) && !joiners.contains(p))
            .collect();
        debug_assert!(old_members.contains(&self.me));
        let min_d = old_members
            .iter()
            .map(|p| digests[p].max_contig)
            .min()
            .unwrap_or(0);
        let max_d = old_members
            .iter()
            .map(|p| digests[p].max_contig)
            .max()
            .unwrap_or(0);
        // Union of everything anyone knows.
        let mut union: BTreeMap<u64, OrderedMsg<P>> = BTreeMap::new();
        for d in digests.values() {
            for m in &d.extra {
                union.entry(m.seq).or_insert_with(|| m.clone());
            }
        }
        // Contiguous delivered region (min_d, max_d] must be fully present.
        debug_assert!(
            (min_d + 1..=max_d).all(|s| union.contains_key(&s)),
            "gap in delivered region: some member delivered a message \
             no survivor can supply"
        );
        // Undelivered tail above max_d: renumber compactly (gaps can occur
        // when an assigner died before anyone received some message).
        let mut msgs: Vec<OrderedMsg<P>> = union
            .range(min_d + 1..)
            .take_while(|(&s, _)| s <= max_d)
            .map(|(_, m)| m.clone())
            .collect();
        let mut next_seq = max_d + 1;
        for (_, m) in union.range(max_d + 1..) {
            let mut m = m.clone();
            m.seq = next_seq;
            next_seq += 1;
            msgs.push(m);
        }
        // Merge dedup floors.
        let mut dedup: BTreeMap<ProcId, u64> = BTreeMap::new();
        for d in digests.values() {
            for &(p, l) in &d.dedup {
                let e = dedup.entry(p).or_insert(0);
                *e = (*e).max(l);
            }
        }
        for m in &msgs {
            let e = dedup.entry(m.origin).or_insert(0);
            *e = (*e).max(m.local_id);
        }
        let dedup: Vec<(ProcId, u64)> = dedup.into_iter().collect();
        let new_view = View::new(self.view.id.next(self.me), proposed.clone());
        let joined: Vec<ProcId> = new_view
            .members
            .iter()
            .copied()
            .filter(|p| joiners.contains(p) || !self.view.contains(*p))
            .collect();
        *finalized = Some(Finalized {
            view: new_view.clone(),
            joined: joined.clone(),
            msgs: msgs.clone(),
            next_seq,
            dedup: dedup.clone(),
        });
        let epoch = *epoch;
        let peers: Vec<ProcId> = proposed.iter().copied().filter(|&p| p != self.me).collect();
        for p in peers {
            self.push_link(
                now,
                p,
                GcsMsg::FlushFinal {
                    epoch,
                    view: new_view.clone(),
                    joined: joined.clone(),
                    msgs: msgs.clone(),
                    next_seq,
                    dedup: dedup.clone(),
                },
                out,
            );
        }
        self.maybe_commit(now, out);
    }

    #[allow(clippy::too_many_arguments)] // mirrors the FlushFinal wire message
    fn on_flush_final(
        &mut self,
        now: SimTime,
        from: ProcId,
        epoch: Epoch,
        view: View,
        joined: Vec<ProcId>,
        msgs: Vec<OrderedMsg<P>>,
        next_seq: u64,
        dedup: Vec<(ProcId, u64)>,
        out: &mut Output<P>,
    ) {
        if !view.contains(self.me) {
            return;
        }
        match &self.role {
            Role::Joining { answered, .. } => {
                if *answered != Some(epoch) {
                    return;
                }
                // Joiners do not deliver pre-join history; the application
                // gets a state snapshot instead (ordered relative to this
                // view change by the coordinator's application layer).
                self.engine.skip_to(next_seq);
                self.install_view(now, view, joined, &[], next_seq, &dedup, out);
                self.push_link(now, from, GcsMsg::InstallAck { epoch }, out);
            }
            Role::Member => {
                if epoch.view_id != self.view.id || self.max_epoch_seen != Some(epoch) {
                    return;
                }
                self.install_view(now, view, joined, &msgs, next_seq, &dedup, out);
                self.push_link(now, from, GcsMsg::InstallAck { epoch }, out);
            }
        }
    }

    fn on_install_ack(&mut self, now: SimTime, from: ProcId, epoch: Epoch, out: &mut Output<P>) {
        let Flush::Coordinating { epoch: my_epoch, finalized, acks, .. } = &mut self.flush
        else {
            return;
        };
        if epoch != *my_epoch || finalized.is_none() {
            return;
        }
        acks.insert(from);
        self.maybe_commit(now, out);
    }

    fn maybe_commit(&mut self, now: SimTime, out: &mut Output<P>) {
        let Flush::Coordinating { proposed, finalized, acks, .. } = &self.flush else {
            return;
        };
        let Some(f) = finalized else { return };
        let all_acked = proposed.iter().all(|&p| p == self.me || acks.contains(&p));
        if !all_acked {
            return;
        }
        let view = f.view.clone();
        let joined = f.joined.clone();
        let msgs = f.msgs.clone();
        let next_seq = f.next_seq;
        let dedup = f.dedup.clone();
        self.install_view(now, view, joined, &msgs, next_seq, &dedup, out);
    }

    /// Common installation path for coordinator, members and joiners.
    #[allow(clippy::too_many_arguments)] // mirrors the FlushFinal wire message
    fn install_view(
        &mut self,
        now: SimTime,
        view: View,
        joined: Vec<ProcId>,
        msgs: &[OrderedMsg<P>],
        next_seq: u64,
        dedup: &[(ProcId, u64)],
        out: &mut Output<P>,
    ) {
        // 1. Deliver the reconciled tail (virtual synchrony: before the
        //    view change event).
        let deliveries = self.engine.apply_flush(msgs, next_seq);
        for m in deliveries {
            self.stats.delivered += 1;
            out.events.push(GcsEvent::Deliver {
                seq: m.seq,
                origin: m.origin,
                payload: m.payload,
            });
        }
        // 2. Bookkeeping.
        let old_members = self.view.members.clone();
        let left: Vec<ProcId> = old_members
            .iter()
            .copied()
            .filter(|p| !view.contains(*p))
            .collect();
        for &p in &left {
            self.detector.unwatch(p);
            self.links.reset_peer(p);
            self.peer_delivered.remove(&p);
            self.former_members.insert(p);
        }
        for &p in &view.members {
            if p != self.me {
                self.detector.watch(p, now);
                self.peer_delivered.insert(p, next_seq - 1);
            }
            self.pending_joiners.remove(&p);
            self.former_members.remove(&p);
        }
        // Bound the probe set (a long-running group sheds truly dead
        // members; 16 covers any realistic head-node pool).
        while self.former_members.len() > 16 {
            // `len() > 16` guarantees an element, but bind fallibly: the
            // probe-set trim must never be able to panic a replica (F003).
            let Some(&first) = self.former_members.iter().next() else { break };
            self.former_members.remove(&first);
        }
        self.view = view.clone();
        self.installed = true;
        self.role = Role::Member;
        self.flush = Flush::None;
        self.max_epoch_seen = None;
        self.behind_since = None;
        self.stats.view_changes += 1;
        // 3. Restart the engine in the new view (resubmits own pendings).
        let leader = view.leader() == Some(self.me);
        let eo = self.engine.install(now, view.members.clone(), next_seq, dedup, leader);
        // Joiners start a fresh submission stream: drop any floors their
        // previous life left in the merged dedup state (every replica does
        // this identically, so the floors stay agreed).
        for j in &joined {
            self.engine.reset_submitter(*j);
        }
        self.absorb_engine(now, eo, out);
        // 4. Tell the application.
        out.events.push(GcsEvent::ViewChange { view, joined, left });
        // 5. Announce the new view promptly (lets stragglers detect they
        //    are behind and speeds up stability convergence).
        self.send_heartbeats(now, out);
    }

    fn eject(&mut self, now: SimTime, out: &mut Output<P>) {
        self.stats.ejections += 1;
        // Contact everyone we ever shared a view with: after a fail-stop
        // partition the ejecting side may have shrunk to a singleton view,
        // so its current members alone would be an empty contact list.
        let mut contact_set: std::collections::BTreeSet<ProcId> =
            self.view.members.iter().copied().collect();
        contact_set.extend(self.former_members.iter().copied());
        contact_set.remove(&self.me);
        let contacts: Vec<ProcId> = contact_set.into_iter().collect();
        self.engine = Engine::with_retry(
            self.config.engine,
            self.me,
            self.config.token_idle_pass,
            self.config.request_retry,
        );
        self.links = LinkManager::new(self.config.rto);
        self.detector = FailureDetector::new(self.config.fail_after);
        self.flush = Flush::None;
        self.max_epoch_seen = None;
        self.pending_joiners.clear();
        self.join_incarnations.clear();
        self.peer_delivered.clear();
        self.former_members.clear();
        self.behind_since = None;
        self.installed = false;
        self.incarnation += 1;
        self.view = View::new(ViewId::NONE, Vec::new());
        self.role = Role::Joining { contacts, last_req: None, answered: None };
        out.events.push(GcsEvent::Ejected);
        self.send_join_req(now, out);
    }
}
