//! Total-order engines: fixed sequencer (ISIS-style) and rotating token
//! (Totem-style), both with **safe delivery** (stability).
//!
//! Both engines share a delivery core with three cursors:
//!
//! * `recv` — highest sequence number received contiguously;
//! * `stable` — highest sequence number known to be held by *every* view
//!   member (cumulative acks, all-to-all);
//! * `delivered` — highest sequence number handed to the application,
//!   always `min(recv, stable)`.
//!
//! Messages are delivered to the application only once **stable**: every
//! member of the view holds them. This is the output-commit property the
//! JOSHUA layer needs — a reply sent to a user after delivery can never
//! refer to a command that a subsequent view change excises, because every
//! survivor holds it. It is also what makes replication latency grow with
//! the head-node count, as the paper's Figure 10 measures: ordering a
//! message costs a multicast plus an ack round over the LAN.
//!
//! The engines only run *inside* an installed view; the view-change flush
//! in [`crate::group`] halts them, collects their digests (based on the
//! *received* prefix, a superset of what anyone delivered), reconciles,
//! and reinstalls them for the next view.

use crate::msg::{EngineMsg, FlushDigest, OrderedMsg};
use jrs_sim::{ProcId, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// What an engine wants done after handling a stimulus.
#[derive(Debug)]
pub struct EngineOut<P> {
    /// Reliable sends to perform: `(peer, message)`.
    pub sends: Vec<(ProcId, EngineMsg<P>)>,
    /// Messages now deliverable to the application, in sequence order.
    pub deliver: Vec<OrderedMsg<P>>,
}

impl<P> Default for EngineOut<P> {
    fn default() -> Self {
        EngineOut { sends: Vec::new(), deliver: Vec::new() }
    }
}

impl<P> EngineOut<P> {
    fn merge(&mut self, mut other: EngineOut<P>) {
        self.sends.append(&mut other.sends);
        self.deliver.append(&mut other.deliver);
    }
}

/// How stability information flows in the view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Stability {
    /// We collect everyone's acks and announce stability (sequencer).
    Collector,
    /// We ack to the collector and follow its announcements.
    Follower,
    /// Everyone acks everyone (token engine).
    AllToAll,
}

/// State shared by both engines.
#[derive(Clone, Debug, Hash)]
struct Core<P> {
    me: ProcId,
    stability: Stability,
    /// Follower mode: the collector's announced stability floor.
    stable_floor: u64,
    /// Current view members (sorted). Empty until first install.
    members: Vec<ProcId>,
    /// Next sequence number expected in the received-contiguous prefix.
    recv_cursor: u64,
    /// Next sequence number to deliver to the application.
    deliver_cursor: u64,
    /// Cumulative ack per peer: highest seq that peer holds contiguously.
    /// `BTreeMap` (not `HashMap`): snapshots and iteration of replica
    /// state must be deterministic across processes (detlint D001).
    acks: BTreeMap<ProcId, u64>,
    /// Known ordered messages (delivered and buffered), pruned by
    /// stability. Needed to answer flushes and serve deliveries.
    log: BTreeMap<u64, OrderedMsg<P>>,
    /// Own submissions not yet delivered back: `(local_id, payload)`.
    pending: VecDeque<(u64, P)>,
    next_local_id: u64,
    /// Per-origin highest *delivered* local id (duplicate suppression
    /// floor, merged through flushes). Ordered so flush digests list
    /// origins identically on every replica.
    dedup: BTreeMap<ProcId, u64>,
    /// Per-origin highest *assigned* local id (assigner-side duplicate
    /// suppression between assignment and delivery).
    assign_floor: BTreeMap<ProcId, u64>,
    /// False while a view change is in progress.
    active: bool,
}

impl<P: Clone> Core<P> {
    fn new(me: ProcId) -> Self {
        Core {
            me,
            stability: Stability::AllToAll,
            stable_floor: 0,
            members: Vec::new(),
            recv_cursor: 1,
            deliver_cursor: 1,
            acks: BTreeMap::new(),
            log: BTreeMap::new(),
            pending: VecDeque::new(),
            next_local_id: 1,
            dedup: BTreeMap::new(),
            assign_floor: BTreeMap::new(),
            active: false,
        }
    }

    fn others(&self) -> impl Iterator<Item = ProcId> + '_ {
        let me = self.me;
        self.members.iter().copied().filter(move |&p| p != me)
    }

    /// Highest contiguously received sequence number.
    fn recv_contig(&self) -> u64 {
        self.recv_cursor - 1
    }

    /// Highest stable sequence number: everyone in the view holds it.
    fn stable(&self) -> u64 {
        match self.stability {
            Stability::Collector | Stability::AllToAll => {
                let mut s = self.recv_contig();
                for p in self.members.iter().filter(|&&p| p != self.me) {
                    s = s.min(self.acks.get(p).copied().unwrap_or(0));
                }
                s
            }
            Stability::Follower => self.recv_contig().min(self.stable_floor),
        }
    }

    /// Record a stability announcement from the collector.
    fn on_stable(&mut self, up_to: u64) -> Vec<OrderedMsg<P>> {
        self.stable_floor = self.stable_floor.max(up_to);
        self.drain_stable()
    }

    /// Insert a known ordered message, advance the received prefix, and
    /// deliver anything that has become stable. Returns `(deliveries,
    /// recv_advanced)` — when the prefix advanced the caller multicasts a
    /// fresh cumulative ack.
    fn ingest(&mut self, m: OrderedMsg<P>) -> (Vec<OrderedMsg<P>>, bool) {
        if m.seq >= self.recv_cursor {
            self.log.entry(m.seq).or_insert(m);
        }
        let before = self.recv_cursor;
        while self.log.contains_key(&self.recv_cursor) {
            self.recv_cursor += 1;
        }
        (self.drain_stable(), self.recv_cursor != before)
    }

    /// Record a peer's cumulative ack; deliver anything newly stable.
    fn on_ack(&mut self, from: ProcId, up_to: u64) -> Vec<OrderedMsg<P>> {
        let e = self.acks.entry(from).or_insert(0);
        *e = (*e).max(up_to);
        self.drain_stable()
    }

    /// Deliver everything `<= min(recv, stable)`.
    fn drain_stable(&mut self) -> Vec<OrderedMsg<P>> {
        let limit = self.stable();
        let mut out = Vec::new();
        while self.deliver_cursor <= limit {
            // The stable prefix is received-contiguous, so the log must
            // hold it. If an invariant breach ever leaves a gap, stop
            // delivering and wait — the next flush reconciles the log —
            // rather than killing the replica on its hot path (P001).
            let Some(m) = self.log.get(&self.deliver_cursor).cloned() else {
                debug_assert!(false, "stable prefix missing from the log");
                break;
            };
            self.note_delivered(&m);
            self.deliver_cursor += 1;
            out.push(m);
        }
        out
    }

    /// Bookkeeping at delivery: advance the dedup floor and drop satisfied
    /// pendings of our own.
    fn note_delivered(&mut self, m: &OrderedMsg<P>) {
        let floor = self.dedup.entry(m.origin).or_insert(0);
        *floor = (*floor).max(m.local_id);
        let af = self.assign_floor.entry(m.origin).or_insert(0);
        *af = (*af).max(m.local_id);
        if m.origin == self.me {
            let lid = m.local_id;
            self.pending.retain(|(l, _)| *l != lid);
        }
    }

    /// Assigner-side duplicate check (covers ordered-but-undelivered).
    fn is_assigned(&self, origin: ProcId, local_id: u64) -> bool {
        self.assign_floor.get(&origin).copied().unwrap_or(0) >= local_id
            || self.dedup.get(&origin).copied().unwrap_or(0) >= local_id
    }

    fn note_assigned(&mut self, origin: ProcId, local_id: u64) {
        let af = self.assign_floor.entry(origin).or_insert(0);
        *af = (*af).max(local_id);
    }

    fn digest(&self, coord_known: u64) -> FlushDigest<P> {
        FlushDigest {
            max_contig: self.recv_contig(),
            extra: self
                .log
                .range(coord_known + 1..)
                .map(|(_, m)| m.clone())
                .collect(),
            // Already in ascending origin order (BTreeMap), so every
            // replica serialises the same digest bytes.
            dedup: self.dedup.iter().map(|(&p, &l)| (p, l)).collect(),
        }
    }

    /// Apply a reconciled flush batch: the agreed history is stable by
    /// agreement, so everything up to `next_seq - 1` is delivered.
    fn apply_flush(&mut self, msgs: &[OrderedMsg<P>], next_seq: u64) -> Vec<OrderedMsg<P>> {
        // Our contiguous received prefix is part of the agreed history
        // (the union covers every survivor's prefix). Anything buffered
        // beyond it may have been renumbered by the coordinator: replace
        // it with the batch.
        self.log.split_off(&self.recv_cursor);
        for m in msgs {
            if m.seq >= self.recv_cursor {
                self.log.insert(m.seq, m.clone());
            }
        }
        let mut out = Vec::new();
        while self.deliver_cursor < next_seq {
            let Some(m) = self.log.get(&self.deliver_cursor).cloned() else {
                debug_assert!(false, "flush batch left a gap below next_seq");
                break;
            };
            self.note_delivered(&m);
            self.deliver_cursor += 1;
            out.push(m);
        }
        self.recv_cursor = self.recv_cursor.max(self.deliver_cursor);
        out
    }

    /// Joiner path: adopt the agreed history position without delivering
    /// any of it (the application receives a state snapshot instead).
    fn skip_to(&mut self, next_seq: u64) {
        self.log.clear();
        self.recv_cursor = next_seq;
        self.deliver_cursor = next_seq;
    }

    fn install(&mut self, members: Vec<ProcId>, next_seq: u64, dedup: &[(ProcId, u64)]) {
        self.members = members;
        self.recv_cursor = self.recv_cursor.max(next_seq);
        self.deliver_cursor = self.deliver_cursor.max(next_seq);
        self.stable_floor = next_seq - 1;
        self.acks.clear();
        for &p in &self.members {
            if p != self.me {
                self.acks.insert(p, next_seq - 1);
            }
        }
        for (p, l) in dedup {
            let floor = self.dedup.entry(*p).or_insert(0);
            *floor = (*floor).max(*l);
            let af = self.assign_floor.entry(*p).or_insert(0);
            *af = (*af).max(*l);
        }
        self.active = true;
    }

    fn prune(&mut self, stable_up_to: u64) {
        self.log = self.log.split_off(&(stable_up_to + 1));
    }

    /// Emit stability traffic for an advanced received prefix: followers
    /// ack the collector, all-to-all members ack everyone, the collector
    /// sends nothing here (it announces via `stable_sends`).
    fn ack_sends(&self) -> Vec<(ProcId, EngineMsg<P>)> {
        let up_to = self.recv_contig();
        match self.stability {
            Stability::Follower => {
                let collector = self.members.first().copied();
                collector
                    .filter(|&c| c != self.me)
                    .map(|c| vec![(c, EngineMsg::Ack { up_to })])
                    .unwrap_or_default()
            }
            Stability::AllToAll => self
                .others()
                .map(|p| (p, EngineMsg::Ack { up_to }))
                .collect(),
            Stability::Collector => vec![],
        }
    }

    /// Collector: announce stability to the followers.
    fn stable_sends(&self) -> Vec<(ProcId, EngineMsg<P>)> {
        let up_to = self.stable();
        self.others()
            .map(|p| (p, EngineMsg::Stable { up_to }))
            .collect()
    }
}

/// Fixed-sequencer engine: the view leader (rank 0) assigns sequence
/// numbers; everyone else sends it requests.
#[derive(Clone, Debug, Hash)]
pub struct SeqEngine<P> {
    core: Core<P>,
    /// Collector: stability advanced since the last announcement.
    stable_dirty: bool,
    /// Per-origin reorder buffer: requests that arrived before an earlier
    /// (lower local id) request from the same origin. Origins submit with
    /// gap-free local ids, so ordering strictly in local-id order keeps
    /// per-origin FIFO even when a request is lost and retried.
    waiting: BTreeMap<ProcId, BTreeMap<u64, P>>,
    /// When pendings were last (re)requested.
    last_request: SimTime,
    retry_every: SimDuration,
}

/// Rotating-token engine: a token carrying the next sequence number
/// circulates in rank order; the holder orders its pending submissions.
#[derive(Clone, Debug, Hash)]
pub struct TokenEngine<P> {
    core: Core<P>,
    /// `Some(next_seq)` while we hold the token.
    holding: Option<u64>,
    /// Highest token sequence ever observed; stale copies below this are
    /// discarded (defence in depth — the link layer already deduplicates).
    floor: u64,
    /// When to pass an idle token on.
    release_at: SimTime,
    idle_pass: SimDuration,
    /// Diagnostic: token hops observed.
    pub hops: u64,
}

/// The configured engine for one group member.
#[derive(Clone, Debug, Hash)]
pub enum Engine<P> {
    /// Fixed sequencer.
    Seq(SeqEngine<P>),
    /// Rotating token.
    Token(TokenEngine<P>),
}

impl<P: Clone> Engine<P> {
    /// Create an engine of the given kind for member `me`.
    pub fn new(kind: crate::config::EngineKind, me: ProcId, idle_pass: SimDuration) -> Self {
        Self::with_retry(kind, me, idle_pass, SimDuration::from_millis(100))
    }

    /// Create an engine with an explicit pending-request retry interval.
    pub fn with_retry(
        kind: crate::config::EngineKind,
        me: ProcId,
        idle_pass: SimDuration,
        retry_every: SimDuration,
    ) -> Self {
        match kind {
            crate::config::EngineKind::Sequencer => Engine::Seq(SeqEngine {
                core: Core::new(me),
                stable_dirty: false,
                waiting: BTreeMap::new(),
                last_request: SimTime::ZERO,
                retry_every,
            }),
            crate::config::EngineKind::Token => Engine::Token(TokenEngine {
                core: Core::new(me),
                holding: None,
                floor: 0,
                release_at: SimTime::ZERO,
                idle_pass,
                hops: 0,
            }),
        }
    }

    fn core(&self) -> &Core<P> {
        match self {
            Engine::Seq(e) => &e.core,
            Engine::Token(e) => &e.core,
        }
    }

    fn core_mut(&mut self) -> &mut Core<P> {
        match self {
            Engine::Seq(e) => &mut e.core,
            Engine::Token(e) => &mut e.core,
        }
    }

    /// Highest sequence number delivered to the application.
    pub fn delivered_up_to(&self) -> u64 {
        self.core().deliver_cursor - 1
    }

    /// Highest sequence number received contiguously (≥ delivered).
    pub fn received_up_to(&self) -> u64 {
        self.core().recv_contig()
    }

    /// Own submissions not yet delivered (survive view changes and are
    /// resubmitted after install).
    pub fn pending_count(&self) -> usize {
        self.core().pending.len()
    }

    /// Is the engine accepting traffic (not halted for a flush)?
    pub fn is_active(&self) -> bool {
        self.core().active
    }

    /// Forget a submitter's dedup/assignment floors. A fresh join episode
    /// rebuilds that member's engine from scratch (local ids restart at
    /// 1), so floors inherited from its previous life would silently
    /// swallow everything the new life submits.
    pub fn reset_submitter(&mut self, p: ProcId) {
        let core = self.core_mut();
        core.dedup.remove(&p);
        core.assign_floor.remove(&p);
    }

    /// Submit an application payload for total ordering.
    pub fn submit(&mut self, now: SimTime, payload: P) -> EngineOut<P> {
        let core = self.core_mut();
        let local_id = core.next_local_id;
        core.next_local_id += 1;
        core.pending.push_back((local_id, payload.clone()));
        if !core.active {
            // Queued; resubmitted after the next install.
            return EngineOut::default();
        }
        match self {
            Engine::Seq(e) => e.order_or_request(local_id, payload),
            Engine::Token(e) => e.order_if_holding(now),
        }
    }

    /// Handle an in-view engine message from `from`.
    pub fn on_msg(&mut self, now: SimTime, from: ProcId, msg: EngineMsg<P>) -> EngineOut<P> {
        if !self.core().active {
            // Halted for a (possibly aborted) flush: buffer, don't deliver.
            // If the flush concludes, `apply_flush` supersedes the buffer;
            // if it aborts, `resume` processes it.
            match msg {
                EngineMsg::Ordered(m) => {
                    let core = self.core_mut();
                    if m.seq >= core.recv_cursor {
                        core.log.entry(m.seq).or_insert(m);
                    }
                }
                EngineMsg::Ack { up_to } => {
                    let core = self.core_mut();
                    let e = core.acks.entry(from).or_insert(0);
                    *e = (*e).max(up_to);
                }
                EngineMsg::Stable { up_to } => {
                    let core = self.core_mut();
                    core.stable_floor = core.stable_floor.max(up_to);
                }
                EngineMsg::Token { next_seq, .. } => {
                    if let Engine::Token(e) = self {
                        // Keep the token so it is not lost across a
                        // transient halt; ordering waits for
                        // resume/install.
                        if next_seq >= e.floor && e.holding.is_none() {
                            e.floor = next_seq;
                            e.holding = Some(next_seq);
                        }
                    }
                }
                EngineMsg::Request { .. } => {}
            }
            return EngineOut::default();
        }
        match (self, msg) {
            (Engine::Seq(e), EngineMsg::Request { local_id, payload }) => {
                e.on_request(from, local_id, payload)
            }
            (Engine::Seq(e), EngineMsg::Ordered(m)) => e.core.ingest_and_ack(m),
            (Engine::Token(e), EngineMsg::Ordered(m)) => e.core.ingest_and_ack(m),
            (Engine::Seq(e), EngineMsg::Ack { up_to }) => {
                let before = e.core.stable();
                let deliver = e.core.on_ack(from, up_to);
                if e.core.stability == Stability::Collector && e.core.stable() > before {
                    // Batch the announcement: followers learn on the next
                    // engine tick (they don't sit on the reply fast path,
                    // which runs through the collector itself).
                    e.stable_dirty = true;
                }
                EngineOut { sends: vec![], deliver }
            }
            (Engine::Seq(e), EngineMsg::Stable { up_to }) => EngineOut {
                sends: vec![],
                deliver: e.core.on_stable(up_to),
            },
            (Engine::Token(e), EngineMsg::Ack { up_to }) => EngineOut {
                sends: vec![],
                deliver: e.core.on_ack(from, up_to),
            },
            (Engine::Token(e), EngineMsg::Token { next_seq, .. }) => e.on_token(now, next_seq),
            // Cross-engine messages indicate misconfiguration; drop each
            // combination by name so a new EngineMsg variant is a compile
            // error here rather than silently swallowed (F004).
            (Engine::Seq(_), EngineMsg::Token { .. })
            | (Engine::Token(_), EngineMsg::Request { .. })
            | (Engine::Token(_), EngineMsg::Stable { .. }) => EngineOut::default(),
        }
    }

    /// Periodic maintenance (token idle passing; pending-request retry).
    pub fn tick(&mut self, now: SimTime) -> EngineOut<P> {
        match self {
            Engine::Seq(e) => {
                let mut out = EngineOut::default();
                if e.core.active && e.stable_dirty {
                    e.stable_dirty = false;
                    out.sends = e.core.stable_sends();
                }
                // Re-request pendings that may have raced a view change
                // (e.g. sent to a sequencer that had not installed yet).
                if e.core.active
                    && !e.core.pending.is_empty()
                    && now.since(e.last_request) >= e.retry_every
                {
                    e.last_request = now;
                    for (local_id, payload) in e.core.pending.clone() {
                        if !e.core.is_assigned(e.core.me, local_id) {
                            out.merge(e.order_or_request(local_id, payload));
                        }
                    }
                }
                out
            }
            Engine::Token(e) => e.tick(now),
        }
    }

    /// Halt for a view change or pending flush: stop ordering and
    /// delivering. A held token is kept (the flush may be aborted and the
    /// token must not be lost); `install` re-seeds or clears it.
    pub fn halt(&mut self) {
        self.core_mut().active = false;
    }

    /// Resume in the *same* view after an aborted flush: process anything
    /// buffered while halted and resubmit own pendings.
    pub fn resume(&mut self, now: SimTime) -> EngineOut<P> {
        {
            let core = self.core_mut();
            core.active = true;
            while core.log.contains_key(&core.recv_cursor) {
                core.recv_cursor += 1;
            }
        }
        let mut out = EngineOut::default();
        {
            let core = self.core_mut();
            out.deliver = core.drain_stable();
            out.sends = core.ack_sends();
        }
        match self {
            Engine::Seq(e) => {
                if e.core.stability == Stability::Collector {
                    // Acks absorbed while halted advance stability without
                    // setting the dirty flag; re-announce on the next tick
                    // so followers waiting on `Stable` are not stranded.
                    e.stable_dirty = true;
                }
                for (local_id, payload) in e.core.pending.clone() {
                    if !e.core.is_assigned(e.core.me, local_id) {
                        out.merge(e.order_or_request(local_id, payload));
                    }
                }
            }
            Engine::Token(e) => {
                out.merge(e.order_if_holding(now));
            }
        }
        out
    }

    /// Produce this member's flush digest.
    pub fn digest(&self, coord_known: u64) -> FlushDigest<P> {
        self.core().digest(coord_known)
    }

    /// Apply the coordinator's reconciled batch; returns new deliveries.
    pub fn apply_flush(&mut self, msgs: &[OrderedMsg<P>], next_seq: u64) -> Vec<OrderedMsg<P>> {
        self.core_mut().apply_flush(msgs, next_seq)
    }

    /// Joiner path: adopt the history position without delivering.
    pub fn skip_to(&mut self, next_seq: u64) {
        self.core_mut().skip_to(next_seq);
    }

    /// Install a new view and resume. `leader` must be true exactly at the
    /// view's rank-0 member (it seeds the token / becomes sequencer).
    /// Resubmits pending own messages.
    pub fn install(
        &mut self,
        now: SimTime,
        members: Vec<ProcId>,
        next_seq: u64,
        dedup: &[(ProcId, u64)],
        leader: bool,
    ) -> EngineOut<P> {
        self.core_mut().install(members, next_seq, dedup);
        match self {
            Engine::Seq(e) => {
                e.core.stability =
                    if leader { Stability::Collector } else { Stability::Follower };
            }
            Engine::Token(e) => e.core.stability = Stability::AllToAll,
        }
        let mut out = EngineOut::default();
        match self {
            Engine::Seq(e) => {
                e.waiting.clear();
                // Resubmit pendings (duplicates are filtered by the
                // sequencer's assign floor).
                for (local_id, payload) in e.core.pending.clone() {
                    if !e.core.is_assigned(e.core.me, local_id) {
                        out.merge(e.order_or_request(local_id, payload));
                    }
                }
            }
            Engine::Token(e) => {
                e.floor = e.floor.max(next_seq);
                if leader {
                    e.holding = Some(next_seq);
                    e.release_at = now + e.idle_pass;
                    out.merge(e.order_if_holding(now));
                } else {
                    // Any token held across the flush belongs to the old
                    // view; the new leader seeds a fresh one.
                    e.holding = None;
                }
            }
        }
        out
    }

    /// Drop log entries at or below `stable_up_to` (known delivered by the
    /// whole view).
    pub fn prune(&mut self, stable_up_to: u64) {
        let cutoff = stable_up_to.min(self.delivered_up_to());
        self.core_mut().prune(cutoff);
    }

    /// Size of the retained ordered-message log (diagnostics / GC tests).
    pub fn log_len(&self) -> usize {
        self.core().log.len()
    }
}

impl<P: Clone + std::hash::Hash> Engine<P> {
    /// Deterministic fingerprint of the full ordering state (cursors,
    /// log, acks, dedup floors, pendings, engine-specific fields).
    /// Equal fingerprints mean the engines behave identically from here
    /// on — the model checker uses this for visited-set deduplication.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        jrs_sim::fingerprint(self)
    }
}

impl<P: Clone> Core<P> {
    /// Ingest an ordered message; if the received prefix advanced,
    /// multicast a fresh cumulative ack.
    fn ingest_and_ack(&mut self, m: OrderedMsg<P>) -> EngineOut<P> {
        let (deliver, advanced) = self.ingest(m);
        let sends = if advanced { self.ack_sends() } else { vec![] };
        EngineOut { sends, deliver }
    }
}

impl<P: Clone> SeqEngine<P> {
    /// Rank-0 member of the installed view; `None` before any install
    /// (submissions stay pending until one happens).
    fn sequencer(&self) -> Option<ProcId> {
        self.core.members.first().copied()
    }

    fn order_or_request(&mut self, local_id: u64, payload: P) -> EngineOut<P> {
        match self.sequencer() {
            Some(seq) if seq == self.core.me => self.order(self.core.me, local_id, payload),
            Some(seq) => EngineOut {
                sends: vec![(seq, EngineMsg::Request { local_id, payload })],
                deliver: vec![],
            },
            // No installed view yet: keep the submission pending; it is
            // resubmitted on the next install.
            None => EngineOut::default(),
        }
    }

    fn on_request(&mut self, from: ProcId, local_id: u64, payload: P) -> EngineOut<P> {
        if self.sequencer() != Some(self.core.me) {
            // Stale request routed to a former sequencer: the origin will
            // resubmit after the next install; drop.
            return EngineOut::default();
        }
        self.order(from, local_id, payload)
    }

    /// Assign the next sequence number (sequencer only). Requests are
    /// ordered strictly in per-origin local-id order: an out-of-order
    /// request (an earlier one was lost and will be retried) is buffered.
    fn order(&mut self, origin: ProcId, local_id: u64, payload: P) -> EngineOut<P> {
        if self.core.is_assigned(origin, local_id) {
            return EngineOut::default();
        }
        let expected = self.expected_local(origin);
        if local_id > expected {
            self.waiting.entry(origin).or_default().insert(local_id, payload);
            return EngineOut::default();
        }
        let mut out = self.order_now(origin, local_id, payload);
        // Drain any buffered successors that are now in order.
        loop {
            let next = self.expected_local(origin);
            let Some(buf) = self.waiting.get_mut(&origin) else { break };
            let Some(p) = buf.remove(&next) else { break };
            out.merge(self.order_now(origin, next, p));
        }
        out
    }

    /// Next local id this origin's stream expects.
    fn expected_local(&self, origin: ProcId) -> u64 {
        self.core
            .assign_floor
            .get(&origin)
            .copied()
            .unwrap_or(0)
            .max(self.core.dedup.get(&origin).copied().unwrap_or(0))
            + 1
    }

    fn order_now(&mut self, origin: ProcId, local_id: u64, payload: P) -> EngineOut<P> {
        if self.core.is_assigned(origin, local_id) {
            return EngineOut::default();
        }
        // Next seq = highest known + 1 (log holds everything undelivered).
        let next = self
            .core
            .log
            .keys()
            .next_back()
            .map(|&s| s + 1)
            .unwrap_or(self.core.recv_cursor)
            .max(self.core.recv_cursor);
        self.core.note_assigned(origin, local_id);
        let m = OrderedMsg { seq: next, origin, local_id, payload };
        let mut out = EngineOut {
            sends: self
                .core
                .others()
                .map(|p| (p, EngineMsg::Ordered(m.clone())))
                .collect(),
            deliver: vec![],
        };
        out.merge(self.core.ingest_and_ack(m));
        out
    }
}

impl<P: Clone> TokenEngine<P> {
    /// Next member in rank order after us; `None` if we are not in the
    /// installed view (e.g. mid-ejection) — the token is then held
    /// rather than sent into the void.
    fn successor(&self) -> Option<ProcId> {
        let me = self.core.me;
        let idx = self.core.members.iter().position(|&p| p == me)?;
        Some(self.core.members[(idx + 1) % self.core.members.len()])
    }

    fn on_token(&mut self, now: SimTime, next_seq: u64) -> EngineOut<P> {
        // Token seq can only move forward; a stale duplicate is discarded.
        // (Equal is legitimate: an idle token circulates unchanged.)
        if next_seq < self.floor || self.holding.is_some() {
            return EngineOut::default();
        }
        self.hops += 1;
        self.floor = next_seq;
        self.holding = Some(next_seq);
        self.release_at = now + self.idle_pass;
        self.order_if_holding(now)
    }

    /// Order all pendings if we hold the token, then pass it when work was
    /// done (idle tokens are held until `release_at` to limit chatter).
    fn order_if_holding(&mut self, _now: SimTime) -> EngineOut<P> {
        let Some(mut next_seq) = self.holding else {
            return EngineOut::default();
        };
        if self.core.pending.is_empty() {
            return EngineOut::default();
        }
        let mut out = EngineOut::default();
        for (local_id, payload) in self.core.pending.clone() {
            if self.core.is_assigned(self.core.me, local_id) {
                continue;
            }
            self.core.note_assigned(self.core.me, local_id);
            let m = OrderedMsg {
                seq: next_seq,
                origin: self.core.me,
                local_id,
                payload,
            };
            next_seq += 1;
            for p in self.core.others() {
                out.sends.push((p, EngineMsg::Ordered(m.clone())));
            }
            out.merge(self.core.ingest_and_ack(m));
        }
        self.holding = Some(next_seq);
        self.floor = self.floor.max(next_seq);
        // Pass the token on immediately after doing work.
        out.merge(self.pass_token());
        out
    }

    fn pass_token(&mut self) -> EngineOut<P> {
        let Some(next_seq) = self.holding.take() else {
            return EngineOut::default();
        };
        if self.core.members.len() <= 1 {
            // Sole member keeps the token.
            self.holding = Some(next_seq);
            return EngineOut::default();
        }
        let Some(succ) = self.successor() else {
            // Not in the installed view: keep the token; the next
            // install either reseats us or seeds a fresh token.
            self.holding = Some(next_seq);
            return EngineOut::default();
        };
        EngineOut {
            sends: vec![(succ, EngineMsg::Token { next_seq, idle_hops: 0 })],
            deliver: vec![],
        }
    }

    fn tick(&mut self, now: SimTime) -> EngineOut<P> {
        if self.holding.is_some() && now >= self.release_at {
            self.pass_token()
        } else {
            EngineOut::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;

    const T0: SimTime = SimTime::ZERO;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn installed(kind: EngineKind, me: u32, members: &[u32]) -> Engine<&'static str> {
        let mut e = Engine::new(kind, p(me), SimDuration::from_millis(5));
        let mem: Vec<ProcId> = members.iter().map(|&i| p(i)).collect();
        let leader = mem[0] == p(me);
        let _ = e.install(T0, mem, 1, &[], leader);
        e
    }

    /// Extract `(to, up_to)` ack sends.
    fn acks(out: &EngineOut<&'static str>) -> Vec<(ProcId, u64)> {
        out.sends
            .iter()
            .filter_map(|(to, m)| match m {
                EngineMsg::Ack { up_to } => Some((*to, *up_to)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sole_member_delivers_immediately() {
        let mut e = installed(EngineKind::Sequencer, 1, &[1]);
        let out = e.submit(T0, "a");
        assert_eq!(out.deliver.len(), 1);
        assert_eq!(out.deliver[0].seq, 1);
        assert_eq!(e.pending_count(), 0);
    }

    #[test]
    fn multi_member_delivery_waits_for_stability() {
        let mut seq = installed(EngineKind::Sequencer, 1, &[1, 2]);
        let out = seq.submit(T0, "a");
        // Ordered multicast + own ack go out, but nothing delivers yet:
        // member 2 has not confirmed holding the message.
        assert!(out.deliver.is_empty(), "delivered before stable");
        assert!(out
            .sends
            .iter()
            .any(|(to, m)| *to == p(2) && matches!(m, EngineMsg::Ordered(_))));
        assert_eq!(seq.received_up_to(), 1);
        assert_eq!(seq.delivered_up_to(), 0);
        // Member 2's cumulative ack arrives: now stable, now delivered.
        let out = seq.on_msg(T0, p(2), EngineMsg::Ack { up_to: 1 });
        assert_eq!(out.deliver.len(), 1);
        assert_eq!(out.deliver[0].payload, "a");
        assert_eq!(seq.delivered_up_to(), 1);
        assert_eq!(seq.pending_count(), 0);
    }

    #[test]
    fn collector_stability_round_trip() {
        // Full sequencer-engine stability flow: Ordered → follower Ack →
        // collector delivers + announces Stable → follower delivers.
        let mut seq = installed(EngineKind::Sequencer, 1, &[1, 2]);
        let mut member = installed(EngineKind::Sequencer, 2, &[1, 2]);
        let s_out = seq.submit(T0, "x");
        assert!(s_out.deliver.is_empty(), "collector needs the follower's ack");
        let ordered = s_out
            .sends
            .iter()
            .find_map(|(to, m)| match (to, m) {
                (to, EngineMsg::Ordered(om)) if *to == p(2) => Some(om.clone()),
                _ => None,
            })
            .expect("ordered multicast");
        // Follower ingests and acks the collector only.
        let m_out = member.on_msg(T0, p(1), EngineMsg::Ordered(ordered));
        assert!(m_out.deliver.is_empty());
        assert_eq!(acks(&m_out), vec![(p(1), 1)]);
        // Collector receives the ack: stable → delivers; the announcement
        // to followers is batched onto the next engine tick.
        let s_out = seq.on_msg(T0, p(2), EngineMsg::Ack { up_to: 1 });
        assert_eq!(s_out.deliver.len(), 1);
        let tick_out = seq.tick(T0);
        let stable = tick_out
            .sends
            .iter()
            .find_map(|(to, m)| match (to, m) {
                (to, EngineMsg::Stable { up_to }) if *to == p(2) => Some(*up_to),
                _ => None,
            })
            .expect("stability announcement");
        // Follower delivers on the announcement.
        let m_out = member.on_msg(T0, p(1), EngineMsg::Stable { up_to: stable });
        assert_eq!(m_out.deliver.len(), 1);
        assert_eq!(m_out.deliver[0].payload, "x");
    }

    #[test]
    fn non_sequencer_requests_then_delivers() {
        let mut seq = installed(EngineKind::Sequencer, 1, &[1, 2]);
        let mut member = installed(EngineKind::Sequencer, 2, &[1, 2]);
        let out = member.submit(T0, "x");
        assert!(out.deliver.is_empty());
        assert_eq!(out.sends.len(), 1);
        assert_eq!(member.pending_count(), 1);
        let req = out.sends.into_iter().next().unwrap().1;
        let s_out = seq.on_msg(T0, p(2), req);
        // Feed everything back and forth until quiet.
        let mut to_member: Vec<EngineMsg<&'static str>> =
            s_out.sends.into_iter().map(|(_, m)| m).collect();
        let mut to_seq: Vec<EngineMsg<&'static str>> = vec![];
        let mut member_got = vec![];
        let mut seq_got: Vec<OrderedMsg<&'static str>> = s_out.deliver;
        for i in 0..6 {
            for m in to_member.drain(..) {
                let o = member.on_msg(T0, p(1), m);
                to_seq.extend(o.sends.into_iter().map(|(_, m)| m));
                member_got.extend(o.deliver);
            }
            for m in to_seq.drain(..) {
                let o = seq.on_msg(T0, p(2), m);
                to_member.extend(o.sends.into_iter().map(|(_, m)| m));
                seq_got.extend(o.deliver);
            }
            // Flush batched stability announcements.
            let t = T0 + SimDuration::from_millis(i + 1);
            let o = seq.tick(t);
            to_member.extend(o.sends.into_iter().map(|(_, m)| m));
        }
        assert_eq!(member_got.len(), 1);
        assert_eq!(member_got[0].payload, "x");
        assert_eq!(seq_got.len(), 1);
        assert_eq!(member.pending_count(), 0);
    }

    #[test]
    fn sequencer_suppresses_duplicate_requests() {
        let mut seq = installed(EngineKind::Sequencer, 1, &[1, 2]);
        let out1 = seq.on_msg(T0, p(2), EngineMsg::Request { local_id: 1, payload: "x" });
        assert!(out1.sends.iter().any(|(_, m)| matches!(m, EngineMsg::Ordered(_))));
        // Duplicate before delivery (assign floor catches it).
        let out2 = seq.on_msg(T0, p(2), EngineMsg::Request { local_id: 1, payload: "x" });
        assert!(out2.sends.is_empty() && out2.deliver.is_empty());
        assert_eq!(seq.received_up_to(), 1);
    }

    #[test]
    fn halted_engine_queues_submissions() {
        let mut e = installed(EngineKind::Sequencer, 1, &[1, 2]);
        e.halt();
        let out = e.submit(T0, "q");
        assert!(out.sends.is_empty() && out.deliver.is_empty());
        assert_eq!(e.pending_count(), 1);
        // Reinstall resubmits (sole member now: delivered directly).
        let out = e.install(T0, vec![p(1)], 1, &[], true);
        assert_eq!(out.deliver.len(), 1);
        assert_eq!(e.pending_count(), 0);
    }

    #[test]
    fn digest_reports_received_prefix() {
        let mut e = installed(EngineKind::Sequencer, 1, &[1]);
        for s in ["a", "b", "c"] {
            let _ = e.submit(T0, s);
        }
        assert_eq!(e.delivered_up_to(), 3);
        let d = e.digest(1);
        assert_eq!(d.max_contig, 3);
        let seqs: Vec<u64> = d.extra.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![2, 3]);
        assert_eq!(d.dedup, vec![(p(1), 3)]);
    }

    #[test]
    fn digest_includes_received_but_undelivered() {
        // A member that received (but could not yet deliver) a message
        // still reports it in the flush digest — that is what makes
        // output-commit safe across view changes.
        let mut member = installed(EngineKind::Sequencer, 2, &[1, 2]);
        let m1 = OrderedMsg { seq: 1, origin: p(1), local_id: 1, payload: "a" };
        let out = member.on_msg(T0, p(1), EngineMsg::Ordered(m1));
        assert!(out.deliver.is_empty(), "not stable yet");
        member.halt();
        let d = member.digest(0);
        assert_eq!(d.max_contig, 1);
        assert_eq!(d.extra.len(), 1);
    }

    #[test]
    fn apply_flush_delivers_everything_agreed() {
        let mut e = installed(EngineKind::Sequencer, 2, &[1, 2]);
        let m1 = OrderedMsg { seq: 1, origin: p(1), local_id: 1, payload: "a" };
        let _ = e.on_msg(T0, p(1), EngineMsg::Ordered(m1.clone()));
        let m2 = OrderedMsg { seq: 2, origin: p(1), local_id: 2, payload: "b" };
        e.halt();
        let delivered = e.apply_flush(&[m1, m2], 3);
        let seqs: Vec<u64> = delivered.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(e.delivered_up_to(), 2);
    }

    #[test]
    fn prune_respects_delivery_cursor() {
        let mut e = installed(EngineKind::Sequencer, 1, &[1]);
        for s in ["a", "b", "c"] {
            let _ = e.submit(T0, s);
        }
        assert_eq!(e.log_len(), 3);
        e.prune(2);
        assert_eq!(e.log_len(), 1);
        e.prune(100);
        assert_eq!(e.log_len(), 0);
    }

    #[test]
    fn resume_after_abort_delivers_buffered() {
        let mut e = installed(EngineKind::Sequencer, 2, &[1, 2]);
        e.halt();
        let m1 = OrderedMsg { seq: 1, origin: p(1), local_id: 1, payload: "a" };
        let out = e.on_msg(T0, p(1), EngineMsg::Ordered(m1));
        assert!(out.deliver.is_empty());
        let out = e.on_msg(T0, p(1), EngineMsg::Stable { up_to: 1 });
        assert!(out.deliver.is_empty(), "halted: no delivery");
        let out = e.resume(T0);
        assert_eq!(out.deliver.len(), 1, "buffered message delivered on resume");
        assert_eq!(e.delivered_up_to(), 1);
    }

    #[test]
    fn token_holder_orders_and_passes() {
        let mut a = installed(EngineKind::Token, 1, &[1, 2]);
        let out = a.submit(T0, "a");
        // Ordered multicast happens, but delivery waits for member 2's ack.
        assert!(out.deliver.is_empty());
        let has_token = out
            .sends
            .iter()
            .any(|(to, m)| *to == p(2) && matches!(m, EngineMsg::Token { next_seq: 2, .. }));
        assert!(has_token, "token must pass to successor: {:?}", out.sends);
        let out = a.on_msg(T0, p(2), EngineMsg::Ack { up_to: 1 });
        assert_eq!(out.deliver.len(), 1);
        assert_eq!(out.deliver[0].seq, 1);
    }

    #[test]
    fn token_non_holder_waits_for_token() {
        let mut b = installed(EngineKind::Token, 2, &[1, 2]);
        let out = b.submit(T0, "b");
        assert!(out.deliver.is_empty());
        assert!(out.sends.is_empty());
        // Token arrives: order + pass back; delivery still needs the
        // peer's ack of the ordered message.
        let out = b.on_msg(T0, p(1), EngineMsg::Token { next_seq: 1, idle_hops: 0 });
        assert!(out
            .sends
            .iter()
            .any(|(to, m)| *to == p(1) && matches!(m, EngineMsg::Token { next_seq: 2, .. })));
        let out = b.on_msg(T0, p(1), EngineMsg::Ack { up_to: 1 });
        assert_eq!(out.deliver.len(), 1);
    }

    #[test]
    fn idle_token_held_until_release_then_passed_on_tick() {
        let mut a = installed(EngineKind::Token, 1, &[1, 2]);
        assert!(a.tick(T0).sends.is_empty());
        let later = T0 + SimDuration::from_millis(5);
        let out = a.tick(later);
        assert_eq!(out.sends.len(), 1);
        assert!(matches!(out.sends[0].1, EngineMsg::Token { next_seq: 1, .. }));
    }

    #[test]
    fn sole_token_member_keeps_token() {
        let mut a = installed(EngineKind::Token, 1, &[1]);
        let out = a.submit(T0, "x");
        assert_eq!(out.deliver.len(), 1);
        assert!(out.sends.is_empty());
        let out = a.submit(T0, "y");
        assert_eq!(out.deliver.len(), 1);
        assert_eq!(out.deliver[0].seq, 2);
    }

    #[test]
    fn stale_token_discarded() {
        let mut a = installed(EngineKind::Token, 2, &[1, 2]);
        let _ = a.on_msg(T0, p(1), EngineMsg::Token { next_seq: 1, idle_hops: 0 });
        let mut sub = a.submit(T0, "x");
        assert!(sub.deliver.is_empty());
        let _ = sub.sends.drain(..);
        // A stale duplicate of the old token arrives: ignored (our floor
        // is now 2, so a double grant at seq 1 is impossible).
        let out = a.on_msg(T0, p(1), EngineMsg::Token { next_seq: 1, idle_hops: 0 });
        assert!(out.deliver.is_empty() && out.sends.is_empty());
        let out = a.submit(T0, "y");
        assert!(out.deliver.is_empty() && out.sends.is_empty());
        // The live token returns with the seq we passed on: accepted, and
        // "y" is ordered at seq 2.
        let out = a.on_msg(T0, p(1), EngineMsg::Token { next_seq: 2, idle_hops: 0 });
        assert!(out
            .sends
            .iter()
            .any(|(_, m)| matches!(m, EngineMsg::Ordered(om) if om.seq == 2)));
    }

    #[test]
    fn install_resets_ack_floors() {
        let mut e = installed(EngineKind::Sequencer, 1, &[1, 2, 3]);
        let _ = e.submit(T0, "a");
        let _ = e.on_msg(T0, p(2), EngineMsg::Ack { up_to: 1 });
        // Member 3 never acked: still undelivered.
        assert_eq!(e.delivered_up_to(), 0);
        // View change removes member 3; the flush agrees history 1.
        e.halt();
        let m1 = OrderedMsg { seq: 1, origin: p(1), local_id: 1, payload: "a" };
        let delivered = e.apply_flush(&[m1], 2);
        assert_eq!(delivered.len(), 1);
        let _ = e.install(T0, vec![p(1), p(2)], 2, &[], true);
        // New submission becomes stable with just member 2's ack.
        let _ = e.submit(T0, "b");
        let out = e.on_msg(T0, p(2), EngineMsg::Ack { up_to: 2 });
        assert_eq!(out.deliver.len(), 1);
        assert_eq!(out.deliver[0].payload, "b");
    }
}
