//! Group communication configuration.

use jrs_sim::SimDuration;

/// Which total-order engine to run inside a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Fixed sequencer: the lowest-ranked view member assigns sequence
    /// numbers (ISIS style). Lowest latency for small groups.
    Sequencer,
    /// Rotating token: members take turns assigning sequence numbers from a
    /// circulating token (Totem style). Ablation baseline.
    Token,
}

/// How membership reacts to losing members.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipPolicy {
    /// Paper-faithful fail-stop model: any non-empty survivor set installs
    /// the next view ("as long as one head node survives"). Under a true
    /// network partition both sides may proceed (split brain) and are
    /// deterministically re-merged when connectivity returns — the losing
    /// side ejects and rejoins with state transfer.
    FailStop,
    /// Primary-component model: a new view requires a strict majority of
    /// the previous view (or exactly half including its lowest-ranked
    /// member). Split brain is impossible, but a string of unlucky
    /// failures can block the group.
    PrimaryComponent,
}

/// Tunables for a [`crate::GroupMember`].
#[derive(Clone, Debug)]
pub struct GroupConfig {
    /// Ordering engine.
    pub engine: EngineKind,
    /// Membership progression policy.
    pub membership: MembershipPolicy,
    /// How often the embedding process must call `tick` (drives heartbeats,
    /// retransmission and failure detection; *not* on the ordering fast
    /// path).
    pub tick_every: SimDuration,
    /// Heartbeat period.
    pub heartbeat_every: SimDuration,
    /// Silence threshold after which a peer is suspected dead.
    pub fail_after: SimDuration,
    /// Retransmission timeout for the reliable links.
    pub rto: SimDuration,
    /// If a view-change flush makes no progress for this long, the next
    /// live member takes over as flush coordinator.
    pub flush_timeout: SimDuration,
    /// Token rotation interval lower bound (token engine only): a holder
    /// with nothing to order passes the token on after this long.
    pub token_idle_pass: SimDuration,
    /// How often a member re-sends ordering requests for its own pending
    /// (not yet ordered) submissions. Covers requests that raced a view
    /// change; the sequencer's duplicate suppression makes this idempotent.
    pub request_retry: SimDuration,
    /// Assumed wire size of one application payload, for the network model.
    pub payload_bytes: u32,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            engine: EngineKind::Sequencer,
            membership: MembershipPolicy::FailStop,
            tick_every: SimDuration::from_millis(5),
            heartbeat_every: SimDuration::from_millis(50),
            fail_after: SimDuration::from_millis(250),
            rto: SimDuration::from_millis(25),
            flush_timeout: SimDuration::from_millis(300),
            token_idle_pass: SimDuration::from_millis(5),
            request_retry: SimDuration::from_millis(100),
            payload_bytes: 256,
        }
    }
}

impl GroupConfig {
    /// Default configuration with a specific engine.
    pub fn with_engine(engine: EngineKind) -> Self {
        GroupConfig { engine, ..Default::default() }
    }

    /// Paper-era conservative detection timings (slower failover, fewer
    /// false suspicions) — used by availability-oriented experiments.
    pub fn conservative() -> Self {
        GroupConfig {
            heartbeat_every: SimDuration::from_millis(500),
            fail_after: SimDuration::from_secs(2),
            flush_timeout: SimDuration::from_secs(3),
            ..Default::default()
        }
    }
}
