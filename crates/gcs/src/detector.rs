//! Heartbeat failure detector.
//!
//! Any traffic from a peer counts as life sign; a peer silent for longer
//! than `fail_after` is suspected. Under the paper's fail-stop model a
//! suspicion is treated as a fact and triggers a membership change.

use jrs_sim::{ProcId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Tracks last-heard times for a set of watched peers.
///
/// Ordered maps so iteration (e.g. [`FailureDetector::suspects`]) is
/// deterministic across replicas (detlint D001).
#[derive(Clone, Debug, Hash)]
pub struct FailureDetector {
    fail_after: SimDuration,
    last_heard: BTreeMap<ProcId, SimTime>,
    /// Peers declared failed out of band (voluntary leave, stalled flush
    /// coordinator). Cleared by any subsequent life sign.
    condemned: BTreeSet<ProcId>,
}

impl FailureDetector {
    /// New detector with the given silence threshold.
    pub fn new(fail_after: SimDuration) -> Self {
        FailureDetector {
            fail_after,
            last_heard: BTreeMap::new(),
            condemned: BTreeSet::new(),
        }
    }

    /// Start watching `peer`, counting from `now` (grace period of one full
    /// threshold before it can be suspected).
    pub fn watch(&mut self, peer: ProcId, now: SimTime) {
        self.last_heard.entry(peer).or_insert(now);
    }

    /// Stop watching `peer` (it left the view).
    pub fn unwatch(&mut self, peer: ProcId) {
        self.last_heard.remove(&peer);
        self.condemned.remove(&peer);
    }

    /// Record a life sign. A life sign also lifts a condemnation: a
    /// condemned-but-alive peer (e.g. a slow flush coordinator) is only
    /// excluded if it actually goes silent.
    pub fn heard(&mut self, peer: ProcId, now: SimTime) {
        if let Some(t) = self.last_heard.get_mut(&peer) {
            *t = (*t).max(now);
        }
        self.condemned.remove(&peer);
    }

    /// Forcibly mark a peer suspected (voluntary leave, which the paper
    /// treats as a forced failure, or a stalled flush coordinator).
    pub fn condemn(&mut self, peer: ProcId) {
        self.last_heard.entry(peer).or_insert(SimTime::ZERO);
        self.condemned.insert(peer);
    }

    /// Is `peer` currently suspected?
    pub fn suspected(&self, peer: ProcId, now: SimTime) -> bool {
        if self.condemned.contains(&peer) {
            return true;
        }
        match self.last_heard.get(&peer) {
            Some(&t) => now.since(t) >= self.fail_after,
            None => false,
        }
    }

    /// All watched peers currently suspected, in `ProcId` order (the
    /// map's iteration order — no explicit sort needed).
    pub fn suspects(&self, now: SimTime) -> Vec<ProcId> {
        self.last_heard
            .iter()
            .filter(|(&p, &t)| self.condemned.contains(&p) || now.since(t) >= self.fail_after)
            .map(|(&p, _)| p)
            .collect()
    }

    /// All watched peers.
    pub fn watched(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.last_heard.keys().copied()
    }

    /// Deterministic fingerprint of the detector state (watch list,
    /// last-heard times, condemnations) for model-checker deduplication.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        jrs_sim::fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ProcId = ProcId(1);
    const B: ProcId = ProcId(2);

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn silent_peer_gets_suspected() {
        let mut d = FailureDetector::new(SimDuration::from_millis(100));
        d.watch(A, at(0));
        assert!(!d.suspected(A, at(99)));
        assert!(d.suspected(A, at(100)));
    }

    #[test]
    fn heartbeat_resets_clock() {
        let mut d = FailureDetector::new(SimDuration::from_millis(100));
        d.watch(A, at(0));
        d.heard(A, at(80));
        assert!(!d.suspected(A, at(150)));
        assert!(d.suspected(A, at(180)));
    }

    #[test]
    fn unwatched_never_suspected() {
        let mut d = FailureDetector::new(SimDuration::from_millis(100));
        assert!(!d.suspected(A, at(1000)));
        d.watch(A, at(0));
        d.unwatch(A);
        assert!(!d.suspected(A, at(1000)));
    }

    #[test]
    fn condemn_is_immediate() {
        let mut d = FailureDetector::new(SimDuration::from_millis(100));
        d.watch(A, at(0));
        d.condemn(A);
        assert!(d.suspected(A, at(1)));
    }

    #[test]
    fn suspects_sorted() {
        let mut d = FailureDetector::new(SimDuration::from_millis(10));
        d.watch(B, at(0));
        d.watch(A, at(0));
        d.heard(A, at(5));
        assert_eq!(d.suspects(at(12)), vec![B]);
        assert_eq!(d.suspects(at(20)), vec![A, B]);
    }

    #[test]
    fn stale_heard_does_not_rewind() {
        let mut d = FailureDetector::new(SimDuration::from_millis(100));
        d.watch(A, at(0));
        d.heard(A, at(90));
        d.heard(A, at(50)); // out-of-order life sign must not rewind
        assert!(!d.suspected(A, at(189)));
        assert!(d.suspected(A, at(190)));
    }
}
