//! Membership views and the primary-component (quorum) rule.

use jrs_sim::ProcId;
use std::fmt;

/// Globally unique view identifier.
///
/// The counter alone is not unique: two concurrent flush coordinators could
/// both produce "view n+1" with different member sets. Including the
/// installing coordinator makes the identifier unique, so engine traffic
/// tagged with a view id can never be confused between two competing views.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId {
    /// Monotonically increasing installation counter.
    pub num: u64,
    /// The coordinator that installed this view.
    pub coord: ProcId,
}

impl ViewId {
    /// The pre-membership placeholder (a joiner that has never installed).
    pub const NONE: ViewId = ViewId { num: 0, coord: ProcId(0) };

    /// The bootstrap view id of a statically configured group.
    pub fn bootstrap(leader: ProcId) -> Self {
        ViewId { num: 1, coord: leader }
    }

    /// The id a flush coordinated by `coord` would install after this view.
    pub fn next(self, coord: ProcId) -> Self {
        ViewId { num: self.num + 1, coord }
    }
}

impl fmt::Debug for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@{}", self.num, self.coord)
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@{}", self.num, self.coord)
    }
}

/// A membership view: an agreed snapshot of who is in the group.
///
/// Members are kept sorted; a member's *rank* is its position in the sorted
/// list. Rank 0 (the lowest `ProcId`) acts as sequencer (sequencer engine)
/// and as the default flush coordinator.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct View {
    /// Unique view identifier.
    pub id: ViewId,
    /// Members, sorted ascending by `ProcId`.
    pub members: Vec<ProcId>,
}

impl View {
    /// Build a view, sorting and deduplicating the member list.
    pub fn new(id: ViewId, mut members: Vec<ProcId>) -> Self {
        members.sort_unstable();
        members.dedup();
        View { id, members }
    }

    /// The initial (bootstrap) view of a statically configured group.
    pub fn initial(members: Vec<ProcId>) -> Self {
        let mut v = View::new(ViewId::NONE, members);
        v.id = ViewId::bootstrap(v.leader().expect("bootstrap view must be non-empty"));
        v
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the view has no members (never the case for installed
    /// views; useful for placeholder values).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Is `p` a member?
    pub fn contains(&self, p: ProcId) -> bool {
        self.members.binary_search(&p).is_ok()
    }

    /// Rank of a member (position in the sorted list).
    pub fn rank_of(&self, p: ProcId) -> Option<usize> {
        self.members.binary_search(&p).ok()
    }

    /// The lowest-ranked member (sequencer / default coordinator).
    pub fn leader(&self) -> Option<ProcId> {
        self.members.first().copied()
    }

    /// The member after `p` in rank order, wrapping around (token routing).
    pub fn successor_of(&self, p: ProcId) -> Option<ProcId> {
        let rank = self.rank_of(p)?;
        Some(self.members[(rank + 1) % self.members.len()])
    }

    /// Deterministic fingerprint of this view (id and member list), for
    /// model-checker state deduplication and replica comparison.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        jrs_sim::fingerprint(self)
    }

    /// Primary-component check: may a component with member set `survivors`
    /// succeed this view?
    ///
    /// Rule: the survivors must be a strict majority of this view, or
    /// exactly half of it *including this view's lowest-ranked member* (the
    /// deterministic tie-breaker). Under the paper's crash-stop assumption
    /// the survivor set is always the full live set, so availability
    /// degrades gracefully down to a single node: {a,b,c,d} → {a,b,c} →
    /// {a,b} → {a}. Under a true network partition at most one side can
    /// satisfy the rule, preventing split-brain job scheduling.
    pub fn quorum(&self, survivors: &[ProcId]) -> bool {
        let in_view = survivors.iter().filter(|p| self.contains(**p)).count();
        if 2 * in_view > self.members.len() {
            return true;
        }
        if 2 * in_view == self.members.len() {
            if let Some(leader) = self.leader() {
                return survivors.contains(&leader);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn vid(n: u64) -> ViewId {
        ViewId { num: n, coord: p(0) }
    }

    #[test]
    fn members_sorted_and_deduped() {
        let v = View::new(vid(1), vec![p(3), p(1), p(2), p(1)]);
        assert_eq!(v.members, vec![p(1), p(2), p(3)]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn ranks_and_leader() {
        let v = View::new(vid(1), vec![p(5), p(9), p(7)]);
        assert_eq!(v.leader(), Some(p(5)));
        assert_eq!(v.rank_of(p(7)), Some(1));
        assert_eq!(v.rank_of(p(9)), Some(2));
        assert_eq!(v.rank_of(p(6)), None);
        assert!(v.contains(p(5)));
        assert!(!v.contains(p(6)));
    }

    #[test]
    fn successor_wraps() {
        let v = View::new(vid(1), vec![p(1), p(2), p(3)]);
        assert_eq!(v.successor_of(p(1)), Some(p(2)));
        assert_eq!(v.successor_of(p(3)), Some(p(1)));
        assert_eq!(v.successor_of(p(9)), None);
    }

    #[test]
    fn quorum_majority() {
        let v = View::new(vid(1), vec![p(1), p(2), p(3), p(4)]);
        assert!(v.quorum(&[p(1), p(2), p(3)]));
        assert!(v.quorum(&[p(2), p(3), p(4)]));
        assert!(!v.quorum(&[p(3), p(4)]));
    }

    #[test]
    fn quorum_even_split_needs_leader() {
        let v = View::new(vid(1), vec![p(1), p(2), p(3), p(4)]);
        assert!(v.quorum(&[p(1), p(2)]));
        assert!(!v.quorum(&[p(2), p(3)]));
    }

    #[test]
    fn quorum_degrades_to_single_node() {
        let v2 = View::new(vid(5), vec![p(1), p(2)]);
        assert!(v2.quorum(&[p(1)]));
        assert!(!v2.quorum(&[p(2)]));
        let v1 = View::new(vid(6), vec![p(1)]);
        assert!(v1.quorum(&[p(1)]));
    }

    #[test]
    fn quorum_ignores_non_members() {
        let v = View::new(vid(1), vec![p(1), p(2), p(3)]);
        // Joiners don't count toward quorum of the *previous* view.
        assert!(!v.quorum(&[p(3), p(9), p(10)]));
        assert!(v.quorum(&[p(1), p(2), p(9)]));
    }
}
