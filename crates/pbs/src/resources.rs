//! Compute-node resource tracking.

use jrs_sim::ProcId;
use std::collections::BTreeMap;

/// State of one compute node from the server's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Available for allocation.
    Free,
    /// Allocated to a running job.
    Busy,
    /// Administratively or by failure unavailable.
    Offline,
}

/// One compute node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ComputeNode {
    /// Node name (sorted order defines deterministic allocation).
    pub name: String,
    /// The mom daemon process serving this node, once known.
    pub mom: Option<ProcId>,
    /// Allocation state.
    pub state: NodeState,
}

/// The server's pool of compute nodes.
///
/// Determinism note: all iteration is in node-name order, so every replica
/// allocates the same nodes to the same job.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct NodePool {
    nodes: BTreeMap<String, ComputeNode>,
}

impl NodePool {
    /// Pool from a list of node names.
    pub fn new(names: impl IntoIterator<Item = String>) -> Self {
        let nodes = names
            .into_iter()
            .map(|name| {
                (
                    name.clone(),
                    ComputeNode { name, mom: None, state: NodeState::Free },
                )
            })
            .collect();
        NodePool { nodes }
    }

    /// Pool from fully described nodes (decoding a durable snapshot).
    pub fn from_nodes(nodes: impl IntoIterator<Item = ComputeNode>) -> Self {
        NodePool { nodes: nodes.into_iter().map(|n| (n.name.clone(), n)).collect() }
    }

    /// Register (or update) the mom process for a node.
    pub fn set_mom(&mut self, name: &str, mom: ProcId) {
        if let Some(n) = self.nodes.get_mut(name) {
            n.mom = Some(mom);
        }
    }

    /// The mom serving a node.
    pub fn mom_of(&self, name: &str) -> Option<ProcId> {
        self.nodes.get(name).and_then(|n| n.mom)
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Names of currently free nodes, sorted.
    pub fn free_nodes(&self) -> Vec<String> {
        self.nodes
            .values()
            .filter(|n| n.state == NodeState::Free)
            .map(|n| n.name.clone())
            .collect()
    }

    /// Names of all non-offline nodes, sorted.
    pub fn online_nodes(&self) -> Vec<String> {
        self.nodes
            .values()
            .filter(|n| n.state != NodeState::Offline)
            .map(|n| n.name.clone())
            .collect()
    }

    /// Count of free nodes.
    pub fn free_count(&self) -> usize {
        self.nodes.values().filter(|n| n.state == NodeState::Free).count()
    }

    /// Are all non-offline nodes free (cluster idle)?
    pub fn all_idle(&self) -> bool {
        self.nodes.values().all(|n| n.state != NodeState::Busy)
    }

    /// Mark nodes busy (allocation).
    pub fn allocate(&mut self, names: &[String]) {
        for name in names {
            if let Some(n) = self.nodes.get_mut(name) {
                debug_assert_eq!(n.state, NodeState::Free, "double allocation of {name}");
                n.state = NodeState::Busy;
            }
        }
    }

    /// Mark nodes free again (job finished).
    pub fn release(&mut self, names: &[String]) {
        for name in names {
            if let Some(n) = self.nodes.get_mut(name) {
                if n.state == NodeState::Busy {
                    n.state = NodeState::Free;
                }
            }
        }
    }

    /// Take a node offline (mom failure); releases it from allocations.
    pub fn set_offline(&mut self, name: &str) {
        if let Some(n) = self.nodes.get_mut(name) {
            n.state = NodeState::Offline;
        }
    }

    /// Bring a node back online.
    pub fn set_online(&mut self, name: &str) {
        if let Some(n) = self.nodes.get_mut(name) {
            if n.state == NodeState::Offline {
                n.state = NodeState::Free;
            }
        }
    }

    /// Iterate nodes in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ComputeNode> {
        self.nodes.values()
    }

    /// Allocation state only — excludes mom registrations, which are
    /// replica-local wiring rather than replicated state.
    pub fn alloc_state(&self) -> Vec<(String, NodeState)> {
        self.nodes.values().map(|n| (n.name.clone(), n.state)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> NodePool {
        NodePool::new(["n2", "n1", "n3"].map(String::from))
    }

    #[test]
    fn nodes_sorted_by_name() {
        let p = pool();
        let names: Vec<&str> = p.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["n1", "n2", "n3"]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn allocate_and_release() {
        let mut p = pool();
        assert!(p.all_idle());
        let alloc = vec!["n1".to_string(), "n2".to_string()];
        p.allocate(&alloc);
        assert_eq!(p.free_nodes(), vec!["n3"]);
        assert!(!p.all_idle());
        p.release(&alloc);
        assert_eq!(p.free_count(), 3);
    }

    #[test]
    fn offline_excluded_from_free() {
        let mut p = pool();
        p.set_offline("n2");
        assert_eq!(p.free_nodes(), vec!["n1", "n3"]);
        assert_eq!(p.online_nodes(), vec!["n1", "n3"]);
        // A cluster with running nothing but an offline node is still idle.
        assert!(p.all_idle());
        p.set_online("n2");
        assert_eq!(p.free_count(), 3);
    }

    #[test]
    fn mom_registration() {
        let mut p = pool();
        assert_eq!(p.mom_of("n1"), None);
        p.set_mom("n1", ProcId(9));
        assert_eq!(p.mom_of("n1"), Some(ProcId(9)));
        p.set_mom("unknown", ProcId(1)); // silently ignored
        assert_eq!(p.mom_of("unknown"), None);
    }
}
