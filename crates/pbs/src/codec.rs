//! Durable log-record encoding of PBS commands, reports and snapshots.
//!
//! The JOSHUA write-ahead log persists every delivered command; the
//! snapshot store persists full replica state. Both use the deterministic
//! [`Codec`] from `jrs-store` (fixed-width little-endian, ordered
//! containers). Encodings are enum-tagged with a `u8` discriminant in
//! declaration order; unknown tags decode to an error — in a CRC-valid
//! record that can only mean a code bug, never disk damage.

use crate::job::{Job, JobId, JobSpec, JobState, JobStatus};
use crate::resources::{ComputeNode, NodePool, NodeState};
use crate::server::{CmdReply, MomReport, ServerCmd, ServerSnapshot};
use jrs_store::{Codec, DecodeError, Reader};

impl Codec for JobId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(JobId(u64::decode(r)?))
    }
}

impl Codec for JobSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.user.encode(out);
        self.nodes.encode(out);
        self.walltime.encode(out);
        self.runtime.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(JobSpec {
            name: String::decode(r)?,
            user: String::decode(r)?,
            nodes: u32::decode(r)?,
            walltime: Codec::decode(r)?,
            runtime: Codec::decode(r)?,
        })
    }
}

impl Codec for JobState {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Exiting => 2,
            JobState::Complete => 3,
            JobState::Held => 4,
        };
        tag.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(JobState::Queued),
            1 => Ok(JobState::Running),
            2 => Ok(JobState::Exiting),
            3 => Ok(JobState::Complete),
            4 => Ok(JobState::Held),
            _ => Err(DecodeError::Invalid("JobState tag")),
        }
    }
}

impl Codec for Job {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.spec.encode(out);
        self.state.encode(out);
        self.exit_status.encode(out);
        self.allocated.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Job {
            id: JobId::decode(r)?,
            spec: JobSpec::decode(r)?,
            state: JobState::decode(r)?,
            exit_status: Codec::decode(r)?,
            allocated: Codec::decode(r)?,
        })
    }
}

impl Codec for JobStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.name.encode(out);
        self.user.encode(out);
        self.state.encode(out);
        self.exit_status.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(JobStatus {
            id: JobId::decode(r)?,
            name: String::decode(r)?,
            user: String::decode(r)?,
            state: char::decode(r)?,
            exit_status: Codec::decode(r)?,
        })
    }
}

impl Codec for ServerCmd {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerCmd::Qsub(spec) => {
                0u8.encode(out);
                spec.encode(out);
            }
            ServerCmd::Qdel(id) => {
                1u8.encode(out);
                id.encode(out);
            }
            ServerCmd::Qstat(filter) => {
                2u8.encode(out);
                filter.encode(out);
            }
            ServerCmd::Qhold(id) => {
                3u8.encode(out);
                id.encode(out);
            }
            ServerCmd::Qrls(id) => {
                4u8.encode(out);
                id.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(ServerCmd::Qsub(JobSpec::decode(r)?)),
            1 => Ok(ServerCmd::Qdel(JobId::decode(r)?)),
            2 => Ok(ServerCmd::Qstat(Codec::decode(r)?)),
            3 => Ok(ServerCmd::Qhold(JobId::decode(r)?)),
            4 => Ok(ServerCmd::Qrls(JobId::decode(r)?)),
            _ => Err(DecodeError::Invalid("ServerCmd tag")),
        }
    }
}

impl Codec for CmdReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CmdReply::Submitted(id) => {
                0u8.encode(out);
                id.encode(out);
            }
            CmdReply::Deleted(id) => {
                1u8.encode(out);
                id.encode(out);
            }
            CmdReply::Held(id) => {
                2u8.encode(out);
                id.encode(out);
            }
            CmdReply::Released(id) => {
                3u8.encode(out);
                id.encode(out);
            }
            CmdReply::Status(rows) => {
                4u8.encode(out);
                rows.encode(out);
            }
            CmdReply::Error(msg) => {
                5u8.encode(out);
                msg.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(CmdReply::Submitted(JobId::decode(r)?)),
            1 => Ok(CmdReply::Deleted(JobId::decode(r)?)),
            2 => Ok(CmdReply::Held(JobId::decode(r)?)),
            3 => Ok(CmdReply::Released(JobId::decode(r)?)),
            4 => Ok(CmdReply::Status(Codec::decode(r)?)),
            5 => Ok(CmdReply::Error(String::decode(r)?)),
            _ => Err(DecodeError::Invalid("CmdReply tag")),
        }
    }
}

impl Codec for MomReport {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MomReport::Started { job } => {
                0u8.encode(out);
                job.encode(out);
            }
            MomReport::Finished { job, exit } => {
                1u8.encode(out);
                job.encode(out);
                exit.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(MomReport::Started { job: JobId::decode(r)? }),
            1 => Ok(MomReport::Finished { job: JobId::decode(r)?, exit: i32::decode(r)? }),
            _ => Err(DecodeError::Invalid("MomReport tag")),
        }
    }
}

impl Codec for NodeState {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            NodeState::Free => 0,
            NodeState::Busy => 1,
            NodeState::Offline => 2,
        };
        tag.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(NodeState::Free),
            1 => Ok(NodeState::Busy),
            2 => Ok(NodeState::Offline),
            _ => Err(DecodeError::Invalid("NodeState tag")),
        }
    }
}

impl Codec for ComputeNode {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.mom.encode(out);
        self.state.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ComputeNode {
            name: String::decode(r)?,
            mom: Codec::decode(r)?,
            state: NodeState::decode(r)?,
        })
    }
}

impl Codec for NodePool {
    fn encode(&self, out: &mut Vec<u8>) {
        let nodes: Vec<ComputeNode> = self.iter().cloned().collect();
        nodes.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NodePool::from_nodes(Vec::<ComputeNode>::decode(r)?))
    }
}

impl Codec for ServerSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.jobs.encode(out);
        self.next_id.encode(out);
        self.pool.encode(out);
        self.running_since.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ServerSnapshot {
            jobs: Codec::decode(r)?,
            next_id: u64::decode(r)?,
            pool: NodePool::decode(r)?,
            running_since: Codec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FifoExclusive;
    use crate::server::PbsServerCore;
    use jrs_sim::{ProcId, SimTime};

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn commands_round_trip() {
        round_trip(ServerCmd::Qsub(JobSpec::trivial("job-0")));
        round_trip(ServerCmd::Qdel(JobId(3)));
        round_trip(ServerCmd::Qstat(None));
        round_trip(ServerCmd::Qstat(Some(JobId(1))));
        round_trip(ServerCmd::Qhold(JobId(2)));
        round_trip(ServerCmd::Qrls(JobId(2)));
    }

    #[test]
    fn replies_and_reports_round_trip() {
        round_trip(CmdReply::Submitted(JobId(1)));
        round_trip(CmdReply::Error("nope".into()));
        let j = Job::queued(JobId(1), JobSpec::trivial("x"));
        round_trip(CmdReply::Status(vec![JobStatus::from(&j)]));
        round_trip(MomReport::Started { job: JobId(1) });
        round_trip(MomReport::Finished { job: JobId(2), exit: -11 });
    }

    #[test]
    fn live_server_snapshot_round_trips_exactly() {
        let mut s = PbsServerCore::new(
            "head",
            (0..3).map(|i| format!("c{i:02}")),
            Box::new(FifoExclusive),
        );
        s.register_mom("c00", ProcId(9));
        let now = SimTime::ZERO;
        let _ = s.apply(now, &ServerCmd::Qsub(JobSpec::trivial("a")));
        let _ = s.apply(now, &ServerCmd::Qsub(JobSpec::trivial("b")));
        let _ = s.apply(now, &ServerCmd::Qhold(JobId(2)));
        let snap = s.snapshot();
        let decoded = ServerSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        // Full equality, not just `consistent_with`: the durable encoding
        // must lose nothing, including mom wiring and start times.
        assert_eq!(decoded, snap);
    }
}
