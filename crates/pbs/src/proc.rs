//! Simulation process wrappers: a plain single-head PBS server (the
//! baseline TORQUE of the paper's Figure 1 architecture), the mom daemon,
//! and a measuring PBS client.
//!
//! The client speaks [`ClientRequest`]/[`ClientReply`] — the same envelope
//! the JOSHUA daemons accept — so one client implementation drives the
//! baseline, the active/standby and the symmetric active/active systems.

use crate::job::JobId;
use crate::mom::{MomAction, MomInbound, PbsMomCore};
use crate::server::{CmdReply, MomReport, PbsServerCore, ServerAction, ServerCmd};
use jrs_sim::{Ctx, Msg, ProcId, Process, SimDuration, SimTime, TimerId};
use std::collections::{BTreeMap, VecDeque};

/// A user command sent to a head node, with an id for at-least-once
/// retransmission and server-side duplicate suppression.
#[derive(Clone, Debug)]
pub struct ClientRequest {
    /// The requesting client process.
    pub client: ProcId,
    /// Client-unique request id (monotonic per client).
    pub req_id: u64,
    /// The PBS command.
    pub cmd: ServerCmd,
}

/// A head node's reply to a client.
#[derive(Clone, Debug)]
pub struct ClientReply {
    /// Echoed request id.
    pub req_id: u64,
    /// The command's result.
    pub reply: CmdReply,
}

/// Arbiter request sent by a mom's launch prologue (jmutex acquire).
#[derive(Clone, Copy, Debug)]
pub struct ArbiterRequest {
    /// The job whose launch mutex is requested.
    pub job: JobId,
    /// The launch session on the mom.
    pub session: u64,
    /// The mom process (verdict goes back there).
    pub mom: ProcId,
    /// Post-reboot reclaim (see [`MomAction::AskArbiter`]).
    pub reclaim: bool,
}

/// Mutex release after job completion (jdone).
#[derive(Clone, Copy, Debug)]
pub struct ArbiterRelease {
    /// The job whose launch mutex is released.
    pub job: JobId,
    /// The releasing mom.
    pub mom: ProcId,
}

/// CPU cost model of the PBS server, standing in for the paper's
/// 450 MHz Pentium III head nodes (forking, spooling and accounting I/O
/// per command). Calibrated in EXPERIMENTS.md against Figure 10.
#[derive(Clone, Copy, Debug)]
pub struct PbsCostModel {
    /// Processing cost of a state-changing command (qsub/qdel/...).
    pub cmd_processing: SimDuration,
    /// Processing cost of a status query.
    pub stat_processing: SimDuration,
    /// Cost of dispatching a job start to a mom.
    pub dispatch_processing: SimDuration,
}

impl Default for PbsCostModel {
    fn default() -> Self {
        PbsCostModel {
            cmd_processing: SimDuration::from_millis(96),
            stat_processing: SimDuration::from_millis(40),
            dispatch_processing: SimDuration::from_millis(5),
        }
    }
}

impl PbsCostModel {
    /// Cost of one command.
    pub fn cost_of(&self, cmd: &ServerCmd) -> SimDuration {
        match cmd {
            ServerCmd::Qstat(_) => self.stat_processing,
            _ => self.cmd_processing,
        }
    }
}

/// Plain single-head PBS server process: the unreplicated baseline
/// (TORQUE row of Figures 10/11).
pub struct PbsHeadProcess {
    core: PbsServerCore,
    cost: PbsCostModel,
}

impl PbsHeadProcess {
    /// Wrap a server core.
    pub fn new(core: PbsServerCore, cost: PbsCostModel) -> Self {
        PbsHeadProcess { core, cost }
    }

    /// Inspect the server (post-run assertions).
    pub fn core(&self) -> &PbsServerCore {
        &self.core
    }

    /// Mutable access (harness wiring: mom registration).
    pub fn core_mut(&mut self) -> &mut PbsServerCore {
        &mut self.core
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, actions: Vec<ServerAction>, delay: SimDuration) {
        for a in actions {
            match a {
                ServerAction::Start { mom, job, spec, nodes } => {
                    if let Some(mom) = mom {
                        let msg = MomInbound::Start {
                            job,
                            spec,
                            nodes,
                            server: ctx.me(),
                            arbiter: None,
                        };
                        ctx.send_after(mom, msg, delay + self.cost.dispatch_processing);
                    }
                }
                ServerAction::Cancel { mom, job } => {
                    if let Some(mom) = mom {
                        let msg = MomInbound::Cancel { job, server: ctx.me() };
                        ctx.send_after(mom, msg, delay + self.cost.dispatch_processing);
                    }
                }
            }
        }
    }
}

impl Process for PbsHeadProcess {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Msg) {
        let now = ctx.now();
        if let Some(req) = msg.downcast_ref::<ClientRequest>() {
            let cost = self.cost.cost_of(&req.cmd);
            let (reply, actions) = self.core.apply(now, &req.cmd);
            ctx.send_after(req.client, ClientReply { req_id: req.req_id, reply }, cost);
            self.dispatch(ctx, actions, cost);
            return;
        }
        if let Ok(report) = msg.downcast::<MomReport>() {
            let actions = self.core.on_report(now, &report);
            self.dispatch(ctx, actions, SimDuration::ZERO);
        }
    }
}

/// The mom daemon process.
pub struct PbsMomProcess {
    core: PbsMomCore,
    timers: BTreeMap<JobId, TimerId>,
}

impl PbsMomProcess {
    /// Wrap a mom core.
    pub fn new(core: PbsMomCore) -> Self {
        PbsMomProcess { core, timers: BTreeMap::new() }
    }

    /// Inspect the mom (post-run assertions, e.g. `real_runs`).
    pub fn core(&self) -> &PbsMomCore {
        &self.core
    }

    fn perform(&mut self, ctx: &mut Ctx<'_>, actions: Vec<MomAction>) {
        for a in actions {
            match a {
                MomAction::Report { to, report } => ctx.send(to, report),
                MomAction::AskArbiter { arbiter, job, session, reclaim } => {
                    ctx.send(arbiter, ArbiterRequest { job, session, mom: ctx.me(), reclaim });
                }
                MomAction::ReleaseArbiter { arbiter, job } => {
                    ctx.send(arbiter, ArbiterRelease { job, mom: ctx.me() });
                }
                MomAction::StartTimer { job, after } => {
                    let t = ctx.set_timer(after, job.0);
                    self.timers.insert(job, t);
                }
                MomAction::CancelTimer { job } => {
                    if let Some(t) = self.timers.remove(&job) {
                        ctx.cancel_timer(t);
                    }
                }
            }
        }
    }
}

impl Process for PbsMomProcess {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Msg) {
        // A daemon must degrade on an unexpected payload, not die (F003).
        let Ok(msg) = msg.downcast::<MomInbound>() else { return };
        let actions = self.core.on_msg(*msg);
        self.perform(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId, tag: u64) {
        let job = JobId(tag);
        self.timers.remove(&job);
        let actions = self.core.on_timer(job);
        self.perform(ctx, actions);
    }
}

/// One measured command execution, emitted by the client.
#[derive(Clone, Debug)]
pub struct SubmitRecord {
    /// Position in the script.
    pub index: usize,
    /// Round-trip latency.
    pub latency: SimDuration,
    /// The reply.
    pub reply: CmdReply,
    /// How many sends were needed (1 = no retry).
    pub attempts: u32,
}

/// Emitted when the client's script completes.
#[derive(Clone, Copy, Debug)]
pub struct ClientDone {
    /// When the first command was sent.
    pub started: SimTime,
    /// When the last reply arrived.
    pub finished: SimTime,
    /// Number of commands executed.
    pub count: usize,
}

/// A closed-loop measuring client: sends one command, waits for the
/// reply, records the latency, sends the next. On timeout it fails over
/// to the next target head node and retries the same request id.
pub struct PbsClientProcess {
    targets: Vec<ProcId>,
    current_target: usize,
    /// Rotate the target per command (asymmetric active/active load
    /// balancing) instead of only on failover.
    round_robin: bool,
    script: VecDeque<ServerCmd>,
    next_req: u64,
    index: usize,
    outstanding: Option<Outstanding>,
    timeout: SimDuration,
    think_time: SimDuration,
    started: Option<SimTime>,
}

struct Outstanding {
    req_id: u64,
    cmd: ServerCmd,
    sent: SimTime,
    first_sent: SimTime,
    attempts: u32,
    timer: TimerId,
}

impl PbsClientProcess {
    /// New client with a command script and target head nodes (first is
    /// preferred; the rest are failover alternates).
    pub fn new(targets: Vec<ProcId>, script: Vec<ServerCmd>) -> Self {
        assert!(!targets.is_empty(), "client needs at least one target");
        PbsClientProcess {
            targets,
            current_target: 0,
            round_robin: false,
            script: script.into(),
            next_req: 1,
            index: 0,
            outstanding: None,
            timeout: SimDuration::from_secs(2),
            think_time: SimDuration::ZERO,
            started: None,
        }
    }

    /// Override the failover timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Distribute commands round-robin over the targets (asymmetric
    /// active/active mode).
    pub fn with_round_robin(mut self) -> Self {
        self.round_robin = true;
        self
    }

    /// Space commands by a think time instead of submitting back-to-back.
    pub fn with_think_time(mut self, think: SimDuration) -> Self {
        self.think_time = think;
        self
    }

    fn send_next(&mut self, ctx: &mut Ctx<'_>) {
        let Some(cmd) = self.script.pop_front() else {
            let started = self.started.unwrap_or(ctx.now());
            ctx.emit(ClientDone { started, finished: ctx.now(), count: self.index });
            return;
        };
        let req_id = self.next_req;
        self.next_req += 1;
        let now = ctx.now();
        self.started.get_or_insert(now);
        if self.round_robin && self.index > 0 {
            self.current_target = (self.current_target + 1) % self.targets.len();
        }
        let target = self.targets[self.current_target];
        ctx.send(
            target,
            ClientRequest { client: ctx.me(), req_id, cmd: cmd.clone() },
        );
        let timer = ctx.set_timer(self.timeout, 1);
        self.outstanding = Some(Outstanding {
            req_id,
            cmd,
            sent: now,
            first_sent: now,
            attempts: 1,
            timer,
        });
    }
}

impl Process for PbsClientProcess {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.send_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Msg) {
        let Ok(reply) = msg.downcast::<ClientReply>() else {
            return;
        };
        // Take-then-reinsert instead of check-then-unwrap: a duplicate or
        // late reply (retried request already answered, or a reply racing
        // the completion of the script) must be a no-op, never a panic.
        let Some(out) = self.outstanding.take() else {
            return; // late reply: nothing in flight any more
        };
        if reply.req_id != out.req_id {
            // Stale duplicate from a retried request: put the live
            // request back and keep waiting.
            self.outstanding = Some(out);
            return;
        }
        ctx.cancel_timer(out.timer);
        ctx.emit(SubmitRecord {
            index: self.index,
            latency: ctx.now().since(out.first_sent),
            reply: reply.reply,
            attempts: out.attempts,
        });
        self.index += 1;
        if self.think_time.is_zero() {
            self.send_next(ctx);
        } else {
            ctx.set_timer(self.think_time, 2);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId, tag: u64) {
        match tag {
            1 => {
                // Timeout: fail over to the next head and retry the same
                // request id.
                let next_target = (self.current_target + 1) % self.targets.len();
                self.current_target = next_target;
                let target = self.targets[next_target];
                let me = ctx.me();
                let now = ctx.now();
                let timer = ctx.set_timer(self.timeout, 1);
                // One borrow of the outstanding slot for the whole update:
                // no second `as_mut().unwrap()` that could race a reply
                // clearing the slot between the two accesses (F003).
                let Some(out) = &mut self.outstanding else {
                    ctx.cancel_timer(timer);
                    return;
                };
                out.attempts += 1;
                out.sent = now;
                out.timer = timer;
                let req =
                    ClientRequest { client: me, req_id: out.req_id, cmd: out.cmd.clone() };
                ctx.send(target, req);
            }
            2 => self.send_next(ctx),
            _ => {}
        }
    }
}
