//! The PBS mom daemon (compute-node execution agent).
//!
//! Under symmetric active/active replication *every* head node's server
//! independently decides to start the same job and contacts the mom. Each
//! such start attempt opens a **launch session** whose prologue asks an
//! arbiter (JOSHUA's `jmutex` — a distributed mutual exclusion through the
//! group communication system) for permission. Exactly one session is
//! granted and really executes the job; denied sessions **emulate** the
//! start, exactly as the paper describes. Completion is reported to every
//! known head node (the TORQUE v2.0p1 multi-server feature the paper
//! relies on), so all replicas converge.
//!
//! The `obituary_bug` flag reproduces the TORQUE defect the paper reports
//! ("PBS mom servers did not simply ignore a failed head node, but rather
//! kept the current job in running status until it returned to service"):
//! with the bug enabled, completion is reported only to the session owner.

use crate::job::{exit, JobId, JobSpec};
use crate::server::MomReport;
use jrs_sim::{ProcId, SimDuration};
use std::collections::{BTreeMap, BTreeSet};

/// Messages accepted by a mom (sent by head-node processes or arbiters).
#[derive(Clone, Debug)]
pub enum MomInbound {
    /// A head node asks to start a job (one replica's attempt).
    Start {
        /// The job.
        job: JobId,
        /// Its spec.
        spec: JobSpec,
        /// Allocated nodes (first = this mom's node, the mother superior).
        nodes: Vec<String>,
        /// The head-node process making this attempt.
        server: ProcId,
        /// Arbiter to ask for launch permission; `None` grants locally
        /// (single-head operation).
        arbiter: Option<ProcId>,
    },
    /// A head node cancels a job (qdel).
    Cancel {
        /// The job.
        job: JobId,
        /// The head node asking.
        server: ProcId,
    },
    /// Arbiter's verdict for a launch session.
    Verdict {
        /// The job.
        job: JobId,
        /// The session the verdict is for.
        session: u64,
        /// Granted = really run; denied = emulate the start.
        granted: bool,
    },
    /// Register a head node for completion reports (multi-server feature).
    RegisterServer {
        /// The head-node process.
        server: ProcId,
    },
}

/// Side effects the mom wants performed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MomAction {
    /// Send a report to a head-node process.
    Report {
        /// Destination head process.
        to: ProcId,
        /// The report.
        report: MomReport,
    },
    /// Ask an arbiter for launch permission (jmutex acquire).
    AskArbiter {
        /// The arbiter process.
        arbiter: ProcId,
        /// The job.
        job: JobId,
        /// This session.
        session: u64,
        /// True when this is a post-reboot reclaim: the mom concluded the
        /// standing grant belongs to a previous life of itself (every
        /// session denied while still arbitrating) and asks the arbiter
        /// to adopt this fresh session.
        reclaim: bool,
    },
    /// Release the launch mutex after completion (jdone).
    ReleaseArbiter {
        /// The arbiter process.
        arbiter: ProcId,
        /// The job.
        job: JobId,
    },
    /// Arm the execution timer for a really-started job.
    StartTimer {
        /// The job.
        job: JobId,
        /// Fires after this long.
        after: SimDuration,
    },
    /// Cancel the execution timer (job cancelled).
    CancelTimer {
        /// The job.
        job: JobId,
    },
}

#[derive(Clone, Debug)]
struct Session {
    id: u64,
    arbiter: Option<ProcId>,
    /// The arbiter denied this session.
    denied: bool,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    /// Sessions opened, nothing granted yet.
    Arbitrating,
    /// One session won; the job is executing.
    Running { session: u64 },
    /// Finished (completed, killed or cancelled).
    Done { exit: i32 },
}

#[derive(Clone, Debug)]
struct MomJob {
    spec: JobSpec,
    /// First head to attempt the start ("owner" for the obituary bug).
    owner: ProcId,
    /// Heads that attempted a start.
    interested: BTreeSet<ProcId>,
    /// Launch sessions by requesting head.
    sessions: BTreeMap<ProcId, Session>,
    phase: Phase,
    /// A post-reboot reclaim was already fired (at most one per job).
    reclaimed: bool,
}

/// The mom state machine. Timers are owned by the embedding process; the
/// core only emits `StartTimer`/`CancelTimer` actions and receives
/// `on_timer` calls.
pub struct PbsMomCore {
    node: String,
    next_session: u64,
    jobs: BTreeMap<JobId, MomJob>,
    servers: BTreeSet<ProcId>,
    /// Reproduce the paper's TORQUE obituary defect.
    pub obituary_bug: bool,
    /// Number of *real* job executions performed (the exactly-once
    /// property asserts on this).
    pub real_runs: u64,
}

impl PbsMomCore {
    /// New mom for the named compute node.
    pub fn new(node: impl Into<String>) -> Self {
        PbsMomCore {
            node: node.into(),
            next_session: 1,
            jobs: BTreeMap::new(),
            servers: BTreeSet::new(),
            obituary_bug: false,
            real_runs: 0,
        }
    }

    /// Node name.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Is the given job really running here?
    pub fn is_running(&self, job: JobId) -> bool {
        matches!(self.jobs.get(&job).map(|j| &j.phase), Some(Phase::Running { .. }))
    }

    /// Handle one inbound message.
    pub fn on_msg(&mut self, msg: MomInbound) -> Vec<MomAction> {
        match msg {
            MomInbound::RegisterServer { server } => {
                self.servers.insert(server);
                vec![]
            }
            MomInbound::Start { job, spec, nodes: _, server, arbiter } => {
                self.on_start(job, spec, server, arbiter)
            }
            MomInbound::Cancel { job, server } => self.on_cancel(job, server),
            MomInbound::Verdict { job, session, granted } => {
                self.on_verdict(job, session, granted)
            }
        }
    }

    fn on_start(
        &mut self,
        job: JobId,
        spec: JobSpec,
        server: ProcId,
        arbiter: Option<ProcId>,
    ) -> Vec<MomAction> {
        self.servers.insert(server);
        // A job that was cancelled may be rerun (failover restart): the
        // new start opens a fresh incarnation.
        if matches!(
            self.jobs.get(&job).map(|j| &j.phase),
            Some(Phase::Done { exit }) if *exit == exit::CANCELLED
        ) {
            self.jobs.remove(&job);
        }
        let next_session = &mut self.next_session;
        let entry = self.jobs.entry(job).or_insert_with(|| MomJob {
            spec,
            owner: server,
            interested: BTreeSet::new(),
            sessions: BTreeMap::new(),
            phase: Phase::Arbitrating,
            reclaimed: false,
        });
        if entry.interested.contains(&server) {
            // Repeated attempt from a head we already know — a restarted
            // head re-dispatching after recovery. Answer by phase so the
            // retry converges instead of dropping it on the floor.
            match entry.phase {
                Phase::Arbitrating => {
                    // Re-ask through the existing session (no second
                    // ballot); the retry may name a replacement arbiter.
                    let Some(sess) = entry.sessions.get_mut(&server) else {
                        return vec![];
                    };
                    if arbiter.is_some() {
                        sess.arbiter = arbiter;
                    }
                    let (id, arb) = (sess.id, sess.arbiter);
                    return match arb {
                        Some(a) => {
                            vec![MomAction::AskArbiter {
                                arbiter: a,
                                job,
                                session: id,
                                reclaim: false,
                            }]
                        }
                        None => self.grant(job, server),
                    };
                }
                Phase::Running { .. } => {
                    return vec![MomAction::Report {
                        to: server,
                        report: MomReport::Started { job },
                    }];
                }
                Phase::Done { exit } => {
                    return vec![
                        MomAction::Report { to: server, report: MomReport::Started { job } },
                        MomAction::Report {
                            to: server,
                            report: MomReport::Finished { job, exit },
                        },
                    ];
                }
            }
        }
        entry.interested.insert(server);
        match entry.phase {
            Phase::Arbitrating => {
                let id = *next_session;
                *next_session += 1;
                entry.sessions.insert(server, Session { id, arbiter, denied: false });
                match arbiter {
                    Some(a) => {
                        vec![MomAction::AskArbiter { arbiter: a, job, session: id, reclaim: false }]
                    }
                    // Local grant (plain single-head PBS): run immediately.
                    None => self.grant(job, server),
                }
            }
            Phase::Running { .. } => {
                // Late attempt while the job already runs: emulate the
                // start for this head.
                vec![MomAction::Report { to: server, report: MomReport::Started { job } }]
            }
            Phase::Done { exit } => vec![
                MomAction::Report { to: server, report: MomReport::Started { job } },
                MomAction::Report { to: server, report: MomReport::Finished { job, exit } },
            ],
        }
    }

    fn on_verdict(&mut self, job: JobId, session: u64, granted: bool) -> Vec<MomAction> {
        let next_session = &mut self.next_session;
        let Some(entry) = self.jobs.get_mut(&job) else {
            return vec![];
        };
        let Some((&server, _)) = entry.sessions.iter().find(|(_, s)| s.id == session) else {
            return vec![];
        };
        if granted {
            return self.grant(job, server);
        }
        if let Some(sess) = entry.sessions.get_mut(&server) {
            sess.denied = true;
        }
        // Reboot signature: in steady state exactly one of a job's sessions
        // wins the mutex, so "still arbitrating and every session denied"
        // can only mean the standing grant belongs to a previous life of
        // this mom — the launch died with it. Reclaim once with a fresh
        // session; the arbiters adopt it because it comes from the same mom.
        if matches!(entry.phase, Phase::Arbitrating)
            && !entry.reclaimed
            && entry.sessions.values().all(|s| s.denied)
        {
            entry.reclaimed = true;
            let id = *next_session;
            *next_session += 1;
            let arbiter = entry.sessions.get(&server).and_then(|s| s.arbiter);
            entry.sessions.insert(server, Session { id, arbiter, denied: false });
            if let Some(a) = arbiter {
                return vec![MomAction::AskArbiter { arbiter: a, job, session: id, reclaim: true }];
            }
        }
        // Denied: emulate the start for this head only.
        vec![MomAction::Report { to: server, report: MomReport::Started { job } }]
    }

    /// A session won the launch mutex (or local grant): really execute.
    fn grant(&mut self, job: JobId, server: ProcId) -> Vec<MomAction> {
        // A verdict for a job this mom no longer tracks (e.g. cancelled
        // while the acquire was in flight) is ignorable, not fatal (F003).
        let Some(entry) = self.jobs.get_mut(&job) else { return vec![] };
        let session = entry.sessions.get(&server).map(|s| s.id).unwrap_or(0);
        match entry.phase {
            Phase::Arbitrating => {
                entry.phase = Phase::Running { session };
                self.real_runs += 1;
                let run_for = entry.spec.runtime.min(entry.spec.walltime);
                let mut acts = vec![MomAction::StartTimer { job, after: run_for }];
                for &s in &entry.interested {
                    acts.push(MomAction::Report {
                        to: s,
                        report: MomReport::Started { job },
                    });
                }
                acts
            }
            // A second grant can only be a stale duplicate; the arbiter
            // grants a job's mutex once.
            Phase::Running { .. } | Phase::Done { .. } => vec![],
        }
    }

    /// Execution timer fired: the job ran to completion (or walltime).
    pub fn on_timer(&mut self, job: JobId) -> Vec<MomAction> {
        let Some(entry) = self.jobs.get(&job) else {
            return vec![];
        };
        if !matches!(entry.phase, Phase::Running { .. }) {
            return vec![];
        }
        let code = if entry.spec.runtime > entry.spec.walltime {
            exit::WALLTIME
        } else {
            exit::OK
        };
        self.finish(job, code)
    }

    fn on_cancel(&mut self, job: JobId, _server: ProcId) -> Vec<MomAction> {
        let Some(entry) = self.jobs.get_mut(&job) else {
            return vec![];
        };
        match entry.phase {
            Phase::Running { .. } => {
                let mut acts = vec![MomAction::CancelTimer { job }];
                acts.extend(self.finish(job, exit::CANCELLED));
                acts
            }
            Phase::Arbitrating => {
                // Cancelled before any grant arrived: mark done so a late
                // grant is ignored, and report to the interested heads.
                self.finish(job, exit::CANCELLED)
            }
            Phase::Done { .. } => vec![],
        }
    }

    fn finish(&mut self, job: JobId, code: i32) -> Vec<MomAction> {
        let Some(entry) = self.jobs.get_mut(&job) else {
            return vec![];
        };
        let was_running_session = match entry.phase {
            Phase::Running { session } => Some(session),
            _ => None,
        };
        entry.phase = Phase::Done { exit: code };
        let mut acts = Vec::new();
        // Release the launch mutex (jdone) through the arbiter of the
        // winning session.
        if let Some(sess) = was_running_session {
            if let Some((_, s)) = entry.sessions.iter().find(|(_, s)| s.id == sess) {
                if let Some(a) = s.arbiter {
                    acts.push(MomAction::ReleaseArbiter { arbiter: a, job });
                }
            }
        }
        let report = MomReport::Finished { job, exit: code };
        if self.obituary_bug {
            // Paper's TORQUE defect: only the owner head learns.
            acts.push(MomAction::Report { to: entry.owner, report });
        } else {
            let mut targets: BTreeSet<ProcId> = self.servers.clone();
            targets.extend(entry.interested.iter().copied());
            for to in targets {
                acts.push(MomAction::Report { to, report });
            }
        }
        acts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::trivial("t")
    }

    fn start(job: u64, server: u32, arbiter: Option<u32>) -> MomInbound {
        MomInbound::Start {
            job: JobId(job),
            spec: spec(),
            nodes: vec!["c00".into()],
            server: ProcId(server),
            arbiter: arbiter.map(ProcId),
        }
    }

    fn reports(acts: &[MomAction]) -> Vec<(ProcId, MomReport)> {
        acts.iter()
            .filter_map(|a| match a {
                MomAction::Report { to, report } => Some((*to, *report)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn local_grant_runs_immediately() {
        let mut mom = PbsMomCore::new("c00");
        let acts = mom.on_msg(start(1, 10, None));
        assert!(acts.iter().any(|a| matches!(a, MomAction::StartTimer { .. })));
        assert!(mom.is_running(JobId(1)));
        assert_eq!(mom.real_runs, 1);
        let done = mom.on_timer(JobId(1));
        let r = reports(&done);
        assert!(r.contains(&(ProcId(10), MomReport::Finished { job: JobId(1), exit: exit::OK })));
        assert!(!mom.is_running(JobId(1)));
    }

    #[test]
    fn arbitrated_start_waits_for_verdict() {
        let mut mom = PbsMomCore::new("c00");
        let acts = mom.on_msg(start(1, 10, Some(99)));
        assert_eq!(acts.len(), 1);
        let session = match &acts[0] {
            MomAction::AskArbiter { arbiter, job, session, .. } => {
                assert_eq!(*arbiter, ProcId(99));
                assert_eq!(*job, JobId(1));
                *session
            }
            other => panic!("{other:?}"),
        };
        assert!(!mom.is_running(JobId(1)));
        let acts = mom.on_msg(MomInbound::Verdict { job: JobId(1), session, granted: true });
        assert!(mom.is_running(JobId(1)));
        assert!(acts.iter().any(|a| matches!(a, MomAction::StartTimer { .. })));
    }

    #[test]
    fn exactly_one_real_run_among_competing_sessions() {
        // Three heads each attempt the start (symmetric active/active);
        // the arbiter grants one and denies two.
        let mut mom = PbsMomCore::new("c00");
        let mut sessions = Vec::new();
        for head in [10u32, 11, 12] {
            let acts = mom.on_msg(start(1, head, Some(99)));
            for a in acts {
                if let MomAction::AskArbiter { session, .. } = a {
                    sessions.push(session);
                }
            }
        }
        assert_eq!(sessions.len(), 3);
        // Grant the second session, deny the others (order scrambled).
        let _ = mom.on_msg(MomInbound::Verdict { job: JobId(1), session: sessions[1], granted: true });
        let d0 = mom.on_msg(MomInbound::Verdict { job: JobId(1), session: sessions[0], granted: false });
        let d2 = mom.on_msg(MomInbound::Verdict { job: JobId(1), session: sessions[2], granted: false });
        assert_eq!(mom.real_runs, 1, "exactly one real execution");
        // Denied sessions emulated the start towards their heads.
        assert_eq!(reports(&d0), vec![(ProcId(10), MomReport::Started { job: JobId(1) })]);
        assert_eq!(reports(&d2), vec![(ProcId(12), MomReport::Started { job: JobId(1) })]);
        // Completion reaches all three heads.
        let done = mom.on_timer(JobId(1));
        let finished: Vec<ProcId> = reports(&done)
            .into_iter()
            .filter(|(_, r)| matches!(r, MomReport::Finished { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(finished, vec![ProcId(10), ProcId(11), ProcId(12)]);
        // And the mutex is released.
        assert!(done
            .iter()
            .any(|a| matches!(a, MomAction::ReleaseArbiter { job: JobId(1), .. })));
    }

    #[test]
    fn late_attempt_after_run_started_is_emulated() {
        let mut mom = PbsMomCore::new("c00");
        let _ = mom.on_msg(start(1, 10, None));
        let acts = mom.on_msg(start(1, 11, Some(99)));
        assert_eq!(
            reports(&acts),
            vec![(ProcId(11), MomReport::Started { job: JobId(1) })]
        );
        assert_eq!(mom.real_runs, 1);
        // The late head still receives the obituary.
        let done = mom.on_timer(JobId(1));
        let heads: Vec<ProcId> = reports(&done).into_iter().map(|(to, _)| to).collect();
        assert!(heads.contains(&ProcId(11)));
    }

    #[test]
    fn attempt_after_completion_gets_both_reports() {
        let mut mom = PbsMomCore::new("c00");
        let _ = mom.on_msg(start(1, 10, None));
        let _ = mom.on_timer(JobId(1));
        let acts = mom.on_msg(start(1, 11, Some(99)));
        let r = reports(&acts);
        assert_eq!(r.len(), 2);
        assert!(matches!(r[0].1, MomReport::Started { .. }));
        assert!(matches!(r[1].1, MomReport::Finished { .. }));
    }

    #[test]
    fn duplicate_start_reasks_arbiter_through_same_session() {
        let mut mom = PbsMomCore::new("c00");
        let a1 = mom.on_msg(start(1, 10, Some(99)));
        let s1 = match &a1[..] {
            [MomAction::AskArbiter { session, .. }] => *session,
            other => panic!("{other:?}"),
        };
        // Head 10 restarts and re-dispatches, now naming a fresh arbiter.
        let a2 = mom.on_msg(start(1, 10, Some(98)));
        match &a2[..] {
            [MomAction::AskArbiter { arbiter, session, .. }] => {
                assert_eq!(*arbiter, ProcId(98), "retry follows the new arbiter");
                assert_eq!(*session, s1, "same session, no second ballot");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(mom.real_runs, 0);
    }

    #[test]
    fn duplicate_start_while_running_emulates() {
        let mut mom = PbsMomCore::new("c00");
        let _ = mom.on_msg(start(1, 10, None));
        let a2 = mom.on_msg(start(1, 10, None));
        assert_eq!(reports(&a2), vec![(ProcId(10), MomReport::Started { job: JobId(1) })]);
        assert_eq!(mom.real_runs, 1, "retry never re-executes");
    }

    #[test]
    fn duplicate_start_after_completion_replays_both_reports() {
        let mut mom = PbsMomCore::new("c00");
        let _ = mom.on_msg(start(1, 10, None));
        let _ = mom.on_timer(JobId(1));
        let a2 = mom.on_msg(start(1, 10, None));
        let r = reports(&a2);
        assert_eq!(r.len(), 2);
        assert!(matches!(r[0].1, MomReport::Started { .. }));
        assert!(matches!(r[1].1, MomReport::Finished { .. }));
        assert_eq!(mom.real_runs, 1);
    }

    #[test]
    fn walltime_exceeded_reports_kill() {
        let mut mom = PbsMomCore::new("c00");
        let mut s = spec();
        s.runtime = SimDuration::from_secs(100);
        s.walltime = SimDuration::from_secs(10);
        let acts = mom.on_msg(MomInbound::Start {
            job: JobId(1),
            spec: s,
            nodes: vec!["c00".into()],
            server: ProcId(10),
            arbiter: None,
        });
        match acts.iter().find(|a| matches!(a, MomAction::StartTimer { .. })) {
            Some(MomAction::StartTimer { after, .. }) => {
                assert_eq!(*after, SimDuration::from_secs(10), "killed at walltime");
            }
            _ => panic!("no timer"),
        }
        let done = mom.on_timer(JobId(1));
        assert!(reports(&done)
            .iter()
            .any(|(_, r)| matches!(r, MomReport::Finished { exit, .. } if *exit == exit::WALLTIME)));
    }

    #[test]
    fn cancel_running_job() {
        let mut mom = PbsMomCore::new("c00");
        let _ = mom.on_msg(start(1, 10, None));
        let acts = mom.on_msg(MomInbound::Cancel { job: JobId(1), server: ProcId(10) });
        assert!(acts.iter().any(|a| matches!(a, MomAction::CancelTimer { .. })));
        assert!(reports(&acts)
            .iter()
            .any(|(_, r)| matches!(r, MomReport::Finished { exit, .. } if *exit == exit::CANCELLED)));
        // A later timer fire (wrapper failed to cancel in time) is a no-op.
        assert!(mom.on_timer(JobId(1)).is_empty());
    }

    #[test]
    fn cancel_before_verdict_blocks_late_grant() {
        let mut mom = PbsMomCore::new("c00");
        let acts = mom.on_msg(start(1, 10, Some(99)));
        let session = match &acts[0] {
            MomAction::AskArbiter { session, .. } => *session,
            other => panic!("{other:?}"),
        };
        let _ = mom.on_msg(MomInbound::Cancel { job: JobId(1), server: ProcId(10) });
        let acts = mom.on_msg(MomInbound::Verdict { job: JobId(1), session, granted: true });
        assert!(acts.is_empty(), "late grant after cancel must not run the job");
        assert_eq!(mom.real_runs, 0);
    }

    #[test]
    fn obituary_bug_reports_only_to_owner() {
        let mut mom = PbsMomCore::new("c00");
        mom.obituary_bug = true;
        let _ = mom.on_msg(MomInbound::RegisterServer { server: ProcId(20) });
        let _ = mom.on_msg(start(1, 10, None));
        let _ = mom.on_msg(start(1, 11, Some(99)));
        let done = mom.on_timer(JobId(1));
        let finished: Vec<ProcId> = reports(&done)
            .into_iter()
            .filter(|(_, r)| matches!(r, MomReport::Finished { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(finished, vec![ProcId(10)], "bug: only the owner learns");
    }

    #[test]
    fn registered_servers_receive_obituaries_even_without_attempts() {
        let mut mom = PbsMomCore::new("c00");
        let _ = mom.on_msg(MomInbound::RegisterServer { server: ProcId(30) });
        let _ = mom.on_msg(start(1, 10, None));
        let done = mom.on_timer(JobId(1));
        let finished: Vec<ProcId> = reports(&done)
            .into_iter()
            .filter(|(_, r)| matches!(r, MomReport::Finished { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(finished, vec![ProcId(10), ProcId(30)]);
    }
}
