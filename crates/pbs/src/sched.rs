//! Scheduling policies (the Maui stand-in).
//!
//! The paper configures Maui with its default FIFO policy and exclusive
//! per-job cluster access "to produce deterministic allocation behavior" —
//! that is [`FifoExclusive`]. [`FifoShared`] and [`Backfill`] lift that
//! restriction (the paper's "may be lifted in the future if deterministic
//! allocation behavior can be assured" — both are deterministic here) and
//! serve as scheduling ablations.

use crate::job::{Job, JobId};
use crate::resources::NodePool;
use jrs_sim::SimTime;
use std::fmt;

/// A scheduling decision: run `job` on `nodes`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// The job to start.
    pub job: JobId,
    /// Node names to run it on (deterministically ordered).
    pub nodes: Vec<String>,
}

/// A scheduling policy. Must be deterministic: identical inputs must yield
/// identical decisions on every replica.
pub trait Policy: fmt::Debug {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Clone into a fresh box (policies are stateless markers; this lets
    /// a whole [`crate::PbsServerCore`] be cloned, e.g. by the model
    /// checker when branching states).
    fn clone_box(&self) -> Box<dyn Policy>;

    /// Pick the next job to start, or `None` if nothing can run now.
    /// `queued` is in submission order and contains only `Queued` jobs;
    /// `running` contains `Running` jobs with their start times.
    fn select(
        &self,
        now: SimTime,
        queued: &[&Job],
        pool: &NodePool,
        running: &[(&Job, SimTime)],
    ) -> Option<Allocation>;
}

impl Clone for Box<dyn Policy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The paper's configuration: strict FIFO, one job at a time, whole
/// cluster per job.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoExclusive;

impl Policy for FifoExclusive {
    fn name(&self) -> &'static str {
        "fifo-exclusive"
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }

    fn select(
        &self,
        _now: SimTime,
        queued: &[&Job],
        pool: &NodePool,
        running: &[(&Job, SimTime)],
    ) -> Option<Allocation> {
        if !running.is_empty() || !pool.all_idle() {
            return None;
        }
        let head = queued.first()?;
        let nodes = pool.online_nodes();
        if nodes.is_empty() || (head.spec.nodes as usize) > nodes.len() {
            return None;
        }
        Some(Allocation { job: head.id, nodes })
    }
}

/// FIFO with space sharing: the head of the queue runs as soon as enough
/// free nodes exist; jobs behind it wait (no overtaking).
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoShared;

impl Policy for FifoShared {
    fn name(&self) -> &'static str {
        "fifo-shared"
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }

    fn select(
        &self,
        _now: SimTime,
        queued: &[&Job],
        pool: &NodePool,
        _running: &[(&Job, SimTime)],
    ) -> Option<Allocation> {
        let head = queued.first()?;
        let free = pool.free_nodes();
        let want = head.spec.nodes as usize;
        if want == 0 || want > free.len() {
            return None;
        }
        Some(Allocation { job: head.id, nodes: free[..want].to_vec() })
    }
}

/// Conservative backfill: strict FIFO for the queue head; a later job may
/// overtake only if it fits in the currently free nodes *and* its
/// requested walltime ends before the head's earliest possible start time
/// (estimated from the running jobs' walltimes), so it can never delay the
/// head.
#[derive(Clone, Copy, Debug, Default)]
pub struct Backfill;

impl Policy for Backfill {
    fn name(&self) -> &'static str {
        "backfill"
    }

    fn clone_box(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }

    fn select(
        &self,
        now: SimTime,
        queued: &[&Job],
        pool: &NodePool,
        running: &[(&Job, SimTime)],
    ) -> Option<Allocation> {
        let head = queued.first()?;
        let free = pool.free_nodes();
        let want_head = head.spec.nodes as usize;
        if want_head <= free.len() && want_head > 0 {
            return Some(Allocation { job: head.id, nodes: free[..want_head].to_vec() });
        }
        // Head blocked: when could it start at the earliest? Nodes come
        // back as running jobs hit their walltimes (worst case).
        let mut releases: Vec<(SimTime, usize)> = running
            .iter()
            .map(|(j, started)| (*started + j.spec.walltime, j.allocated.len()))
            .collect();
        releases.sort_unstable();
        let mut avail = free.len();
        let mut head_start = SimTime::MAX;
        for (t, n) in releases {
            avail += n;
            if avail >= want_head {
                head_start = t;
                break;
            }
        }
        // Backfill candidates: first fitting job that finishes (by
        // walltime) before the head's reservation.
        for j in queued.iter().skip(1) {
            let want = j.spec.nodes as usize;
            if want == 0 || want > free.len() {
                continue;
            }
            if now + j.spec.walltime <= head_start {
                return Some(Allocation { job: j.id, nodes: free[..want].to_vec() });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use jrs_sim::SimDuration;

    fn pool(n: usize) -> NodePool {
        NodePool::new((0..n).map(|i| format!("c{i:02}")))
    }

    fn job(id: u64, nodes: u32, wall_s: u64) -> Job {
        let mut spec = JobSpec::trivial(format!("j{id}"));
        spec.nodes = nodes;
        spec.walltime = SimDuration::from_secs(wall_s);
        Job::queued(JobId(id), spec)
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn exclusive_gives_whole_cluster_to_head() {
        let p = pool(4);
        let j1 = job(1, 1, 100);
        let j2 = job(2, 1, 100);
        let alloc = FifoExclusive
            .select(T0, &[&j1, &j2], &p, &[])
            .expect("idle cluster must schedule");
        assert_eq!(alloc.job, JobId(1));
        assert_eq!(alloc.nodes.len(), 4, "exclusive = all nodes");
    }

    #[test]
    fn exclusive_refuses_while_any_job_runs() {
        let mut p = pool(2);
        p.allocate(&["c00".to_string()]);
        let j2 = job(2, 1, 100);
        let mut running = job(1, 1, 100);
        running.state = crate::job::JobState::Running;
        running.allocated = vec!["c00".into()];
        assert!(FifoExclusive.select(T0, &[&j2], &p, &[(&running, T0)]).is_none());
    }

    #[test]
    fn exclusive_refuses_oversized_job() {
        let p = pool(2);
        let big = job(1, 5, 100);
        assert!(FifoExclusive.select(T0, &[&big], &p, &[]).is_none());
    }

    #[test]
    fn shared_packs_head_into_free_nodes() {
        let mut p = pool(4);
        p.allocate(&["c00".to_string()]);
        let j = job(7, 2, 100);
        let alloc = FifoShared.select(T0, &[&j], &p, &[]).unwrap();
        assert_eq!(alloc.nodes, vec!["c01".to_string(), "c02".to_string()]);
    }

    #[test]
    fn shared_blocks_behind_big_head() {
        let mut p = pool(4);
        p.allocate(&["c00".to_string(), "c01".to_string()]);
        let head = job(1, 3, 100); // needs 3, only 2 free
        let small = job(2, 1, 1);
        assert!(
            FifoShared.select(T0, &[&head, &small], &p, &[]).is_none(),
            "FIFO must not let job 2 overtake"
        );
    }

    #[test]
    fn backfill_lets_short_job_overtake() {
        let mut p = pool(4);
        p.allocate(&["c00".to_string(), "c01".to_string()]);
        let mut running = job(9, 2, 1000);
        running.state = crate::job::JobState::Running;
        running.allocated = vec!["c00".into(), "c01".into()];
        let head = job(1, 3, 100); // blocked: 2 free < 3
        let short = job(2, 1, 10); // fits and ends before head could start
        let alloc = Backfill
            .select(T0, &[&head, &short], &p, &[(&running, T0)])
            .expect("short job should backfill");
        assert_eq!(alloc.job, JobId(2));
    }

    #[test]
    fn backfill_rejects_job_that_would_delay_head() {
        let mut p = pool(4);
        p.allocate(&["c00".to_string(), "c01".to_string()]);
        let mut running = job(9, 2, 50);
        running.state = crate::job::JobState::Running;
        running.allocated = vec!["c00".into(), "c01".into()];
        let head = job(1, 3, 100); // could start at t+50
        let long = job(2, 1, 500); // would block a node past t+50
        assert!(Backfill.select(T0, &[&head, &long], &p, &[(&running, T0)]).is_none());
    }

    #[test]
    fn backfill_prefers_head_when_it_fits() {
        let p = pool(4);
        let head = job(1, 2, 100);
        let other = job(2, 1, 1);
        let alloc = Backfill.select(T0, &[&head, &other], &p, &[]).unwrap();
        assert_eq!(alloc.job, JobId(1));
    }
}
