//! The PBS server (TORQUE stand-in): job registry, queue, command
//! handling, and dispatch to mom daemons.
//!
//! `PbsServerCore` is a **pure, deterministic state machine**: identical
//! command/report sequences produce identical state and identical actions.
//! That determinism is the property JOSHUA's symmetric active/active
//! replication depends on — every replica applies the totally ordered
//! command stream to its own server and must reach the same state.
//!
//! Note on time: the paper's configuration
//! ([`FifoExclusive`](crate::sched::FifoExclusive)) makes no scheduling
//! decision based on
//! the clock, so replicas that deliver commands at slightly different
//! (virtual) times still agree. The [`Backfill`](crate::sched::Backfill)
//! extension consults walltime estimates against `now` and is therefore
//! suitable for single-head deployments only (see DESIGN.md).

use crate::job::{exit, Job, JobId, JobSpec, JobState, JobStatus};
use crate::resources::NodePool;
use crate::sched::Policy;
use jrs_sim::{ProcId, SimTime};
use std::collections::BTreeMap;

/// Commands of the PBS user interface.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ServerCmd {
    /// Submit a job.
    Qsub(JobSpec),
    /// Delete a job (queued or running).
    Qdel(JobId),
    /// Query one job or all jobs.
    Qstat(Option<JobId>),
    /// Hold a queued job.
    Qhold(JobId),
    /// Release a held job.
    Qrls(JobId),
}

/// Replies to PBS commands.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CmdReply {
    /// Job accepted with this id.
    Submitted(JobId),
    /// Job deleted (or cancellation initiated).
    Deleted(JobId),
    /// Job held.
    Held(JobId),
    /// Job released.
    Released(JobId),
    /// Status listing.
    Status(Vec<JobStatus>),
    /// Command failed.
    Error(String),
}

/// Side effects the server wants performed (sent to mom daemons by the
/// embedding process).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ServerAction {
    /// Start `job` on `nodes`; `mom` is the mother-superior daemon (first
    /// allocated node), if registered.
    Start {
        /// Mother-superior mom process.
        mom: Option<ProcId>,
        /// The job.
        job: JobId,
        /// Its spec (the mom needs runtime/walltime).
        spec: JobSpec,
        /// Allocated node names.
        nodes: Vec<String>,
    },
    /// Cancel a running job.
    Cancel {
        /// Mother-superior mom process.
        mom: Option<ProcId>,
        /// The job.
        job: JobId,
    },
}

/// Reports from mom daemons back to the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MomReport {
    /// The job's launch was confirmed (really started or emulated).
    Started {
        /// The job.
        job: JobId,
    },
    /// The job finished with this exit status.
    Finished {
        /// The job.
        job: JobId,
        /// Exit status (see [`crate::job::exit`]).
        exit: i32,
    },
}

/// Deterministic snapshot of the full server state, used for replica
/// consistency checks and for state transfer to joining head nodes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ServerSnapshot {
    /// All jobs in submission order.
    pub jobs: Vec<Job>,
    /// Next job id counter.
    pub next_id: u64,
    /// Node pool (allocations included).
    pub pool: NodePool,
    /// Job start times (nanos) — informational; excluded from
    /// [`ServerSnapshot::consistent_with`] because replicas deliver at
    /// slightly different local times.
    pub running_since: Vec<(JobId, u64)>,
}

impl ServerSnapshot {
    /// Replica-consistency comparison: everything except local start
    /// times and replica-local mom wiring must match.
    pub fn consistent_with(&self, other: &ServerSnapshot) -> bool {
        self.jobs == other.jobs
            && self.next_id == other.next_id
            && self.pool.alloc_state() == other.pool.alloc_state()
    }
}

/// The PBS server state machine. See module docs.
#[derive(Clone, Debug)]
pub struct PbsServerCore {
    name: String,
    jobs: BTreeMap<JobId, Job>,
    /// Submission order (defines FIFO queue order).
    order: Vec<JobId>,
    next_id: u64,
    pool: NodePool,
    policy: Box<dyn Policy>,
    running_since: BTreeMap<JobId, SimTime>,
}

impl PbsServerCore {
    /// New server managing the named compute nodes under a policy.
    pub fn new(
        name: impl Into<String>,
        nodes: impl IntoIterator<Item = String>,
        policy: Box<dyn Policy>,
    ) -> Self {
        PbsServerCore {
            name: name.into(),
            jobs: BTreeMap::new(),
            order: Vec::new(),
            next_id: 1,
            pool: NodePool::new(nodes),
            policy,
            running_since: BTreeMap::new(),
        }
    }

    /// Server name (the head node it runs on).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register the mom daemon process for a node.
    pub fn register_mom(&mut self, node: &str, mom: ProcId) {
        self.pool.set_mom(node, mom);
    }

    /// Access the node pool.
    pub fn pool(&self) -> &NodePool {
        &self.pool
    }

    /// Look up a job.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs in submission order.
    pub fn jobs_in_order(&self) -> impl Iterator<Item = &Job> {
        self.order.iter().filter_map(|id| self.jobs.get(id))
    }

    /// Count of jobs in a given state.
    pub fn count_state(&self, state: JobState) -> usize {
        self.jobs.values().filter(|j| j.state == state).count()
    }

    /// Apply one PBS command; returns the user-visible reply and the mom
    /// dispatch actions it triggered.
    pub fn apply(&mut self, now: SimTime, cmd: &ServerCmd) -> (CmdReply, Vec<ServerAction>) {
        match cmd {
            ServerCmd::Qsub(spec) => {
                let id = JobId(self.next_id);
                self.next_id += 1;
                self.jobs.insert(id, Job::queued(id, spec.clone()));
                self.order.push(id);
                let actions = self.schedule(now);
                (CmdReply::Submitted(id), actions)
            }
            ServerCmd::Qdel(id) => match self.jobs.get_mut(id) {
                None => (CmdReply::Error(format!("unknown job {id}")), vec![]),
                Some(job) => match job.state {
                    JobState::Queued | JobState::Held => {
                        job.state = JobState::Complete;
                        job.exit_status = Some(exit::CANCELLED);
                        (CmdReply::Deleted(*id), self.schedule(now))
                    }
                    JobState::Running => {
                        job.state = JobState::Exiting;
                        let mom = job
                            .allocated
                            .first()
                            .and_then(|n| self.pool.mom_of(n));
                        (
                            CmdReply::Deleted(*id),
                            vec![ServerAction::Cancel { mom, job: *id }],
                        )
                    }
                    JobState::Exiting => (CmdReply::Deleted(*id), vec![]),
                    JobState::Complete => {
                        (CmdReply::Error(format!("job {id} already complete")), vec![])
                    }
                },
            },
            ServerCmd::Qstat(filter) => {
                let rows: Vec<JobStatus> = match filter {
                    Some(id) => self.jobs.get(id).map(JobStatus::from).into_iter().collect(),
                    None => self.jobs_in_order().map(JobStatus::from).collect(),
                };
                (CmdReply::Status(rows), vec![])
            }
            ServerCmd::Qhold(id) => match self.jobs.get_mut(id) {
                Some(job) if job.state == JobState::Queued => {
                    job.state = JobState::Held;
                    (CmdReply::Held(*id), vec![])
                }
                Some(job) => (
                    CmdReply::Error(format!(
                        "cannot hold job {id} in state {}",
                        job.state.letter()
                    )),
                    vec![],
                ),
                None => (CmdReply::Error(format!("unknown job {id}")), vec![]),
            },
            ServerCmd::Qrls(id) => match self.jobs.get_mut(id) {
                Some(job) if job.state == JobState::Held => {
                    job.state = JobState::Queued;
                    (CmdReply::Released(*id), self.schedule(now))
                }
                Some(job) => (
                    CmdReply::Error(format!(
                        "cannot release job {id} in state {}",
                        job.state.letter()
                    )),
                    vec![],
                ),
                None => (CmdReply::Error(format!("unknown job {id}")), vec![]),
            },
        }
    }

    /// Apply a mom report.
    pub fn on_report(&mut self, now: SimTime, report: &MomReport) -> Vec<ServerAction> {
        match report {
            MomReport::Started { .. } => vec![],
            MomReport::Finished { job, exit } => {
                let Some(j) = self.jobs.get_mut(job) else {
                    return vec![];
                };
                if j.state == JobState::Complete {
                    return vec![]; // duplicate obituary
                }
                if matches!(j.state, JobState::Queued | JobState::Held) {
                    // Stale obituary for a run that was cancelled and
                    // requeued (active/standby failover restart): the job
                    // waits for its fresh run.
                    return vec![];
                }
                j.state = JobState::Complete;
                j.exit_status = Some(*exit);
                let nodes = std::mem::take(&mut j.allocated);
                self.pool.release(&nodes);
                self.running_since.remove(job);
                self.schedule(now)
            }
        }
    }

    /// Failover helper (active/standby warm takeover): every running job
    /// is cancelled on its mom and put back in the queue — the paper's
    /// "currently running scientific applications have to be restarted
    /// after a head node failover". Returns the requeued job ids and the
    /// actions to dispatch (cancels first, then fresh starts).
    pub fn requeue_all_running(&mut self, now: SimTime) -> (Vec<JobId>, Vec<ServerAction>) {
        let mut requeued = Vec::new();
        let mut actions = Vec::new();
        let running_ids: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Running | JobState::Exiting))
            .map(|j| j.id)
            .collect();
        for id in running_ids {
            // The id was collected from `jobs` above, but degrade rather
            // than panic on the delivery path if that ever changes (F003).
            let Some(j) = self.jobs.get_mut(&id) else { continue };
            let nodes = std::mem::take(&mut j.allocated);
            j.state = JobState::Queued;
            let mom = nodes.first().and_then(|n| self.pool.mom_of(n));
            self.pool.release(&nodes);
            self.running_since.remove(&id);
            actions.push(ServerAction::Cancel { mom, job: id });
            requeued.push(id);
        }
        actions.extend(self.schedule(now));
        (requeued, actions)
    }

    /// Mark a compute node failed/recovered (mom daemon died or returned).
    pub fn set_node_online(&mut self, now: SimTime, node: &str, online: bool) -> Vec<ServerAction> {
        if online {
            self.pool.set_online(node);
            self.schedule(now)
        } else {
            self.pool.set_offline(node);
            vec![]
        }
    }

    /// Run a scheduling pass outside the normal command/report triggers.
    /// Recovery uses this after restoring durable state: queued jobs must
    /// not wait for the next client command to be considered.
    pub fn kick_schedule(&mut self, now: SimTime) -> Vec<ServerAction> {
        self.schedule(now)
    }

    fn schedule(&mut self, now: SimTime) -> Vec<ServerAction> {
        let mut actions = Vec::new();
        loop {
            let queued_ids: Vec<JobId> = self
                .order
                .iter()
                .copied()
                .filter(|id| self.jobs[id].state == JobState::Queued)
                .collect();
            if queued_ids.is_empty() {
                break;
            }
            let queued: Vec<&Job> = queued_ids.iter().map(|id| &self.jobs[id]).collect();
            let running: Vec<(&Job, SimTime)> = self
                .running_since
                .iter()
                .filter_map(|(id, t)| self.jobs.get(id).map(|j| (j, *t)))
                .collect();
            let Some(alloc) = self.policy.select(now, &queued, &self.pool, &running) else {
                break;
            };
            // Check the job before committing the allocation: a policy
            // that names an unknown job must stall the pass, not panic a
            // replica mid-delivery (F003).
            let Some(job) = self.jobs.get_mut(&alloc.job) else { break };
            self.pool.allocate(&alloc.nodes);
            job.state = JobState::Running;
            job.allocated = alloc.nodes.clone();
            self.running_since.insert(alloc.job, now);
            let mom = alloc.nodes.first().and_then(|n| self.pool.mom_of(n));
            actions.push(ServerAction::Start {
                mom,
                job: alloc.job,
                spec: job.spec.clone(),
                nodes: alloc.nodes,
            });
        }
        actions
    }

    /// Deterministic fingerprint of the *replicated* server state: jobs in
    /// submission order, the id counter and node allocation states. Mom
    /// wiring and local start times are excluded for the same reason they
    /// are excluded from [`ServerSnapshot::consistent_with`] — they are
    /// replica-local. Replicas that applied the same totally ordered
    /// command stream must produce equal fingerprints.
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = jrs_sim::Fnv64::new();
        for j in self.jobs_in_order() {
            j.hash(&mut h);
        }
        self.next_id.hash(&mut h);
        self.pool.alloc_state().hash(&mut h);
        h.finish()
    }

    /// Snapshot the full state (replica checks, state transfer).
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            jobs: self.jobs_in_order().cloned().collect(),
            next_id: self.next_id,
            pool: self.pool.clone(),
            running_since: self
                .running_since
                .iter()
                .map(|(id, t)| (*id, t.as_nanos()))
                .collect(),
        }
    }

    /// Restore state from a snapshot (joining replica).
    pub fn restore(&mut self, snap: &ServerSnapshot) {
        self.jobs = snap.jobs.iter().map(|j| (j.id, j.clone())).collect();
        self.order = snap.jobs.iter().map(|j| j.id).collect();
        self.next_id = snap.next_id;
        // Keep our own mom registrations but adopt allocation states.
        let moms: Vec<(String, ProcId)> = self
            .pool
            .iter()
            .filter_map(|n| n.mom.map(|m| (n.name.clone(), m)))
            .collect();
        self.pool = snap.pool.clone();
        for (node, mom) in moms {
            self.pool.set_mom(&node, mom);
        }
        self.running_since = snap
            .running_since
            .iter()
            .map(|(id, ns)| (*id, SimTime::from_nanos(*ns)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{FifoExclusive, FifoShared};
    use jrs_sim::SimDuration;

    const T0: SimTime = SimTime::ZERO;

    fn server(nodes: usize) -> PbsServerCore {
        PbsServerCore::new(
            "head",
            (0..nodes).map(|i| format!("c{i:02}")),
            Box::new(FifoExclusive),
        )
    }

    fn submit(s: &mut PbsServerCore, name: &str) -> (JobId, Vec<ServerAction>) {
        let (reply, actions) = s.apply(T0, &ServerCmd::Qsub(JobSpec::trivial(name)));
        match reply {
            CmdReply::Submitted(id) => (id, actions),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn qsub_assigns_sequential_ids_and_starts_first_job() {
        let mut s = server(2);
        let (id1, a1) = submit(&mut s, "one");
        assert_eq!(id1, JobId(1));
        assert_eq!(a1.len(), 1, "idle cluster starts job immediately");
        match &a1[0] {
            ServerAction::Start { job, nodes, .. } => {
                assert_eq!(*job, id1);
                assert_eq!(nodes.len(), 2, "exclusive allocation");
            }
            other => panic!("{other:?}"),
        }
        let (id2, a2) = submit(&mut s, "two");
        assert_eq!(id2, JobId(2));
        assert!(a2.is_empty(), "second job queues behind exclusive job");
        assert_eq!(s.job(id1).unwrap().state, JobState::Running);
        assert_eq!(s.job(id2).unwrap().state, JobState::Queued);
    }

    #[test]
    fn finished_report_frees_cluster_and_runs_next() {
        let mut s = server(2);
        let (id1, _) = submit(&mut s, "one");
        let (id2, _) = submit(&mut s, "two");
        let actions = s.on_report(T0, &MomReport::Finished { job: id1, exit: exit::OK });
        assert_eq!(s.job(id1).unwrap().state, JobState::Complete);
        assert_eq!(s.job(id1).unwrap().exit_status, Some(exit::OK));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            ServerAction::Start { job, .. } => assert_eq!(*job, id2),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.job(id2).unwrap().state, JobState::Running);
    }

    #[test]
    fn duplicate_finished_reports_are_idempotent() {
        let mut s = server(1);
        let (id, _) = submit(&mut s, "j");
        let _ = s.on_report(T0, &MomReport::Finished { job: id, exit: 0 });
        let again = s.on_report(T0, &MomReport::Finished { job: id, exit: 0 });
        assert!(again.is_empty());
        assert_eq!(s.count_state(JobState::Complete), 1);
    }

    #[test]
    fn qdel_queued_job_completes_it_cancelled() {
        let mut s = server(1);
        let (id1, _) = submit(&mut s, "running");
        let (id2, _) = submit(&mut s, "queued");
        let (reply, actions) = s.apply(T0, &ServerCmd::Qdel(id2));
        assert_eq!(reply, CmdReply::Deleted(id2));
        assert!(actions.is_empty());
        assert_eq!(s.job(id2).unwrap().state, JobState::Complete);
        assert_eq!(s.job(id2).unwrap().exit_status, Some(exit::CANCELLED));
        let _ = id1;
    }

    #[test]
    fn qdel_running_job_sends_cancel_then_completes_on_report() {
        let mut s = server(1);
        s.register_mom("c00", ProcId(42));
        let (id, _) = submit(&mut s, "victim");
        let (reply, actions) = s.apply(T0, &ServerCmd::Qdel(id));
        assert_eq!(reply, CmdReply::Deleted(id));
        assert_eq!(
            actions,
            vec![ServerAction::Cancel { mom: Some(ProcId(42)), job: id }]
        );
        assert_eq!(s.job(id).unwrap().state, JobState::Exiting);
        let _ = s.on_report(T0, &MomReport::Finished { job: id, exit: exit::CANCELLED });
        assert_eq!(s.job(id).unwrap().state, JobState::Complete);
    }

    #[test]
    fn qdel_unknown_job_errors() {
        let mut s = server(1);
        let (reply, _) = s.apply(T0, &ServerCmd::Qdel(JobId(99)));
        assert!(matches!(reply, CmdReply::Error(_)));
    }

    #[test]
    fn qstat_lists_jobs_in_submission_order() {
        let mut s = server(1);
        let (id1, _) = submit(&mut s, "a");
        let (id2, _) = submit(&mut s, "b");
        let (reply, _) = s.apply(T0, &ServerCmd::Qstat(None));
        let CmdReply::Status(rows) = reply else { panic!() };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, id1);
        assert_eq!(rows[0].state, 'R');
        assert_eq!(rows[1].id, id2);
        assert_eq!(rows[1].state, 'Q');
        // Single-job filter.
        let (reply, _) = s.apply(T0, &ServerCmd::Qstat(Some(id2)));
        let CmdReply::Status(rows) = reply else { panic!() };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "b");
    }

    #[test]
    fn hold_and_release_cycle() {
        let mut s = server(1);
        let (_run, _) = submit(&mut s, "running");
        let (id, _) = submit(&mut s, "heldjob");
        let (reply, _) = s.apply(T0, &ServerCmd::Qhold(id));
        assert_eq!(reply, CmdReply::Held(id));
        assert_eq!(s.job(id).unwrap().state, JobState::Held);
        // A held job is skipped by the scheduler even when the cluster
        // frees up.
        let actions = s.on_report(T0, &MomReport::Finished { job: JobId(1), exit: 0 });
        assert!(actions.is_empty(), "held job must not start");
        let (reply, actions) = s.apply(T0, &ServerCmd::Qrls(id));
        assert_eq!(reply, CmdReply::Released(id));
        assert_eq!(actions.len(), 1, "released job starts on the idle cluster");
    }

    #[test]
    fn hold_running_job_errors() {
        let mut s = server(1);
        let (id, _) = submit(&mut s, "r");
        let (reply, _) = s.apply(T0, &ServerCmd::Qhold(id));
        assert!(matches!(reply, CmdReply::Error(_)));
    }

    #[test]
    fn held_job_keeps_queue_position() {
        let mut s = server(1);
        let (_r, _) = submit(&mut s, "running");
        let (h, _) = submit(&mut s, "h");
        let (later, _) = submit(&mut s, "later");
        let _ = s.apply(T0, &ServerCmd::Qhold(h));
        let _ = s.apply(T0, &ServerCmd::Qrls(h));
        // Finish the running job: h (earlier submission) must start, not
        // `later`.
        let actions = s.on_report(T0, &MomReport::Finished { job: JobId(1), exit: 0 });
        match &actions[0] {
            ServerAction::Start { job, .. } => assert_eq!(*job, h),
            other => panic!("{other:?}"),
        }
        let _ = later;
    }

    #[test]
    fn deterministic_replicas_stay_consistent() {
        // Two servers fed the same command/report stream must agree.
        let mut a = server(2);
        let mut b = server(2);
        let cmds = vec![
            ServerCmd::Qsub(JobSpec::trivial("j1")),
            ServerCmd::Qsub(JobSpec::trivial("j2")),
            ServerCmd::Qhold(JobId(2)),
            ServerCmd::Qsub(JobSpec::trivial("j3")),
            ServerCmd::Qrls(JobId(2)),
            ServerCmd::Qdel(JobId(3)),
        ];
        for cmd in &cmds {
            let (ra, aa) = a.apply(T0, cmd);
            // Replica b applies at a different local time: must not matter.
            let (rb, ab) = b.apply(T0 + SimDuration::from_millis(5), cmd);
            assert_eq!(ra, rb);
            assert_eq!(aa.len(), ab.len());
        }
        let rep = MomReport::Finished { job: JobId(1), exit: 0 };
        let _ = a.on_report(T0, &rep);
        let _ = b.on_report(T0 + SimDuration::from_millis(7), &rep);
        assert!(a.snapshot().consistent_with(&b.snapshot()));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut s = server(2);
        let _ = submit(&mut s, "a");
        let _ = submit(&mut s, "b");
        let snap = s.snapshot();
        let mut fresh = PbsServerCore::new(
            "joiner",
            (0..2).map(|i| format!("c{i:02}")),
            Box::new(FifoExclusive),
        );
        fresh.register_mom("c00", ProcId(7));
        fresh.restore(&snap);
        assert!(fresh.snapshot().consistent_with(&snap));
        // Mom registration survives restore.
        assert_eq!(fresh.pool().mom_of("c00"), Some(ProcId(7)));
        // The restored replica continues identically.
        let (id, _) = {
            let (reply, actions) = fresh.apply(T0, &ServerCmd::Qsub(JobSpec::trivial("c")));
            match reply {
                CmdReply::Submitted(id) => (id, actions),
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(id, JobId(3));
    }

    #[test]
    fn shared_policy_runs_jobs_concurrently() {
        let mut s = PbsServerCore::new(
            "head",
            (0..4).map(|i| format!("c{i:02}")),
            Box::new(FifoShared),
        );
        let mk = |name: &str| {
            let mut spec = JobSpec::trivial(name);
            spec.nodes = 2;
            spec
        };
        let (_, a1) = s.apply(T0, &ServerCmd::Qsub(mk("a")));
        let (_, a2) = s.apply(T0, &ServerCmd::Qsub(mk("b")));
        assert_eq!(a1.len(), 1);
        assert_eq!(a2.len(), 1, "two 2-node jobs fit a 4-node cluster");
        assert_eq!(s.count_state(JobState::Running), 2);
        let (_, a3) = s.apply(T0, &ServerCmd::Qsub(mk("c")));
        assert!(a3.is_empty(), "cluster full");
    }

    #[test]
    fn node_offline_blocks_scheduling_until_recovery() {
        let mut s = server(1);
        let _ = s.set_node_online(T0, "c00", false);
        let (_, actions) = s.apply(T0, &ServerCmd::Qsub(JobSpec::trivial("j")));
        assert!(actions.is_empty(), "no online nodes -> job must queue");
        let actions = s.set_node_online(T0, "c00", true);
        assert_eq!(actions.len(), 1, "job starts when the node returns");
    }
}
