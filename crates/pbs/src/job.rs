//! Jobs: identifiers, specifications and lifecycle states.

use jrs_sim::SimDuration;
use std::fmt;

/// Server-assigned job identifier.
///
/// PBS job ids look like `123.headnode`; under symmetric active/active
/// replication every replica must assign the *same* id to the same
/// submission, so ids are plain counters assigned in total delivery order
/// (the JOSHUA layer guarantees all replicas see submissions in the same
/// order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What the user submits (`qsub`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobSpec {
    /// Human-readable job name.
    pub name: String,
    /// Submitting user.
    pub user: String,
    /// Requested node count.
    pub nodes: u32,
    /// Requested maximum runtime; the mom kills the job when exceeded.
    pub walltime: SimDuration,
    /// Actual simulated execution time of the job "script". Stands in for
    /// the payload the paper's test jobs executed.
    pub runtime: SimDuration,
}

impl JobSpec {
    /// A trivial single-node job, as used by the paper's latency and
    /// throughput measurements (`echo`-style scripts).
    pub fn trivial(name: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            user: "user".into(),
            nodes: 1,
            walltime: SimDuration::from_secs(3600),
            runtime: SimDuration::from_secs(1),
        }
    }

    /// A job with an explicit runtime.
    pub fn with_runtime(name: impl Into<String>, runtime: SimDuration) -> Self {
        JobSpec { runtime, ..JobSpec::trivial(name) }
    }
}

/// PBS job lifecycle states (the classic Q/R/E/C/H letters).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobState {
    /// `Q` — waiting in the queue.
    Queued,
    /// `R` — dispatched to compute nodes and running.
    Running,
    /// `E` — exiting (cancellation or completion in progress).
    Exiting,
    /// `C` — finished (see `exit_status`).
    Complete,
    /// `H` — held by the user (`qhold`), excluded from scheduling.
    Held,
}

impl JobState {
    /// The classic single-letter PBS state code.
    pub fn letter(self) -> char {
        match self {
            JobState::Queued => 'Q',
            JobState::Running => 'R',
            JobState::Exiting => 'E',
            JobState::Complete => 'C',
            JobState::Held => 'H',
        }
    }
}

/// Exit status conventions for completed jobs.
pub mod exit {
    /// Normal completion.
    pub const OK: i32 = 0;
    /// Killed because it exceeded its walltime.
    pub const WALLTIME: i32 = -11;
    /// Deleted by `qdel` while running.
    pub const CANCELLED: i32 = -2;
}

/// A job as tracked by the server.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Submitted specification.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Exit status once `Complete`.
    pub exit_status: Option<i32>,
    /// Node names allocated while running.
    pub allocated: Vec<String>,
}

impl Job {
    /// A freshly queued job.
    pub fn queued(id: JobId, spec: JobSpec) -> Self {
        Job { id, spec, state: JobState::Queued, exit_status: None, allocated: Vec::new() }
    }

    /// Is the job in a terminal state?
    pub fn is_terminal(&self) -> bool {
        self.state == JobState::Complete
    }
}

/// One row of `qstat` output.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JobStatus {
    /// Identifier.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// Owner.
    pub user: String,
    /// State letter (Q/R/E/C/H).
    pub state: char,
    /// Exit status for completed jobs.
    pub exit_status: Option<i32>,
}

impl JobStatus {
    /// Render rows like `qstat` does:
    ///
    /// ```text
    /// Job ID   Name       User   S  Exit
    /// ------   ----       ----   -  ----
    /// 1        job-0      user   C  0
    /// ```
    pub fn format_table(rows: &[JobStatus]) -> String {
        let mut out = String::from("Job ID   Name             User       S  Exit
");
        out.push_str("------   ----             ----       -  ----
");
        for r in rows {
            let exit = r
                .exit_status
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<8} {:<16} {:<10} {}  {}
",
                r.id, r.name, r.user, r.state, exit
            ));
        }
        out
    }
}

impl From<&Job> for JobStatus {
    fn from(j: &Job) -> Self {
        JobStatus {
            id: j.id,
            name: j.spec.name.clone(),
            user: j.spec.user.clone(),
            state: j.state.letter(),
            exit_status: j.exit_status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_letters() {
        assert_eq!(JobState::Queued.letter(), 'Q');
        assert_eq!(JobState::Running.letter(), 'R');
        assert_eq!(JobState::Exiting.letter(), 'E');
        assert_eq!(JobState::Complete.letter(), 'C');
        assert_eq!(JobState::Held.letter(), 'H');
    }

    #[test]
    fn trivial_spec_defaults() {
        let s = JobSpec::trivial("t");
        assert_eq!(s.nodes, 1);
        assert!(s.runtime < s.walltime);
    }

    #[test]
    fn qstat_table_rendering() {
        let mut j = Job::queued(JobId(1), JobSpec::trivial("hello"));
        let row1: JobStatus = (&j).into();
        j.state = JobState::Complete;
        j.exit_status = Some(0);
        let row2: JobStatus = (&j).into();
        let table = JobStatus::format_table(&[row1, row2]);
        assert!(table.starts_with("Job ID"));
        assert!(table.contains("hello"));
        assert!(table.lines().count() == 4);
        let last = table.lines().last().unwrap();
        assert!(last.contains("C  0"), "{last}");
    }

    #[test]
    fn job_lifecycle_helpers() {
        let mut j = Job::queued(JobId(1), JobSpec::trivial("x"));
        assert!(!j.is_terminal());
        j.state = JobState::Complete;
        assert!(j.is_terminal());
        let st: JobStatus = (&j).into();
        assert_eq!(st.state, 'C');
        assert_eq!(st.id, JobId(1));
    }
}
