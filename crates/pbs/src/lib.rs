//! # jrs-pbs — PBS-compatible job and resource management substrate
//!
//! A from-scratch stand-in for the TORQUE PBS server + Maui scheduler +
//! PBS mom stack the JOSHUA paper replicates. The pieces:
//!
//! * [`server::PbsServerCore`] — the PBS server as a **pure, deterministic
//!   state machine**: the property symmetric active/active replication
//!   requires (identical command streams → identical state on every
//!   replica), verified by tests and snapshots.
//! * [`sched`] — scheduling policies: the paper's Maui configuration
//!   (FIFO, exclusive whole-cluster allocation) plus space-shared FIFO and
//!   conservative backfill extensions.
//! * [`mom::PbsMomCore`] — the compute-node execution daemon with
//!   **launch sessions**: each head's start attempt runs a prologue that
//!   asks an arbiter (JOSHUA's jmutex) for permission, so a job executes
//!   exactly once no matter how many active heads dispatch it; completion
//!   is reported to every head (TORQUE's multi-server feature).
//! * [`proc`] — `jrs-sim` process wrappers: the plain single-head server
//!   (baseline TORQUE), the mom, and a measuring closed-loop client that
//!   speaks the same envelope to every HA variant.
//!
//! The JOSHUA layer (`joshua-core`) drives these cores through the group
//! communication system without modifying them — exactly the paper's
//! external replication via the PBS service interface.

#![warn(missing_docs)]

pub mod codec;
pub mod job;
pub mod mom;
pub mod proc;
pub mod resources;
pub mod sched;
pub mod server;

pub use job::{Job, JobId, JobSpec, JobState, JobStatus};
pub use mom::{MomAction, MomInbound, PbsMomCore};
pub use proc::{
    ArbiterRelease, ArbiterRequest, ClientDone, ClientReply, ClientRequest, PbsClientProcess,
    PbsCostModel, PbsHeadProcess, PbsMomProcess, SubmitRecord,
};
pub use resources::{ComputeNode, NodePool, NodeState};
pub use sched::{Allocation, Backfill, FifoExclusive, FifoShared, Policy};
pub use server::{CmdReply, MomReport, PbsServerCore, ServerAction, ServerCmd, ServerSnapshot};
