//! Regression tests for the client's outstanding-request handling.
//!
//! jrs-flow's first whole-workspace sweep (F003) flagged the reply path
//! in `PbsClientProcess`: `outstanding.take().unwrap()` after a separate
//! `is_some` check, and a second `as_mut().unwrap()` on the retry timer
//! path. Those were rewritten as a single fallible take-then-reinsert;
//! these tests pin the required behaviour — a duplicate, stale, or late
//! reply is a no-op, never a panic, and never double-counts a command.

use jrs_pbs::{
    ClientDone, ClientReply, ClientRequest, CmdReply, JobId, JobSpec, PbsClientProcess,
    ServerCmd, SubmitRecord,
};
use jrs_sim::{Ctx, Msg, NetworkConfig, ProcId, Process, SimDuration, SimTime, World};

/// A hostile head: answers every request with a stale reply (wrong
/// req_id), then the real reply, then an exact duplicate of the real
/// reply. A correct client absorbs all three and advances exactly once.
struct EchoStorm {
    replies_sent: u64,
}

impl Process for EchoStorm {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Msg) {
        let Ok(req) = msg.downcast::<ClientRequest>() else { return };
        let reply = ClientReply {
            req_id: req.req_id,
            reply: CmdReply::Submitted(JobId(req.req_id)),
        };
        // 1. Stale: a reply to a request id this client never retried.
        ctx.send(from, ClientReply { req_id: req.req_id + 1000, reply: reply.reply.clone() });
        // 2. The real reply.
        ctx.send(from, reply.clone());
        // 3. An exact duplicate, landing after the client moved on.
        ctx.send(from, reply);
        self.replies_sent += 3;
    }
}

/// A head that never answers: forces the client's timeout/retry path
/// (the second flagged unwrap) while a late reply from the *first*
/// attempt races the retry.
struct AnswerLate;

impl Process for AnswerLate {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: Msg) {
        let Ok(req) = msg.downcast::<ClientRequest>() else { return };
        // Answer well after the client's failover timeout, so the reply
        // arrives while a retried copy of the same req_id is in flight.
        let reply = ClientReply {
            req_id: req.req_id,
            reply: CmdReply::Submitted(JobId(req.req_id)),
        };
        ctx.send_after(from, reply, SimDuration::from_secs(3));
    }
}

fn script(n: u64) -> Vec<ServerCmd> {
    (0..n)
        .map(|i| ServerCmd::Qsub(JobSpec::with_runtime(format!("j{i}"), SimDuration::from_secs(1))))
        .collect()
}

#[test]
fn duplicate_and_stale_replies_are_noops() {
    let mut world = World::with_network(42, NetworkConfig::default());
    let hn = world.add_node("head");
    let head = world.add_process(hn, EchoStorm { replies_sent: 0 });
    let ln = world.add_node("login");
    let client = world.add_process(ln, PbsClientProcess::new(vec![head], script(4)));
    world.run_until(SimTime::ZERO + SimDuration::from_secs(60));

    // Every command completed exactly once, in order, despite each reply
    // arriving three ways (stale id, real, duplicate).
    let records = world.take_emitted::<SubmitRecord>();
    assert_eq!(records.len(), 4, "each command must be recorded exactly once");
    for (i, (_, from, rec)) in records.iter().enumerate() {
        assert_eq!(*from, client);
        assert_eq!(rec.index, i);
        assert_eq!(rec.attempts, 1, "no retries were needed");
    }
    assert_eq!(world.take_emitted::<ClientDone>().len(), 1);
    let storm = world.proc_ref::<EchoStorm>(head).unwrap();
    assert_eq!(storm.replies_sent, 12);
}

#[test]
fn late_reply_racing_a_retry_does_not_panic_or_double_count() {
    let mut world = World::with_network(7, NetworkConfig::default());
    let hn = world.add_node("head");
    let head = world.add_process(hn, AnswerLate);
    let ln = world.add_node("login");
    // 2 s failover timeout < 3 s reply delay: every command times out at
    // least once, and the attempt-1 reply then lands next to attempt-2's.
    let client = world.add_process(
        ln,
        PbsClientProcess::new(vec![head], script(3)).with_timeout(SimDuration::from_secs(2)),
    );
    world.run_until(SimTime::ZERO + SimDuration::from_secs(120));

    let records = world.take_emitted::<SubmitRecord>();
    assert_eq!(records.len(), 3, "each command must complete exactly once");
    for (_, from, rec) in &records {
        assert_eq!(*from, client);
        assert!(rec.attempts >= 2, "the silent head must have forced a retry");
    }
    assert_eq!(world.take_emitted::<ClientDone>().len(), 1);
}
