//! End-to-end tests of the unreplicated baseline: a measuring client, one
//! PBS head (TORQUE stand-in) and mom daemons on compute nodes, over the
//! simulated Fast-Ethernet network. This is the paper's Figure 1
//! architecture and the "TORQUE" row of Figures 10/11.

use jrs_pbs::{
    ClientDone, CmdReply, FifoExclusive, JobId, JobSpec, JobState, PbsClientProcess,
    PbsCostModel, PbsHeadProcess, PbsMomCore, PbsMomProcess, PbsServerCore, ServerCmd,
    SubmitRecord,
};
use jrs_sim::{NetworkConfig, ProcId, SimDuration, SimTime, World};

struct Testbed {
    world: World,
    head: ProcId,
    moms: Vec<ProcId>,
    client: ProcId,
}

fn testbed(compute_nodes: usize, script: Vec<ServerCmd>) -> Testbed {
    let mut world = World::with_network(42, NetworkConfig::default());
    let head_node = world.add_node("head");
    let mut core = PbsServerCore::new(
        "head",
        (0..compute_nodes).map(|i| format!("c{i:02}")),
        Box::new(FifoExclusive),
    );
    // Moms get the ProcIds right after the head's (head is proc 0).
    for i in 0..compute_nodes {
        core.register_mom(&format!("c{i:02}"), ProcId(1 + i as u32));
    }
    let head = world.add_process(head_node, PbsHeadProcess::new(core, PbsCostModel::default()));
    let mut moms = Vec::new();
    for i in 0..compute_nodes {
        let n = world.add_node(format!("c{i:02}"));
        let mom = world.add_process(n, PbsMomProcess::new(PbsMomCore::new(format!("c{i:02}"))));
        assert_eq!(mom, ProcId(1 + i as u32));
        moms.push(mom);
    }
    let login = world.add_node("login");
    let client = world.add_process(login, PbsClientProcess::new(vec![head], script));
    Testbed { world, head, moms, client }
}

fn run_to_idle(tb: &mut Testbed) {
    tb.world.run_until(SimTime::ZERO + SimDuration::from_secs(600));
}

#[test]
fn submit_run_complete_cycle() {
    let script = vec![
        ServerCmd::Qsub(JobSpec::with_runtime("j1", SimDuration::from_secs(2))),
        ServerCmd::Qsub(JobSpec::with_runtime("j2", SimDuration::from_secs(2))),
    ];
    let mut tb = testbed(2, script);
    run_to_idle(&mut tb);
    let head = tb.world.proc_ref::<PbsHeadProcess>(tb.head).unwrap().core();
    assert_eq!(head.count_state(JobState::Complete), 2);
    assert_eq!(head.job(JobId(1)).unwrap().exit_status, Some(0));
    assert_eq!(head.job(JobId(2)).unwrap().exit_status, Some(0));
    // Exactly one real execution per job, on the first node's mom.
    let mom0 = tb.world.proc_ref::<PbsMomProcess>(tb.moms[0]).unwrap().core();
    assert_eq!(mom0.real_runs, 2);
}

#[test]
fn submission_latency_in_paper_ballpark() {
    // Figure 10 baseline: ~98 ms per submission on the paper's testbed.
    // The cost model is calibrated to land near that; assert the ballpark
    // so calibration regressions are caught.
    let script: Vec<ServerCmd> =
        (0..20).map(|i| ServerCmd::Qsub(JobSpec::trivial(format!("j{i}")))).collect();
    let mut tb = testbed(2, script);
    run_to_idle(&mut tb);
    let records = tb.world.take_emitted::<SubmitRecord>();
    assert_eq!(records.len(), 20);
    let mean_ms: f64 = records
        .iter()
        .map(|(_, _, r)| r.latency.as_millis_f64())
        .sum::<f64>()
        / records.len() as f64;
    assert!(
        (85.0..115.0).contains(&mean_ms),
        "baseline submission latency {mean_ms:.1}ms is outside the calibrated \
         window around the paper's 98ms"
    );
}

#[test]
fn throughput_batch_matches_serialized_latency() {
    // Figure 11 baseline: 10 jobs ≈ 0.93 s (≈ 10 × latency, closed loop).
    let script: Vec<ServerCmd> =
        (0..10).map(|i| ServerCmd::Qsub(JobSpec::trivial(format!("j{i}")))).collect();
    let mut tb = testbed(2, script);
    run_to_idle(&mut tb);
    let done = tb.world.take_emitted::<ClientDone>();
    assert_eq!(done.len(), 1);
    let d = done[0].2;
    let total = d.finished.since(d.started);
    let secs = total.as_secs_f64();
    assert!(
        (0.8..1.2).contains(&secs),
        "10-job batch took {secs:.2}s, expected ≈0.93s"
    );
}

#[test]
fn qdel_running_job_via_client() {
    let script = vec![
        ServerCmd::Qsub(JobSpec::with_runtime("long", SimDuration::from_secs(500))),
        ServerCmd::Qdel(JobId(1)),
    ];
    let mut tb = testbed(1, script);
    run_to_idle(&mut tb);
    let head = tb.world.proc_ref::<PbsHeadProcess>(tb.head).unwrap().core();
    let j = head.job(JobId(1)).unwrap();
    assert_eq!(j.state, JobState::Complete);
    assert_eq!(j.exit_status, Some(jrs_pbs::job::exit::CANCELLED));
}

#[test]
fn qstat_reports_current_states() {
    let script = vec![
        ServerCmd::Qsub(JobSpec::with_runtime("running", SimDuration::from_secs(300))),
        ServerCmd::Qsub(JobSpec::trivial("queued")),
        ServerCmd::Qstat(None),
    ];
    let mut tb = testbed(1, script);
    run_to_idle(&mut tb);
    let records = tb.world.take_emitted::<SubmitRecord>();
    let stat = records
        .iter()
        .find_map(|(_, _, r)| match &r.reply {
            CmdReply::Status(rows) => Some(rows.clone()),
            _ => None,
        })
        .expect("qstat reply");
    assert_eq!(stat.len(), 2);
    assert_eq!(stat[0].state, 'R');
    assert_eq!(stat[1].state, 'Q');
    let _ = tb.client;
}

#[test]
fn walltime_kill_end_to_end() {
    let mut spec = JobSpec::trivial("hog");
    spec.runtime = SimDuration::from_secs(100);
    spec.walltime = SimDuration::from_secs(5);
    let mut tb = testbed(1, vec![ServerCmd::Qsub(spec)]);
    run_to_idle(&mut tb);
    let head = tb.world.proc_ref::<PbsHeadProcess>(tb.head).unwrap().core();
    assert_eq!(
        head.job(JobId(1)).unwrap().exit_status,
        Some(jrs_pbs::job::exit::WALLTIME)
    );
}

#[test]
fn head_crash_stops_service_baseline() {
    // The motivating failure: with a single head, a crash interrupts the
    // whole service — later submissions never get replies.
    let script: Vec<ServerCmd> =
        (0..10).map(|i| ServerCmd::Qsub(JobSpec::trivial(format!("j{i}")))).collect();
    let mut tb = testbed(1, script);
    let head_node = jrs_sim::NodeId(0);
    tb.world.schedule_at(
        SimTime::ZERO + SimDuration::from_millis(250),
        move |w| w.crash_node(head_node),
    );
    tb.world.run_until(SimTime::ZERO + SimDuration::from_secs(120));
    let records = tb.world.take_emitted::<SubmitRecord>();
    assert!(
        records.len() < 10,
        "single-head service should have been interrupted, got {} replies",
        records.len()
    );
    let done = tb.world.take_emitted::<ClientDone>();
    assert!(done.is_empty(), "client script must not complete");
}
