//! Property-based tests of the PBS server core — the determinism and
//! safety properties JOSHUA's replication scheme depends on.

use jrs_pbs::server::MomReport;
use jrs_pbs::{
    FifoExclusive, FifoShared, JobId, JobSpec, JobState, PbsServerCore, Policy, ServerAction,
    ServerCmd,
};
use jrs_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A randomized input to the server: a command or a mom report.
#[derive(Clone, Debug)]
enum Input {
    Qsub { nodes: u8, runtime_s: u16 },
    Qdel(u8),
    Qhold(u8),
    Qrls(u8),
    Qstat,
    Finish(u8),
}

fn input_strategy() -> impl Strategy<Value = Input> {
    prop_oneof![
        4 => (1u8..4, 1u16..100).prop_map(|(nodes, runtime_s)| Input::Qsub { nodes, runtime_s }),
        2 => any::<u8>().prop_map(Input::Qdel),
        1 => any::<u8>().prop_map(Input::Qhold),
        1 => any::<u8>().prop_map(Input::Qrls),
        1 => Just(Input::Qstat),
        3 => any::<u8>().prop_map(Input::Finish),
    ]
}

fn mk_server(shared: bool, nodes: usize) -> PbsServerCore {
    let policy: Box<dyn Policy> =
        if shared { Box::new(FifoShared) } else { Box::new(FifoExclusive) };
    PbsServerCore::new("prop", (0..nodes).map(|i| format!("c{i:02}")), policy)
}

/// Drive a server with the inputs, tracking the set of start-dispatched
/// jobs so Finish targets real jobs. Returns actions count (for replica
/// comparison).
fn drive(server: &mut PbsServerCore, inputs: &[Input], now: SimTime) -> Vec<usize> {
    let mut submitted = 0u64;
    let mut running: BTreeSet<JobId> = BTreeSet::new();
    let mut action_counts = Vec::new();
    for inp in inputs {
        let actions = match inp {
            Input::Qsub { nodes, runtime_s } => {
                submitted += 1;
                let mut spec = JobSpec::with_runtime(
                    format!("p{submitted}"),
                    SimDuration::from_secs(*runtime_s as u64),
                );
                spec.nodes = *nodes as u32;
                let (_r, a) = server.apply(now, &ServerCmd::Qsub(spec));
                a
            }
            Input::Qdel(k) if submitted > 0 => {
                let id = JobId(1 + (*k as u64 % submitted));
                let (_r, a) = server.apply(now, &ServerCmd::Qdel(id));
                a
            }
            Input::Qhold(k) if submitted > 0 => {
                let id = JobId(1 + (*k as u64 % submitted));
                let (_r, a) = server.apply(now, &ServerCmd::Qhold(id));
                a
            }
            Input::Qrls(k) if submitted > 0 => {
                let id = JobId(1 + (*k as u64 % submitted));
                let (_r, a) = server.apply(now, &ServerCmd::Qrls(id));
                a
            }
            Input::Qstat => {
                let (_r, a) = server.apply(now, &ServerCmd::Qstat(None));
                a
            }
            Input::Finish(k) => {
                if running.is_empty() {
                    action_counts.push(0);
                    continue;
                }
                let ids: Vec<JobId> = running.iter().copied().collect();
                let id = ids[*k as usize % ids.len()];
                running.remove(&id);
                server.on_report(now, &MomReport::Finished { job: id, exit: 0 })
            }
            _ => {
                action_counts.push(0);
                continue;
            }
        };
        for a in &actions {
            if let ServerAction::Start { job, .. } = a {
                running.insert(*job);
            }
            if let ServerAction::Cancel { job, .. } = a {
                // Simulate the mom confirming the cancel immediately.
                running.remove(job);
            }
        }
        // Feed cancel confirmations back (moms are immediate here).
        let mut extra = 0;
        for a in actions.iter() {
            if let ServerAction::Cancel { job, .. } = a {
                let more = server.on_report(
                    now,
                    &MomReport::Finished { job: *job, exit: jrs_pbs::job::exit::CANCELLED },
                );
                for m in &more {
                    if let ServerAction::Start { job, .. } = m {
                        running.insert(*job);
                    }
                }
                extra += more.len();
            }
        }
        action_counts.push(actions.len() + extra);
    }
    action_counts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Replication safety: two replicas fed the same input sequence at
    /// different local times end in consistent state with identical
    /// action streams.
    #[test]
    fn replicas_deterministic(
        inputs in prop::collection::vec(input_strategy(), 1..60),
        shared in any::<bool>(),
    ) {
        let mut a = mk_server(shared, 4);
        let mut b = mk_server(shared, 4);
        let ca = drive(&mut a, &inputs, SimTime::ZERO);
        let cb = drive(&mut b, &inputs, SimTime::ZERO + SimDuration::from_secs(1234));
        prop_assert_eq!(ca, cb, "replicas took different actions");
        prop_assert!(a.snapshot().consistent_with(&b.snapshot()));
    }

    /// Resource safety: at no point are more nodes allocated than exist,
    /// and no node is double-allocated.
    #[test]
    fn no_overallocation(
        inputs in prop::collection::vec(input_strategy(), 1..60),
        shared in any::<bool>(),
    ) {
        let mut s = mk_server(shared, 4);
        // drive() checks internally via NodePool debug asserts; externally:
        let _ = drive(&mut s, &inputs, SimTime::ZERO);
        let allocated: Vec<String> = s
            .jobs_in_order()
            .filter(|j| j.state == JobState::Running)
            .flat_map(|j| j.allocated.clone())
            .collect();
        let unique: BTreeSet<&String> = allocated.iter().collect();
        prop_assert_eq!(unique.len(), allocated.len(), "node double-allocated");
        prop_assert!(allocated.len() <= 4);
    }

    /// Queue discipline: under FIFO-exclusive at most one job runs, and a
    /// queued job with a lower id than the running one must have been
    /// held at some point (holding legitimately forfeits the position
    /// while successors start).
    #[test]
    fn fifo_exclusive_never_overtakes(
        inputs in prop::collection::vec(input_strategy(), 1..60),
    ) {
        let mut s = mk_server(false, 4);
        let _ = drive(&mut s, &inputs, SimTime::ZERO);
        // Replay the driver's id resolution to find ever-held jobs.
        let mut submitted = 0u64;
        let mut ever_held: std::collections::BTreeSet<JobId> = Default::default();
        for inp in &inputs {
            match inp {
                Input::Qsub { .. } => submitted += 1,
                Input::Qhold(k) if submitted > 0 => {
                    ever_held.insert(JobId(1 + (*k as u64 % submitted)));
                }
                _ => {}
            }
        }
        let running: Vec<JobId> = s
            .jobs_in_order()
            .filter(|j| matches!(j.state, JobState::Running | JobState::Exiting))
            .map(|j| j.id)
            .collect();
        prop_assert!(running.len() <= 1, "exclusive policy ran {} jobs", running.len());
        if let Some(r) = running.first() {
            for j in s.jobs_in_order() {
                if j.state == JobState::Queued && !ever_held.contains(&j.id) {
                    prop_assert!(j.id > *r, "queued job {} overtaken by {}", j.id, r);
                }
            }
        }
    }

    /// Snapshot/restore is lossless at any point in a random history.
    #[test]
    fn snapshot_roundtrip_anywhere(
        inputs in prop::collection::vec(input_strategy(), 1..40),
        cut in 0usize..40,
    ) {
        let mut s = mk_server(true, 4);
        let cut = cut.min(inputs.len());
        let _ = drive(&mut s, &inputs[..cut], SimTime::ZERO);
        let snap = s.snapshot();
        let mut restored = mk_server(true, 4);
        restored.restore(&snap);
        prop_assert!(restored.snapshot().consistent_with(&snap));
        // Both continue identically on the remaining inputs.
        let ca = drive(&mut s, &inputs[cut..], SimTime::ZERO);
        let cb = drive(&mut restored, &inputs[cut..], SimTime::ZERO);
        prop_assert_eq!(ca, cb);
        prop_assert!(s.snapshot().consistent_with(&restored.snapshot()));
    }

    /// Terminal-state hygiene: complete jobs always carry an exit status,
    /// and no job is ever lost (every submitted id is present).
    #[test]
    fn job_accounting(
        inputs in prop::collection::vec(input_strategy(), 1..60),
    ) {
        let mut s = mk_server(true, 4);
        let _ = drive(&mut s, &inputs, SimTime::ZERO);
        let submitted = inputs
            .iter()
            .filter(|i| matches!(i, Input::Qsub { .. }))
            .count();
        prop_assert_eq!(s.jobs_in_order().count(), submitted);
        for j in s.jobs_in_order() {
            if j.state == JobState::Complete {
                prop_assert!(j.exit_status.is_some(), "complete job without exit status");
            } else {
                prop_assert!(j.exit_status.is_none());
            }
        }
    }
}
