//! Monte Carlo validation of the availability analysis: simulate years of
//! exponential failure/repair processes on `n` head nodes and measure the
//! fraction of time at least one is up. Also models the paper's caveat —
//! **correlated failures** (rack/room outages taking all heads down at
//! once), which the analytic Eq. 2 cannot capture.
//!
//! Trials are independent and run in parallel with scoped threads.

use crate::analytic::NodeReliability;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Monte Carlo configuration.
#[derive(Clone, Copy, Debug)]
pub struct McConfig {
    /// Node failure/repair distribution means.
    pub node: NodeReliability,
    /// Number of redundant head nodes.
    pub nodes: u32,
    /// Simulated span per trial, in hours (e.g. 50 years = 438 000).
    pub span_hours: f64,
    /// Independent trials (averaged).
    pub trials: u32,
    /// RNG seed.
    pub seed: u64,
    /// Mean time between correlated whole-rack failures (hours);
    /// `f64::INFINITY` disables them.
    pub correlated_mttf_hours: f64,
    /// Restore time after a correlated failure (hours).
    pub correlated_mttr_hours: f64,
}

impl McConfig {
    /// Paper parameters, no correlated failures.
    pub fn paper(nodes: u32) -> Self {
        McConfig {
            node: NodeReliability::paper(),
            nodes,
            span_hours: 50.0 * 8760.0,
            trials: 8,
            seed: 2006,
            correlated_mttf_hours: f64::INFINITY,
            correlated_mttr_hours: 24.0,
        }
    }
}

/// Result of a Monte Carlo run.
#[derive(Clone, Copy, Debug)]
pub struct McResult {
    /// Measured service availability.
    pub availability: f64,
    /// Measured downtime fraction converted to hours/year.
    pub downtime_hours_per_year: f64,
    /// Total simulated hours across trials.
    pub simulated_hours: f64,
    /// Number of complete-outage episodes observed.
    pub outages: u64,
}

fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    // Inverse CDF; guard the log against u == 0.
    let u: f64 = rng.random::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Event-driven single trial: per-node alternating up/down renewal
/// processes plus an optional correlated killer; integrate the time during
/// which zero nodes are up.
fn run_trial(cfg: &McConfig, seed: u64) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.nodes as usize;
    // next_flip[i]: when node i changes state; up[i]: current state.
    let mut up = vec![true; n];
    let mut next_flip: Vec<f64> = (0..n)
        .map(|_| sample_exp(&mut rng, cfg.node.mttf_hours))
        .collect();
    let mut next_corr = if cfg.correlated_mttf_hours.is_finite() {
        sample_exp(&mut rng, cfg.correlated_mttf_hours)
    } else {
        f64::INFINITY
    };
    let mut t = 0.0f64;
    let mut down_time = 0.0f64;
    let mut outages = 0u64;
    let mut all_down_since: Option<f64> = None;
    while t < cfg.span_hours {
        // Next event: earliest node flip or correlated failure.
        let (i_min, &t_node) = next_flip
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("at least one node");
        let t_next = t_node.min(next_corr).min(cfg.span_hours);
        t = t_next;
        if t >= cfg.span_hours {
            break;
        }
        if next_corr <= t_node {
            // Correlated failure: everything down, repairs staggered.
            for i in 0..n {
                up[i] = false;
                next_flip[i] = t + sample_exp(&mut rng, cfg.correlated_mttr_hours);
            }
            next_corr = t + sample_exp(&mut rng, cfg.correlated_mttf_hours);
        } else {
            let i = i_min;
            up[i] = !up[i];
            let mean = if up[i] { cfg.node.mttf_hours } else { cfg.node.mttr_hours };
            next_flip[i] = t + sample_exp(&mut rng, mean);
        }
        let any_up = up.iter().any(|&u| u);
        match (any_up, all_down_since) {
            (false, None) => {
                all_down_since = Some(t);
                outages += 1;
            }
            (true, Some(since)) => {
                down_time += t - since;
                all_down_since = None;
            }
            _ => {}
        }
    }
    if let Some(since) = all_down_since {
        down_time += cfg.span_hours - since;
    }
    (down_time, outages)
}

/// Run the Monte Carlo: `trials` independent spans, in parallel.
pub fn run(cfg: &McConfig) -> McResult {
    let results: Vec<(f64, u64)> = if cfg.trials <= 1 {
        vec![run_trial(cfg, cfg.seed)]
    } else {
        let mut results = vec![(0.0, 0); cfg.trials as usize];
        std::thread::scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                let cfg = *cfg;
                s.spawn(move || {
                    *slot = run_trial(&cfg, cfg.seed.wrapping_add(i as u64 * 7919));
                });
            }
        });
        results
    };
    let total_hours = cfg.span_hours * cfg.trials.max(1) as f64;
    let down: f64 = results.iter().map(|(d, _)| d).sum();
    let outages: u64 = results.iter().map(|(_, o)| o).sum();
    let availability = 1.0 - down / total_hours;
    McResult {
        availability,
        downtime_hours_per_year: (down / total_hours) * 8760.0,
        simulated_hours: total_hours,
        outages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::parallel_availability;

    #[test]
    fn single_node_matches_analytic() {
        let mut cfg = McConfig::paper(1);
        cfg.trials = 4;
        cfg.span_hours = 20.0 * 8760.0;
        let r = run(&cfg);
        let expected = NodeReliability::paper().availability();
        assert!(
            (r.availability - expected).abs() < 0.01,
            "MC {} vs analytic {}",
            r.availability,
            expected
        );
        assert!(r.outages > 0);
    }

    #[test]
    fn two_nodes_match_analytic() {
        let mut cfg = McConfig::paper(2);
        cfg.trials = 8;
        cfg.span_hours = 200.0 * 8760.0; // rare double faults need time
        let r = run(&cfg);
        let expected = parallel_availability(NodeReliability::paper(), 2);
        assert!(
            (r.availability - expected).abs() < 5e-4,
            "MC {} vs analytic {}",
            r.availability,
            expected
        );
    }

    #[test]
    fn redundancy_reduces_downtime() {
        let run_n = |n| {
            let mut cfg = McConfig::paper(n);
            cfg.span_hours = 50.0 * 8760.0;
            cfg.trials = 4;
            run(&cfg)
        };
        let r1 = run_n(1);
        let r2 = run_n(2);
        assert!(r2.downtime_hours_per_year < r1.downtime_hours_per_year / 10.0);
    }

    #[test]
    fn correlated_failures_floor_the_availability() {
        // The paper's caveat: with rack-level correlated failures, adding
        // heads stops helping — Eq. 2 becomes wildly optimistic.
        let mk = |n: u32| {
            let mut cfg = McConfig::paper(n);
            cfg.correlated_mttf_hours = 5000.0; // rack dies as often as a node
            cfg.correlated_mttr_hours = 24.0;
            cfg.span_hours = 50.0 * 8760.0;
            cfg.trials = 4;
            run(&cfg)
        };
        let r2 = mk(2);
        let r4 = mk(4);
        let analytic4 = parallel_availability(NodeReliability::paper(), 4);
        // 4-node MC with correlated failures sits orders of magnitude
        // below the analytic 7-nines promise: the rack outage floor
        // (~24h per ~5000h) dominates.
        assert!(analytic4 > 0.9999999);
        assert!(
            r4.availability < 0.999,
            "correlated failures must cap availability, got {}",
            r4.availability
        );
        // And the marginal benefit of 2 extra heads nearly vanishes
        // compared to the first head's (~1.4e-2 → ~2e-4 analytic jump).
        let gain = r4.availability - r2.availability;
        assert!(gain.abs() < 0.005, "gain {gain} should be marginal");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = McConfig { trials: 2, span_hours: 8760.0, ..McConfig::paper(2) };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.availability, b.availability);
        assert_eq!(a.outages, b.outages);
    }
}
