//! The paper's availability analysis (Section 5, Equations 1–3 and
//! Figure 12).
//!
//! * Eq. 1: `A_node = MTTF / (MTTF + MTTR)`
//! * Eq. 2: `A_service = 1 − (1 − A_node)^n` (parallel redundancy — valid
//!   for JOSHUA because failover is instantaneous: no additional
//!   system-wide MTTR is introduced)
//! * Eq. 3: `t_down = 8760 h · (1 − A_service)`

use std::fmt;

/// Hours in a (non-leap) year, as used by Eq. 3.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// A node's failure/repair characteristics, in hours.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeReliability {
    /// Mean time to failure.
    pub mttf_hours: f64,
    /// Mean time to restore.
    pub mttr_hours: f64,
}

impl NodeReliability {
    /// The paper's working values: MTTF = 5000 h, MTTR = 72 h.
    pub fn paper() -> Self {
        NodeReliability { mttf_hours: 5000.0, mttr_hours: 72.0 }
    }

    /// Eq. 1 — steady-state availability of a single node.
    pub fn availability(&self) -> f64 {
        self.mttf_hours / (self.mttf_hours + self.mttr_hours)
    }
}

/// Eq. 2 — availability of `n` redundant nodes in parallel (service up
/// while at least one is up).
pub fn parallel_availability(node: NodeReliability, n: u32) -> f64 {
    1.0 - (1.0 - node.availability()).powi(n as i32)
}

/// Eq. 3 — expected downtime per year (hours) for a service availability.
pub fn downtime_hours_per_year(availability: f64) -> f64 {
    HOURS_PER_YEAR * (1.0 - availability)
}

/// The "number of nines" of an availability (floor of −log10(1−A)).
pub fn nines(availability: f64) -> u32 {
    if availability >= 1.0 {
        return u32::MAX;
    }
    // Epsilon guards floating-point artifacts (1 - 0.99 is slightly
    // above 0.01, which would otherwise lose a nine).
    ((-((1.0 - availability).log10())) + 1e-9).floor().max(0.0) as u32
}

/// Render a downtime (hours/year) like the paper ("5d 4h 21min", "1s").
pub fn format_downtime(hours: f64) -> String {
    let secs = hours * 3600.0;
    if secs < 1.5 {
        return format!("{secs:.0}s");
    }
    let total = secs.round() as u64;
    let days = total / 86_400;
    let h = (total % 86_400) / 3600;
    let m = (total % 3600) / 60;
    let s = total % 60;
    let mut parts = Vec::new();
    if days > 0 {
        parts.push(format!("{days}d"));
    }
    if h > 0 {
        parts.push(format!("{h}h"));
    }
    if m > 0 {
        parts.push(format!("{m}min"));
    }
    if parts.is_empty() || (days == 0 && h == 0 && m < 5 && s > 0) {
        parts.push(format!("{s}s"));
    }
    parts.join(" ")
}

/// One row of the Figure 12 table.
#[derive(Clone, Debug)]
pub struct AvailabilityRow {
    /// Head-node count.
    pub nodes: u32,
    /// Service availability (Eq. 2).
    pub availability: f64,
    /// Nines.
    pub nines: u32,
    /// Downtime per year, hours (Eq. 3).
    pub downtime_hours: f64,
}

impl fmt::Display for AvailabilityRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} node(s): A={:.8} ({} nines), downtime/year = {}",
            self.nodes,
            self.availability,
            self.nines,
            format_downtime(self.downtime_hours)
        )
    }
}

/// Compute the Figure 12 table for 1..=max_nodes head nodes.
pub fn figure12(node: NodeReliability, max_nodes: u32) -> Vec<AvailabilityRow> {
    (1..=max_nodes)
        .map(|n| {
            let a = parallel_availability(node, n);
            AvailabilityRow {
                nodes: n,
                availability: a,
                nines: nines(a),
                downtime_hours: downtime_hours_per_year(a),
            }
        })
        .collect()
}

/// Availability of an **active/standby** system with failover time
/// `failover_hours`: each node failure of the primary adds a failover
/// interruption even though a standby exists. Approximation:
/// unavailability ≈ P(both down) + failure_rate_of_primary × failover.
/// Used by the HA-model comparison (E6), not by the paper's Figure 12.
pub fn active_standby_availability(node: NodeReliability, failover_hours: f64) -> f64 {
    let both_down = (1.0 - node.availability()).powi(2);
    // Primary fails once per MTTF+MTTR cycle; each costs a failover.
    let failover_frac = failover_hours / (node.mttf_hours + node.mttr_hours);
    (1.0 - both_down - failover_frac).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_node() -> NodeReliability {
        NodeReliability::paper()
    }

    #[test]
    fn eq1_single_node_availability() {
        // 5000/5072 = 0.98580... → "98.6%" in the paper.
        let a = paper_node().availability();
        assert!((a - 0.985804).abs() < 1e-5, "{a}");
    }

    #[test]
    fn figure12_matches_paper_rows() {
        let rows = figure12(paper_node(), 4);
        // Paper: 98.6% / 99.98% / 99.9997% / 99.999996%
        assert!((rows[0].availability - 0.9858).abs() < 1e-3);
        assert!((rows[1].availability - 0.9998).abs() < 1e-4);
        assert!((rows[2].availability - 0.999997).abs() < 1e-6);
        assert!((rows[3].availability - 0.99999996).abs() < 2e-8);
        // Paper nines column: 1, 3, 5, 7.
        let nines: Vec<u32> = rows.iter().map(|r| r.nines).collect();
        assert_eq!(nines, vec![1, 3, 5, 7]);
    }

    #[test]
    fn figure12_downtimes_match_paper() {
        let rows = figure12(paper_node(), 4);
        // Paper: 5d 4h 21min; 1h 45min; 1min 30s; 1s.
        let d0 = rows[0].downtime_hours;
        assert!((d0 - 124.36).abs() < 0.5, "{d0}"); // ≈ 5d 4.4h
        let d1 = rows[1].downtime_hours * 60.0; // minutes
        assert!((d1 - 105.7).abs() < 2.0, "{d1}");
        let d2 = rows[2].downtime_hours * 3600.0; // seconds
        assert!((d2 - 90.0).abs() < 5.0, "{d2}");
        let d3 = rows[3].downtime_hours * 3600.0;
        assert!((d3 - 1.3).abs() < 0.3, "{d3}");
    }

    #[test]
    fn downtime_formatting() {
        assert_eq!(format_downtime(124.35), "5d 4h 21min");
        let s = format_downtime(1.75);
        assert!(s.starts_with("1h 45min"), "{s}");
        assert_eq!(format_downtime(0.025), "1min 30s");
        assert_eq!(format_downtime(1.3 / 3600.0), "1s");
    }

    #[test]
    fn nines_boundaries() {
        assert_eq!(nines(0.9), 1);
        assert_eq!(nines(0.99), 2);
        assert_eq!(nines(0.999), 3);
        assert_eq!(nines(0.9858), 1);
        assert_eq!(nines(1.0), u32::MAX);
    }

    #[test]
    fn parallel_availability_monotone_in_n() {
        let node = paper_node();
        let mut last = 0.0;
        for n in 1..=6 {
            let a = parallel_availability(node, n);
            assert!(a > last);
            last = a;
        }
        assert!(last < 1.0);
    }

    #[test]
    fn active_standby_worse_than_symmetric_two_nodes() {
        let node = paper_node();
        let sym = parallel_availability(node, 2);
        let asb = active_standby_availability(node, 0.001); // 3.6 s failover
        assert!(asb < sym, "failover interruptions must cost availability");
        // But still far better than a single node.
        assert!(asb > node.availability());
    }
}
