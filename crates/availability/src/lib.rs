//! # jrs-availability — availability analytics for redundant head nodes
//!
//! The paper's Section 5 availability analysis (Equations 1–3, Figure 12)
//! as a library, plus a Monte Carlo failure/repair simulator that
//! validates the analytic results and extends them with the correlated
//! (rack/room) failures the paper flags as future work.

#![warn(missing_docs)]

pub mod analytic;
pub mod montecarlo;

pub use analytic::{
    active_standby_availability, downtime_hours_per_year, figure12, format_downtime, nines,
    parallel_availability, AvailabilityRow, NodeReliability, HOURS_PER_YEAR,
};
pub use montecarlo::{run as monte_carlo, McConfig, McResult};
