//! # jrs-store — durable replica state
//!
//! The durability leg of the JOSHUA reproduction: a checksummed
//! record-framed write-ahead log ([`Wal`]) of delivered commands plus a
//! periodically published snapshot ([`SnapshotStore`]), both running over
//! the deterministic per-node simulated disk ([`jrs_sim::SimDisk`]).
//!
//! The paper's availability model assumes failed head nodes are *repaired
//! and rejoin*; this crate supplies the local half of that repair. On
//! restart a head loads its newest valid snapshot, replays the WAL to the
//! last valid record (truncating torn tails, quarantining corruption), and
//! rejoins the group needing only the delta it missed — instead of a full
//! in-memory state transfer, or, after a whole-cluster power loss, instead
//! of losing every accepted job.
//!
//! Wire format discipline: everything whose bytes land on disk goes
//! through the deterministic [`Codec`] (fixed-width little-endian, ordered
//! containers), so the detlint determinism rules apply to this crate
//! exactly as they do to the replicated state machines themselves.

#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod snapshot;
pub mod wal;

pub use codec::{Codec, DecodeError, Reader};
pub use crc::crc32;
pub use snapshot::SnapshotStore;
pub use wal::{Replay, Wal, WalError};
