//! Minimal deterministic binary codec for durable records.
//!
//! Fixed-width little-endian integers, length-prefixed containers, no
//! self-description: both sides of the WAL are the same build of the same
//! binary, so the format only needs to be deterministic and checkable, not
//! evolvable. Anything whose bytes land in the WAL derives its encoding by
//! implementing [`Codec`] field by field (the detlint rules D001–D005 apply
//! to all such types).

use std::collections::{BTreeMap, BTreeSet};

/// Why a decode failed. Recovery treats any decode error inside a
/// CRC-valid record as a hard bug, not disk damage (the CRC already
/// vouched for the bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes.
    Eof,
    /// A tag or invariant didn't match (e.g. unknown enum discriminant).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Eof => write!(f, "unexpected end of record"),
            DecodeError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over an encoded record.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Eof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Read a little-endian `u32` starting at `pos`, tolerating short input
/// (missing bytes read as zero). Callers bound-check `pos + 4 <= len`
/// before trusting the value; the read itself cannot panic, keeping the
/// recovery path free of panic constructs (F003).
pub fn le_u32_at(data: &[u8], pos: usize) -> u32 {
    let mut b = [0u8; 4];
    for (slot, &v) in b.iter_mut().zip(data.get(pos..).unwrap_or(&[])) {
        *slot = v;
    }
    u32::from_le_bytes(b)
}

/// Read a little-endian `u64` starting at `pos`; same contract as
/// [`le_u32_at`].
pub fn le_u64_at(data: &[u8], pos: usize) -> u64 {
    let mut b = [0u8; 8];
    for (slot, &v) in b.iter_mut().zip(data.get(pos..).unwrap_or(&[])) {
        *slot = v;
    }
    u64::from_le_bytes(b)
}

/// Deterministic binary encoding/decoding of one type.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode from a complete buffer, requiring every byte to be consumed.
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::Invalid("trailing bytes"));
        }
        Ok(v)
    }
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool")),
        }
    }
}

impl Codec for char {
    fn encode(&self, out: &mut Vec<u8>) {
        u32::from(*self).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        char::from_u32(u32::decode(r)?).ok_or(DecodeError::Invalid("char"))
    }
}

/// Hard ceiling on any length prefix in a durable record. No legitimate
/// container in a WAL record or snapshot approaches this; it bounds the
/// allocation a corrupt (but CRC-colliding) length can request even when
/// the record buffer itself is large.
pub const MAX_LEN: usize = 1 << 24;

fn encode_len(len: usize, out: &mut Vec<u8>) {
    assert!(len <= MAX_LEN, "container too large for WAL record");
    u32::try_from(len).expect("container too large for WAL record").encode(out);
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let len = u32::decode(r)?;
    let len = usize::try_from(len).map_err(|_| DecodeError::Invalid("length"))?;
    if len > MAX_LEN {
        return Err(DecodeError::Invalid("length exceeds MAX_LEN"));
    }
    // A length can never exceed the bytes left (items are ≥1 byte each);
    // reject early so corrupt lengths can't trigger huge allocations.
    if len > r.remaining() {
        return Err(DecodeError::Eof);
    }
    Ok(len)
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid("utf-8"))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError::Invalid("option tag")),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(r)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(r)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Codec + Ord> Codec for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(r)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Codec for jrs_sim::ProcId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(jrs_sim::ProcId(u32::decode(r)?))
    }
}

impl Codec for jrs_sim::NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(jrs_sim::NodeId(u32::decode(r)?))
    }
}

impl Codec for jrs_sim::SimDuration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_nanos().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(jrs_sim::SimDuration::from_nanos(u64::decode(r)?))
    }
}

impl Codec for jrs_sim::SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_nanos().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(jrs_sim::SimTime::from_nanos(u64::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-7i64);
        round_trip(true);
        round_trip('λ');
        round_trip(String::from("job-0"));
        round_trip(String::new());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(9u16));
        round_trip(Option::<u16>::None);
        round_trip(BTreeMap::from([(1u32, String::from("a")), (2, String::from("b"))]));
        round_trip(BTreeSet::from([5u64, 7]));
        round_trip((1u8, String::from("x"), vec![2u64]));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert_eq!(u32::from_bytes(&bytes), Err(DecodeError::Invalid("trailing bytes")));
    }

    #[test]
    fn truncation_is_eof() {
        let bytes = 5u64.to_bytes();
        assert_eq!(u64::from_bytes(&bytes[..4]), Err(DecodeError::Eof));
    }

    #[test]
    fn corrupt_length_cannot_allocate() {
        // A vector claiming u32::MAX items dies on the explicit ceiling
        // before any allocation, regardless of how many bytes follow.
        let bytes = u32::MAX.to_bytes();
        assert_eq!(
            Vec::<u64>::from_bytes(&bytes),
            Err(DecodeError::Invalid("length exceeds MAX_LEN"))
        );
        // A length under the ceiling but past the record end is Eof.
        let bytes = 1024u32.to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(&bytes), Err(DecodeError::Eof));
    }

    #[test]
    fn invalid_tags_rejected() {
        assert_eq!(bool::from_bytes(&[2]), Err(DecodeError::Invalid("bool")));
        assert_eq!(Option::<u8>::from_bytes(&[9]), Err(DecodeError::Invalid("option tag")));
    }
}
