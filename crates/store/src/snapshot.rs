//! Durable snapshot publication: write-temp, fsync, atomic rename.
//!
//! A snapshot captures the full replica state at one applied index so
//! recovery does not have to replay the WAL from the beginning of time.
//! The file is CRC-framed like a WAL record; a snapshot that fails its
//! checksum is ignored (recovery falls back to a full WAL replay), so a
//! half-written or corrupted snapshot can never poison a replica.

use crate::crc::crc32;
use jrs_sim::{SimDisk, SimTime};

/// A snapshot slot bound to one file path on a node's disk.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    path: String,
}

impl SnapshotStore {
    /// A snapshot store living at `path`.
    pub fn new(path: impl Into<String>) -> Self {
        SnapshotStore { path: path.into() }
    }

    /// The file path this store publishes to.
    pub fn path(&self) -> &str {
        &self.path
    }

    fn tmp_path(&self) -> String {
        format!("{}.tmp", self.path)
    }

    /// Durably publish a snapshot of `state` taken at `applied_index`.
    ///
    /// Uses the write-temp / fsync / rename idiom; if the disk is stalled
    /// the fsync is swallowed, the temp file is discarded and `false` is
    /// returned (the previous snapshot, if any, stays intact — the caller
    /// simply retries at the next interval).
    pub fn save(&self, disk: &mut SimDisk, now: SimTime, applied_index: u64, state: &[u8]) -> bool {
        let mut payload = Vec::with_capacity(8 + state.len());
        payload.extend_from_slice(&applied_index.to_le_bytes());
        payload.extend_from_slice(state);
        let mut file = Vec::with_capacity(4 + payload.len());
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        file.extend_from_slice(&payload);

        let tmp = self.tmp_path();
        disk.remove(&tmp);
        disk.append(&tmp, &file);
        if !disk.fsync(&tmp, now) {
            disk.remove(&tmp);
            return false;
        }
        disk.rename(&tmp, &self.path);
        true
    }

    /// Load the newest valid snapshot: `(applied_index, state_bytes)`.
    /// Returns `None` when the file is missing, too short, or fails its
    /// CRC — callers then recover from the WAL alone.
    pub fn load(&self, disk: &SimDisk) -> Option<(u64, Vec<u8>)> {
        let data = disk.read(&self.path)?;
        if data.len() < 12 {
            return None;
        }
        // The `len < 12` check above bounds both reads; the helpers
        // cannot panic regardless (F003: recovery must degrade, not die).
        let want_crc = crate::codec::le_u32_at(&data, 0);
        let payload = &data[4..];
        if crc32(payload) != want_crc {
            return None;
        }
        Some((crate::codec::le_u64_at(payload, 0), payload[8..].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrs_sim::SimDuration;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn save_load_round_trip_survives_crash() {
        let mut disk = SimDisk::new();
        let store = SnapshotStore::new("joshua/snap");
        assert!(store.save(&mut disk, T0, 42, b"state-bytes"));
        disk.on_crash();
        assert_eq!(store.load(&disk), Some((42, b"state-bytes".to_vec())));
        assert!(!disk.exists("joshua/snap.tmp"));
    }

    #[test]
    fn newer_save_replaces_older() {
        let mut disk = SimDisk::new();
        let store = SnapshotStore::new("joshua/snap");
        assert!(store.save(&mut disk, T0, 1, b"old"));
        assert!(store.save(&mut disk, T0, 2, b"new"));
        assert_eq!(store.load(&disk), Some((2, b"new".to_vec())));
    }

    #[test]
    fn stalled_disk_keeps_previous_snapshot() {
        let mut disk = SimDisk::new();
        let store = SnapshotStore::new("joshua/snap");
        assert!(store.save(&mut disk, T0, 1, b"old"));
        disk.stall_until(T0 + SimDuration::from_secs(10));
        assert!(!store.save(&mut disk, T0, 2, b"new"));
        assert_eq!(store.load(&disk), Some((1, b"old".to_vec())));
    }

    #[test]
    fn corrupt_snapshot_is_ignored() {
        let mut disk = SimDisk::new();
        let store = SnapshotStore::new("joshua/snap");
        assert!(store.save(&mut disk, T0, 7, b"payload"));
        assert!(disk.corrupt_byte("joshua/snap", 6));
        assert_eq!(store.load(&disk), None);
    }

    #[test]
    fn missing_or_short_snapshot_is_none() {
        let mut disk = SimDisk::new();
        let store = SnapshotStore::new("joshua/snap");
        assert_eq!(store.load(&disk), None);
        disk.append("joshua/snap", &[1, 2, 3]);
        assert_eq!(store.load(&disk), None);
    }
}
