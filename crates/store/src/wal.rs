//! Checksummed, record-framed write-ahead log over a [`SimDisk`].
//!
//! Every delivered command is appended as one framed record before its
//! effects are considered durable:
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][payload = [idx: u64 LE][blob…]]
//! ```
//!
//! `len` is the payload length, `crc` is the CRC-32 of the payload, and
//! `idx` is the replica's monotonically increasing applied index. Recovery
//! ([`Wal::replay`]) scans from the front and classifies damage:
//!
//! * an incomplete header or payload at end-of-file is a **torn tail**
//!   (the crash interrupted the last write) — recoverable by truncating
//!   back to the last valid record;
//! * a CRC mismatch whose record ends exactly at end-of-file is likewise
//!   a torn tail (the tail bytes never finished reaching the platter);
//! * a CRC mismatch **mid-log** is silent media corruption — a hard error
//!   carrying the record's byte offset, because everything after it is of
//!   unknowable validity. The caller quarantines the file and falls back
//!   to snapshot-only recovery plus peer state transfer.

use crate::crc::crc32;
use jrs_sim::SimDisk;

/// Frame header size: `len` + `crc`.
const HEADER: usize = 8;
/// Payload prefix: the applied index.
const IDX: usize = 8;

/// A WAL replay failure that truncation cannot repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A CRC-invalid record strictly before end-of-file: media corruption
    /// at this byte offset.
    Corruption {
        /// Byte offset of the damaged record's frame header.
        offset: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Corruption { offset } => {
                write!(f, "WAL corruption: CRC mismatch in record at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// The result of scanning a WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Every valid `(applied_index, payload_blob)` record, in log order.
    pub entries: Vec<(u64, Vec<u8>)>,
    /// Byte length of the valid prefix (where a torn tail, if any, starts).
    pub valid_len: usize,
    /// Whether a torn tail was found after the valid prefix.
    pub torn: bool,
}

/// A write-ahead log bound to one file path on a node's disk.
#[derive(Debug, Clone)]
pub struct Wal {
    path: String,
}

impl Wal {
    /// A WAL living at `path`.
    pub fn new(path: impl Into<String>) -> Self {
        Wal { path: path.into() }
    }

    /// The file path this WAL writes.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Frame one record (without writing it anywhere).
    pub fn frame(idx: u64, blob: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(IDX + blob.len());
        payload.extend_from_slice(&idx.to_le_bytes());
        payload.extend_from_slice(blob);
        // flow: allow(F003): a >4 GiB record is unrepresentable in the u32 frame format; failing loudly at the writer beats silently truncating the length and corrupting every later record
        let len = u32::try_from(payload.len()).expect("WAL record exceeds u32 length");
        let mut rec = Vec::with_capacity(HEADER + payload.len());
        rec.extend_from_slice(&len.to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        rec
    }

    /// Append one record to the volatile tail of the log file. The record
    /// is durable only after a subsequent successful fsync of the path.
    pub fn append(&self, disk: &mut SimDisk, idx: u64, blob: &[u8]) {
        let rec = Self::frame(idx, blob);
        disk.append(&self.path, &rec);
    }

    /// Scan the log, returning every valid record and classifying any
    /// damage. A missing file replays as empty.
    pub fn replay(&self, disk: &SimDisk) -> Result<Replay, WalError> {
        let data = disk.read(&self.path).unwrap_or_default();
        let mut entries = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let remaining = data.len() - pos;
            if remaining < HEADER {
                // Partial frame header: torn tail.
                return Ok(Replay { entries, valid_len: pos, torn: true });
            }
            // `remaining >= HEADER` bounds both reads; the helpers cannot
            // panic regardless, and u32 → usize is a widening cast here.
            let len = crate::codec::le_u32_at(&data, pos) as usize;
            let want_crc = crate::codec::le_u32_at(&data, pos + 4);
            let end = pos + HEADER + len;
            if len < IDX || end > data.len() {
                // Payload runs past end-of-file (or is impossibly short,
                // which only a half-written length can produce): torn tail.
                return Ok(Replay { entries, valid_len: pos, torn: true });
            }
            let payload = &data[pos + HEADER..end];
            if crc32(payload) != want_crc {
                if end == data.len() {
                    // Damaged record is the very last: a torn write.
                    return Ok(Replay { entries, valid_len: pos, torn: true });
                }
                // Damage strictly mid-log: corruption, not a torn write.
                // (usize → u64 is widening on every supported platform.)
                return Err(WalError::Corruption { offset: pos as u64 });
            }
            // `len >= IDX` was checked above; the helper tolerates short
            // input anyway.
            entries.push((crate::codec::le_u64_at(payload, 0), payload[IDX..].to_vec()));
            pos = end;
        }
        Ok(Replay { entries, valid_len: pos, torn: false })
    }

    /// Truncate a torn tail back to the last valid record boundary.
    pub fn truncate_to(&self, disk: &mut SimDisk, valid_len: usize) {
        disk.truncate(&self.path, valid_len);
    }

    /// Move a damaged log aside (to `<path>.corrupt`) so recovery can
    /// proceed from snapshot + peer state transfer while preserving the
    /// evidence. Returns the quarantine path.
    pub fn quarantine(&self, disk: &mut SimDisk) -> String {
        let aside = format!("{}.corrupt", self.path);
        disk.remove(&aside);
        disk.rename(&self.path, &aside);
        aside
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrs_sim::SimTime;

    const T0: SimTime = SimTime::ZERO;

    fn wal_with(entries: &[(u64, &[u8])]) -> (SimDisk, Wal) {
        let mut disk = SimDisk::new();
        let wal = Wal::new("joshua/wal");
        for &(idx, blob) in entries {
            wal.append(&mut disk, idx, blob);
            assert!(disk.fsync("joshua/wal", T0));
        }
        (disk, wal)
    }

    #[test]
    fn empty_and_missing_replay_clean() {
        let disk = SimDisk::new();
        let wal = Wal::new("joshua/wal");
        let r = wal.replay(&disk).unwrap();
        assert!(r.entries.is_empty() && !r.torn && r.valid_len == 0);
    }

    #[test]
    fn records_round_trip_in_order() {
        let (disk, wal) = wal_with(&[(1, b"alpha"), (2, b"beta"), (3, b"")]);
        let r = wal.replay(&disk).unwrap();
        assert_eq!(
            r.entries,
            vec![(1, b"alpha".to_vec()), (2, b"beta".to_vec()), (3, Vec::new())]
        );
        assert!(!r.torn);
        assert_eq!(r.valid_len, disk.read("joshua/wal").unwrap().len());
    }

    #[test]
    fn torn_header_detected_and_truncated() {
        let (mut disk, wal) = wal_with(&[(1, b"alpha")]);
        let good_len = disk.read("joshua/wal").unwrap().len();
        // A crash left 3 bytes of the next frame header.
        disk.append("joshua/wal", &[9, 9, 9]);
        assert!(disk.fsync("joshua/wal", T0));
        let r = wal.replay(&disk).unwrap();
        assert!(r.torn);
        assert_eq!(r.valid_len, good_len);
        assert_eq!(r.entries.len(), 1);
        wal.truncate_to(&mut disk, r.valid_len);
        let r2 = wal.replay(&disk).unwrap();
        assert!(!r2.torn);
        assert_eq!(r2.entries.len(), 1);
    }

    #[test]
    fn torn_payload_detected() {
        let (mut disk, wal) = wal_with(&[(1, b"alpha")]);
        let good_len = disk.read("joshua/wal").unwrap().len();
        // Full header of a record whose payload never finished writing.
        let rec = Wal::frame(2, b"beta-unfinished");
        disk.append("joshua/wal", &rec[..rec.len() - 4]);
        assert!(disk.fsync("joshua/wal", T0));
        let r = wal.replay(&disk).unwrap();
        assert!(r.torn);
        assert_eq!(r.valid_len, good_len);
    }

    #[test]
    fn crc_bad_tail_is_torn_but_mid_log_is_corruption() {
        // Damage in the LAST record → torn.
        let (mut disk, wal) = wal_with(&[(1, b"alpha"), (2, b"beta")]);
        let all = disk.read("joshua/wal").unwrap();
        let first_len = Wal::frame(1, b"alpha").len();
        disk.corrupt_byte("joshua/wal", u64::try_from(all.len() - 1).unwrap());
        let r = wal.replay(&disk).unwrap();
        assert!(r.torn);
        assert_eq!(r.valid_len, first_len);
        assert_eq!(r.entries.len(), 1);

        // Same damage NOT at the tail → hard corruption with the offset.
        let (mut disk, wal) = wal_with(&[(1, b"alpha"), (2, b"beta")]);
        disk.corrupt_byte("joshua/wal", 9); // inside record 1's payload
        assert_eq!(wal.replay(&disk), Err(WalError::Corruption { offset: 0 }));
        let (mut disk, wal) = wal_with(&[(1, b"alpha"), (2, b"beta"), (3, b"gamma")]);
        let off = u64::try_from(first_len).unwrap();
        disk.corrupt_byte("joshua/wal", off + 9);
        assert_eq!(wal.replay(&disk), Err(WalError::Corruption { offset: off }));
    }

    #[test]
    fn quarantine_moves_log_aside() {
        let (mut disk, wal) = wal_with(&[(1, b"alpha")]);
        let aside = wal.quarantine(&mut disk);
        assert_eq!(aside, "joshua/wal.corrupt");
        assert!(!disk.exists("joshua/wal"));
        assert!(disk.exists(&aside));
        // A fresh log can start at the old path.
        let r = wal.replay(&disk).unwrap();
        assert!(r.entries.is_empty());
    }

    #[test]
    fn unsynced_tail_lost_on_crash_replays_clean() {
        let (mut disk, wal) = wal_with(&[(1, b"alpha")]);
        wal.append(&mut disk, 2, b"beta"); // never fsynced
        disk.on_crash();
        let r = wal.replay(&disk).unwrap();
        assert!(!r.torn);
        assert_eq!(r.entries.len(), 1);
    }
}
