//! CRC-32 (IEEE 802.3 polynomial), table-driven and dependency-free.
//!
//! Every durable artefact (WAL records, snapshot files) carries a CRC so
//! recovery can tell a torn tail or flipped bit from valid data.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut crc = i;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
