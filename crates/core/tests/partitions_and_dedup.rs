//! Partition behaviour (under both membership policies) and the
//! exactly-once client-command semantics across retries and responder
//! death.

use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::workload;
use jrs_gcs::MembershipPolicy;
use jrs_pbs::{CmdReply, JobState};
use jrs_sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[test]
fn primary_component_majority_keeps_serving_through_partition() {
    let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 3 });
    cfg.group.membership = MembershipPolicy::PrimaryComponent;
    let mut c = Cluster::build(cfg);
    c.spawn_client(workload::burst(15));
    // Cut head-2 off the LAN at t=1s (pulled cable), heal at t=20s.
    let isolated = c.head_nodes[2];
    c.world.schedule_at(secs(1), move |w| w.set_partition_group(isolated, 9));
    c.world.schedule_at(secs(20), move |w| w.network_mut().heal_partitions());
    c.run_until(secs(300));

    let records = c.take_records();
    assert_eq!(records.len(), 15, "majority must keep serving");
    assert_eq!(c.total_real_runs(), 15, "exactly-once through partition");
    // After healing, the isolated head ejects, rejoins, gets state
    // transfer, and agrees with the majority again.
    assert_eq!(c.assert_replicas_consistent(), 3);
    let h2 = c.joshua(2);
    assert!(h2.is_established());
    assert_eq!(h2.pbs().count_state(JobState::Complete), 15);
    assert!(h2.group_stats().ejections >= 1, "minority must have rejoined via ejection");
}

#[test]
fn failstop_policy_remerges_after_partition() {
    // Under the paper-faithful fail-stop policy, both sides keep going
    // during a partition; on heal the smaller component deterministically
    // yields, ejects and rejoins with state transfer. Jobs submitted to
    // the majority survive; the client never observes an outage.
    let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 3 });
    cfg.group.membership = MembershipPolicy::FailStop;
    let mut c = Cluster::build(cfg);
    c.spawn_client(workload::burst(15));
    let isolated = c.head_nodes[2];
    c.world.schedule_at(secs(1), move |w| w.set_partition_group(isolated, 9));
    c.world.schedule_at(secs(20), move |w| w.network_mut().heal_partitions());
    c.run_until(secs(300));

    let records = c.take_records();
    assert_eq!(records.len(), 15);
    assert_eq!(c.assert_replicas_consistent(), 3);
}

#[test]
fn client_retry_after_responder_death_is_deduplicated() {
    // Kill the client's preferred head (and current responder) the moment
    // the burst starts: some commands are retried against the other head
    // with the same request id — state must show each submission once.
    let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 2 });
    cfg.client_timeout = SimDuration::from_millis(800);
    let mut c = Cluster::build(cfg);
    c.spawn_client(workload::burst(10));
    let n0 = c.head_nodes[0];
    // Crash right in the middle of the first command's processing window.
    c.world
        .schedule_at(SimTime::ZERO + SimDuration::from_millis(150), move |w| {
            w.crash_node(n0)
        });
    c.run_until(secs(200));
    let records = c.take_records();
    assert_eq!(records.len(), 10);
    assert!(
        records.iter().any(|r| r.attempts > 1),
        "the crash should force at least one retry"
    );
    // Dedup: exactly ten jobs exist, with ids 1..=10 and no duplicates.
    let survivor = c.joshua(1);
    let ids: Vec<u64> = survivor.pbs().jobs_in_order().map(|j| j.id.0).collect();
    assert_eq!(ids, (1..=10).collect::<Vec<u64>>(), "duplicate or lost submissions");
    // Replies carried the right ids too.
    for (i, r) in records.iter().enumerate() {
        let CmdReply::Submitted(id) = r.reply else {
            panic!("unexpected reply {:?}", r.reply)
        };
        assert_eq!(id.0, i as u64 + 1);
    }
    assert_eq!(c.total_real_runs(), 10);
}

#[test]
fn qstat_reads_are_ordered_and_consistent() {
    // jstat goes through the same total order, so a status snapshot can
    // never show a state that contradicts the command order (e.g. a
    // deletion reported before the submission it deletes).
    let mut c = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: 3 }));
    let mut script = Vec::new();
    for i in 0..5 {
        script.push(jrs_pbs::ServerCmd::Qsub(jrs_pbs::JobSpec::trivial(format!("j{i}"))));
        script.push(jrs_pbs::ServerCmd::Qstat(None));
    }
    c.spawn_client(script);
    c.run_until(secs(120));
    let records = c.take_records();
    assert_eq!(records.len(), 10);
    for (k, r) in records.iter().enumerate() {
        if k % 2 == 1 {
            let CmdReply::Status(rows) = &r.reply else { panic!() };
            // After the (k/2+1)-th submission, exactly that many jobs
            // exist — reads are linearizable with writes.
            assert_eq!(rows.len(), k / 2 + 1, "qstat #{k} saw {} rows", rows.len());
        }
    }
}
