//! Durable-replica-state end-to-end tests: crash → power-on → local
//! recovery → rejoin, for a single head (warm restart, delta catch-up),
//! the whole cluster (blackout, cold restart with reconciliation), and
//! the disk-fault menu (torn WAL tail, mid-log corruption).

use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::config::PersistConfig;
use joshua_core::workload;
use jrs_pbs::JobState;
use jrs_sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn durable_cfg(heads: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(HaMode::Joshua { heads });
    cfg.persist = PersistConfig::durable();
    cfg
}

/// Crash one head mid-burst, power it back on later: it recovers its
/// applied prefix from the local snapshot + WAL, rejoins the survivors
/// and fetches only the delta (no full snapshot transfer), ending with
/// the same fingerprint as the replicas that never died.
#[test]
fn warm_restart_catches_up_with_delta() {
    let mut c = Cluster::build(durable_cfg(3));
    c.spawn_client(workload::burst_with_runtime(20, SimDuration::from_millis(500)));
    c.run_until(secs(2));
    c.crash_head(1);
    c.run_until(secs(8));
    c.restart_joshua_head(1);
    c.run_until(secs(120));

    assert_eq!(c.take_records().len(), 20);
    assert_eq!(c.total_real_runs(), 20, "exactly-once through the restart");
    assert_eq!(c.assert_replicas_consistent(), 3);

    let h1 = c.joshua(1);
    assert!(h1.is_established());
    let rec = h1.recovery_report().expect("restart went through recovery");
    assert!(rec.recovered_index > 0, "local disk vouched for a prefix");
    assert!(!rec.torn_tail_truncated);
    assert_eq!(rec.corruption_offset, None);
    let s = h1.stats();
    assert_eq!(s.catch_ups_applied, 1, "rejoined via delta, not snapshot");
    assert_eq!(s.snapshots_installed, 0);
    assert!(s.wal_records > 0, "the new life keeps logging");
    assert_eq!(h1.state_fingerprint(), c.joshua(0).state_fingerprint());
    assert_eq!(h1.applied_index(), c.joshua(0).applied_index());
    assert_eq!(c.joshua(1).pbs().count_state(JobState::Complete), 20);
}

/// Power off every head and every compute node at once, then cold-start
/// the whole cluster: the heads reconcile their recovered states (most
/// advanced wins), jobs completed before the outage stay completed (no
/// relaunch), jobs that were in flight are relaunched exactly once, and
/// the client — which kept retrying — loses nothing.
#[test]
fn full_blackout_cold_restart_recovers_every_job() {
    let mut c = Cluster::build(durable_cfg(3));
    c.spawn_client(workload::burst_with_runtime(12, SimDuration::from_millis(400)));
    c.run_until(secs(3));
    let done_before = c.joshua(0).pbs().count_state(JobState::Complete);
    c.blackout();
    c.run_until(secs(6));
    c.cold_restart();
    c.run_until(secs(300));

    assert_eq!(c.take_records().len(), 12, "client retries cover the outage");
    assert_eq!(c.assert_replicas_consistent(), 3);
    for i in 0..3 {
        let h = c.joshua(i);
        assert!(h.is_established(), "head {i} not established");
        assert!(h.recovery_report().is_some(), "head {i} skipped recovery");
        assert_eq!(h.pbs().count_state(JobState::Complete), 12, "head {i}");
    }
    assert_eq!(
        c.joshua(0).state_fingerprint(),
        c.joshua(1).state_fingerprint(),
        "reconciled replicas agree"
    );
    assert_eq!(
        c.joshua(1).state_fingerprint(),
        c.joshua(2).state_fingerprint(),
        "reconciled replicas agree"
    );
    // Completed-before-outage jobs were recovered from disk, not rerun:
    // the rebooted (state-less) moms only launched what was still open.
    let total: u64 = c.total_real_runs();
    assert_eq!(
        total,
        12 - u64::try_from(done_before).expect("fits"),
        "each unfinished job relaunched exactly once ({done_before} were already done)"
    );
}

/// A crash can tear the last WAL record (power died mid-write). Recovery
/// truncates to the last valid record, reports it, and the head still
/// rejoins and converges — the torn command is simply part of the delta
/// its peers donate.
#[test]
fn torn_wal_tail_truncated_then_delta_rejoin() {
    let mut c = Cluster::build(durable_cfg(3));
    c.spawn_client(workload::burst_with_runtime(10, SimDuration::from_millis(300)));
    c.run_until(secs(2));
    // Arm the fault: at the next crash, the most recently fsynced file on
    // head 1's disk keeps only 4 bytes of its final write batch.
    c.world.disk_mut(c.head_nodes[1]).arm_torn_write(4);
    c.run_until(secs(3));
    c.crash_head(1);
    c.run_until(secs(8));
    c.restart_joshua_head(1);
    c.run_until(secs(120));

    assert_eq!(c.take_records().len(), 10);
    assert_eq!(c.assert_replicas_consistent(), 3);
    let h1 = c.joshua(1);
    assert!(h1.is_established());
    let rec = h1.recovery_report().expect("recovery ran");
    assert!(rec.torn_tail_truncated, "torn tail detected and truncated");
    assert!(rec.recovered_index > 0);
    assert_eq!(h1.state_fingerprint(), c.joshua(0).state_fingerprint());
    assert_eq!(c.world.disk(c.head_nodes[1]).torn_truncations, 1);
}

/// Silent media corruption in the middle of the WAL: the log cannot be
/// trusted past (or before) the bad record, so it is quarantined with the
/// failing offset, recovery falls back to the snapshot alone, and the
/// peers make up the difference.
#[test]
fn corrupt_wal_quarantined_then_rejoin() {
    let mut c = Cluster::build(durable_cfg(3));
    c.spawn_client(workload::burst_with_runtime(10, SimDuration::from_millis(300)));
    c.run_until(secs(4));
    c.crash_head(1);
    c.run_until(secs(5));
    // Flip a byte early in the log, well inside the first records.
    let node = c.head_nodes[1];
    assert!(c.world.disk_mut(node).corrupt_byte("joshua.wal", 12));
    c.restart_joshua_head(1);
    c.run_until(secs(120));

    assert_eq!(c.take_records().len(), 10);
    assert_eq!(c.assert_replicas_consistent(), 3);
    let h1 = c.joshua(1);
    assert!(h1.is_established());
    let rec = h1.recovery_report().expect("recovery ran");
    assert!(rec.corruption_offset.is_some(), "corruption detected with offset");
    assert_eq!(h1.state_fingerprint(), c.joshua(0).state_fingerprint());
    // The damaged log was moved aside, and the new life started a clean one.
    assert!(c.world.disk(node).exists("joshua.wal.corrupt"));
}

/// Regression: powering a node back on WITHOUT restarting its processes
/// (a revived machine whose daemons stay down) must not wedge the
/// surviving group — the dead head stays ejected and the survivors keep
/// serving.
#[test]
fn revive_without_restart_does_not_wedge_survivors() {
    let mut c = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: 3 }));
    c.spawn_client(workload::burst_with_runtime(10, SimDuration::from_millis(300)));
    c.run_until(secs(1));
    c.crash_head(2);
    c.run_until(secs(4));
    // Node powers back on, but no daemon is started on it.
    c.world.revive_node(c.head_nodes[2]);
    c.run_until(secs(120));

    assert_eq!(c.take_records().len(), 10, "survivors keep serving");
    assert_eq!(c.total_real_runs(), 10);
    assert_eq!(c.assert_replicas_consistent(), 2);
    assert!(c.joshua(0).is_established());
    assert!(c.joshua(1).is_established());
}
