//! Property test for the durability tentpole: for an arbitrary command
//! sequence and an arbitrary crash point, recovery from the local
//! snapshot + WAL reproduces the crashed replica's state fingerprint
//! exactly.
//!
//! A single-head cluster makes the property airtight: there is no peer
//! to donate a snapshot or delta, so everything the recovered replica
//! knows came off its own disk. The crashed process instance stays
//! readable in the harness after `crash_node`, which is what lets the
//! test capture the pre-crash fingerprint to compare against.

use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::config::PersistConfig;
use joshua_core::workload;
use jrs_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn recovery_reproduces_precrash_fingerprint(
        n in 5usize..30,
        seed in 0u64..1000,
        crash_ms in 500u64..8000,
        snapshot_every in 4u64..48,
    ) {
        let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 1 });
        cfg.persist = PersistConfig::durable();
        cfg.persist.snapshot_every = snapshot_every;
        let mut c = Cluster::build(cfg);
        c.spawn_client(workload::mixed(n, seed));
        c.run_until(SimTime::ZERO + SimDuration::from_millis(crash_ms));

        // The dead instance stays readable until the restart replaces it.
        c.crash_head(0);
        let pre_index = c.joshua(0).applied_index();
        let pre_fingerprint = c.joshua(0).state_fingerprint();

        c.restart_joshua_head(0);
        c.run_until(SimTime::ZERO + SimDuration::from_millis(crash_ms) + SimDuration::from_secs(60));

        let h = c.joshua(0);
        let rec = h.recovery_report().expect("restart went through recovery");
        prop_assert_eq!(rec.recovered_index, pre_index, "index recovered exactly");
        prop_assert_eq!(
            rec.recovered_fingerprint, pre_fingerprint,
            "snapshot + WAL replay reproduced the crashed replica bit-exactly"
        );
        prop_assert!(rec.corruption_offset.is_none());
        prop_assert!(h.is_established(), "sole member re-established after recovery");
    }
}
