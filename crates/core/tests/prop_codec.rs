//! Round-trip property test for every hand-rolled `Codec` impl that
//! ships bytes between replicas or onto disk: `decode(encode(x)) == x`
//! for arbitrary values of the store containers, the PBS wire types,
//! and the replicated `Payload` stream (including full `ReplicaState`
//! snapshots).
//!
//! jrs-proto checks the same codecs *statically* (field order, tags,
//! bounds — see `crates/proto`); this test is the dynamic side of that
//! pincer: whatever shape the static scanner could not see, a value
//! actually travelling through the bytes must survive unchanged.
//!
//! Types without `PartialEq` (`Payload`, `ReplicaState`) are compared
//! by re-encoded bytes plus `jrs_sim::fingerprint`, the same structural
//! hash replicas use for cross-head agreement checks.

use joshua_core::payload::{Grant, JMutexState, Payload, ReplicaState};
use jrs_pbs::job::{Job, JobId, JobSpec, JobState, JobStatus};
use jrs_pbs::resources::{ComputeNode, NodePool, NodeState};
use jrs_pbs::server::{CmdReply, MomReport, ServerCmd, ServerSnapshot};
use jrs_sim::{ProcId, SimDuration};
use jrs_store::codec::Codec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hash::Hash;

/// The round-trip property: decode inverts encode, the re-encoded bytes
/// are identical (no tolerated drift), and the structural fingerprint —
/// what replicas actually compare — is preserved.
fn round_trips<T: Codec + Hash>(v: &T) -> Result<(), TestCaseError> {
    let bytes = v.to_bytes();
    let back = match T::from_bytes(&bytes) {
        Ok(b) => b,
        Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
    };
    prop_assert_eq!(back.to_bytes(), bytes, "re-encode must reproduce the bytes");
    prop_assert_eq!(
        jrs_sim::fingerprint(&back),
        jrs_sim::fingerprint(v),
        "fingerprint must survive the round trip"
    );
    Ok(())
}

// ---- generators (seed-driven; the proptest shim draws the seed) ----

fn proc_id(rng: &mut StdRng) -> ProcId {
    ProcId(rng.random_range(0u32..64))
}

fn small_string(rng: &mut StdRng) -> String {
    let len = rng.random_range(0usize..12);
    (0..len)
        .map(|_| char::from(b'a' + rng.random_range(0u8..26)))
        .collect()
}

fn job_spec(rng: &mut StdRng) -> JobSpec {
    JobSpec {
        name: small_string(rng),
        user: small_string(rng),
        nodes: rng.random_range(1u32..32),
        walltime: SimDuration::from_millis(rng.random_range(1u64..100_000)),
        runtime: SimDuration::from_nanos(rng.random_range(0u64..u64::MAX / 2)),
    }
}

fn job_state(rng: &mut StdRng) -> JobState {
    [
        JobState::Queued,
        JobState::Running,
        JobState::Exiting,
        JobState::Complete,
        JobState::Held,
    ][rng.random_range(0usize..5)]
}

fn job(rng: &mut StdRng) -> Job {
    Job {
        id: JobId(rng.random_range(0u64..1_000_000)),
        spec: job_spec(rng),
        state: job_state(rng),
        exit_status: if rng.random_range(0u8..2) == 0 {
            None
        } else {
            Some(rng.random_range(-20i32..20))
        },
        allocated: (0..rng.random_range(0usize..4)).map(|_| small_string(rng)).collect(),
    }
}

fn job_status(rng: &mut StdRng) -> JobStatus {
    let j = job(rng);
    JobStatus::from(&j)
}

fn node_pool(rng: &mut StdRng) -> NodePool {
    let n = rng.random_range(0usize..6);
    NodePool::from_nodes((0..n).map(|i| ComputeNode {
        name: format!("n{i}-{}", small_string(rng)),
        mom: if rng.random_range(0u8..2) == 0 { None } else { Some(proc_id(rng)) },
        state: [NodeState::Free, NodeState::Busy, NodeState::Offline]
            [rng.random_range(0usize..3)],
    }))
}

fn server_cmd(rng: &mut StdRng) -> ServerCmd {
    match rng.random_range(0u8..5) {
        0 => ServerCmd::Qsub(job_spec(rng)),
        1 => ServerCmd::Qdel(JobId(rng.random_range(0u64..100))),
        2 => ServerCmd::Qstat(
            if rng.random_range(0u8..2) == 0 {
                None
            } else {
                Some(JobId(rng.random_range(0u64..100)))
            },
        ),
        3 => ServerCmd::Qhold(JobId(rng.random_range(0u64..100))),
        _ => ServerCmd::Qrls(JobId(rng.random_range(0u64..100))),
    }
}

fn cmd_reply(rng: &mut StdRng) -> CmdReply {
    match rng.random_range(0u8..6) {
        0 => CmdReply::Submitted(JobId(rng.random_range(0u64..100))),
        1 => CmdReply::Deleted(JobId(rng.random_range(0u64..100))),
        2 => CmdReply::Held(JobId(rng.random_range(0u64..100))),
        3 => CmdReply::Released(JobId(rng.random_range(0u64..100))),
        4 => CmdReply::Status((0..rng.random_range(0usize..3)).map(|_| job_status(rng)).collect()),
        _ => CmdReply::Error(small_string(rng)),
    }
}

fn mom_report(rng: &mut StdRng) -> MomReport {
    if rng.random_range(0u8..2) == 0 {
        MomReport::Started { job: JobId(rng.random_range(0u64..100)) }
    } else {
        MomReport::Finished {
            job: JobId(rng.random_range(0u64..100)),
            exit: rng.random_range(-20i32..20),
        }
    }
}

fn server_snapshot(rng: &mut StdRng) -> ServerSnapshot {
    ServerSnapshot {
        jobs: (0..rng.random_range(0usize..5)).map(|_| job(rng)).collect(),
        next_id: rng.random_range(0u64..1_000_000),
        pool: node_pool(rng),
        running_since: (0..rng.random_range(0usize..4))
            .map(|_| (JobId(rng.random_range(0u64..100)), rng.random_range(0u64..u64::MAX)))
            .collect(),
    }
}

/// Random jmutex table built through its public transition API (its
/// fields are private by design).
fn jmutex_state(rng: &mut StdRng) -> JMutexState {
    let mut jm = JMutexState::new();
    for _ in 0..rng.random_range(0usize..8) {
        let job = JobId(rng.random_range(0u64..12));
        if rng.random_range(0u8..3) == 0 {
            jm.release(job);
        } else {
            jm.acquire(
                job,
                proc_id(rng),
                rng.random_range(0u64..1000),
                proc_id(rng),
                rng.random_range(0u8..2) == 0,
            );
        }
    }
    jm
}

fn replica_state(rng: &mut StdRng) -> ReplicaState {
    ReplicaState {
        pbs: server_snapshot(rng),
        jmutex: jmutex_state(rng),
        applied: (0..rng.random_range(0usize..4))
            .map(|_| (proc_id(rng), rng.random_range(0u64..100), cmd_reply(rng)))
            .collect(),
        needs_snapshot: (0..rng.random_range(0usize..3)).map(|_| proc_id(rng)).collect(),
        applied_index: rng.random_range(0u64..u64::MAX),
        hellos: (0..rng.random_range(0usize..3))
            .map(|_| {
                (proc_id(rng), rng.random_range(0u64..100), rng.random_range(0u64..u64::MAX))
            })
            .collect(),
    }
}

fn payload(rng: &mut StdRng, depth: u8) -> Payload {
    match rng.random_range(0u8..if depth == 0 { 7 } else { 8 }) {
        0 => Payload::Client {
            client: proc_id(rng),
            req_id: rng.random_range(0u64..1000),
            cmd: server_cmd(rng),
        },
        1 => Payload::Output { client: proc_id(rng), req_id: rng.random_range(0u64..1000) },
        2 => Payload::MomFinished {
            job: JobId(rng.random_range(0u64..100)),
            exit: rng.random_range(-20i32..20),
            mom: proc_id(rng),
        },
        3 => Payload::JMutexAcquire {
            job: JobId(rng.random_range(0u64..100)),
            mom: proc_id(rng),
            session: rng.random_range(0u64..1000),
            granter: proc_id(rng),
            reclaim: rng.random_range(0u8..2) == 0,
        },
        4 => Payload::JMutexRelease { job: JobId(rng.random_range(0u64..100)) },
        5 => Payload::Snapshot {
            targets: (0..rng.random_range(0usize..3)).map(|_| proc_id(rng)).collect(),
            as_of_seq: rng.random_range(0u64..1000),
            state: Box::new(replica_state(rng)),
        },
        6 => Payload::Hello {
            member: proc_id(rng),
            applied_index: rng.random_range(0u64..1000),
            fingerprint: rng.random_range(0u64..u64::MAX),
        },
        _ => Payload::CatchUp {
            targets: (0..rng.random_range(0usize..3)).map(|_| proc_id(rng)).collect(),
            as_of_seq: rng.random_range(0u64..1000),
            entries: (0..rng.random_range(0usize..3))
                .map(|_| (rng.random_range(0u64..1000), payload(rng, 0)))
                .collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Store foundation containers over arbitrary scalar contents.
    #[test]
    fn store_containers_round_trip(seed in 0u64..1_000_000) {
        let rng = &mut StdRng::seed_from_u64(seed);
        round_trips(&rng.random::<u64>())?;
        round_trips(&(rng.random::<i64>() as i32))?;
        round_trips(&small_string(rng))?;
        round_trips(&(0..rng.random_range(0usize..8))
            .map(|_| rng.random::<u64>())
            .collect::<Vec<_>>())?;
        round_trips(&(0..rng.random_range(0usize..8))
            .map(|_| (small_string(rng), rng.random::<u32>()))
            .collect::<std::collections::BTreeMap<_, _>>())?;
        round_trips(&(0..rng.random_range(0usize..8))
            .map(|_| rng.random::<u16>())
            .collect::<std::collections::BTreeSet<_>>())?;
        round_trips(&if rng.random_range(0u8..2) == 0 { None } else { Some(rng.random::<u64>()) })?;
        round_trips(&(rng.random::<u8>(), small_string(rng), rng.random::<u64>()))?;
    }

    /// PBS wire and persistence types.
    #[test]
    fn pbs_types_round_trip(seed in 0u64..1_000_000) {
        let rng = &mut StdRng::seed_from_u64(seed);
        round_trips(&JobId(rng.random::<u64>()))?;
        round_trips(&job_spec(rng))?;
        round_trips(&job_state(rng))?;
        round_trips(&job(rng))?;
        round_trips(&job_status(rng))?;
        round_trips(&node_pool(rng))?;
        round_trips(&server_cmd(rng))?;
        round_trips(&cmd_reply(rng))?;
        round_trips(&mom_report(rng))?;
        round_trips(&server_snapshot(rng))?;
    }

    /// The replicated command stream, including full snapshots and
    /// nested catch-up entries, plus the jmutex table and grants.
    #[test]
    fn payload_round_trips(seed in 0u64..1_000_000) {
        let rng = &mut StdRng::seed_from_u64(seed);
        round_trips(&Grant {
            mom: proc_id(rng),
            session: rng.random_range(0u64..1000),
            granter: proc_id(rng),
        })?;
        round_trips(&jmutex_state(rng))?;
        round_trips(&replica_state(rng))?;
        round_trips(&payload(rng, 1))?;
    }
}
