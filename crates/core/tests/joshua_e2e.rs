//! End-to-end tests of the full JOSHUA stack: measuring client → JOSHUA
//! daemons (group-ordered PBS commands) → moms with jmutex launch
//! arbitration → ordered obituaries, over the simulated Fast-Ethernet
//! testbed.

use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::workload;
use jrs_pbs::{CmdReply, JobState, ServerCmd};
use jrs_sim::{SimDuration, SimTime};

fn joshua(heads: usize) -> Cluster {
    Cluster::build(ClusterConfig::new(HaMode::Joshua { heads }))
}

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[test]
fn two_heads_submit_run_complete() {
    let mut c = joshua(2);
    c.spawn_client(workload::burst(5));
    c.run_until(secs(120));
    let records = c.take_records();
    assert_eq!(records.len(), 5, "every submission must be answered");
    for r in &records {
        assert!(matches!(r.reply, CmdReply::Submitted(_)), "{:?}", r.reply);
        assert_eq!(r.attempts, 1, "no retries needed in steady state");
    }
    // All 5 jobs ran exactly once in total, despite 2 heads dispatching.
    assert_eq!(c.total_real_runs(), 5);
    // Both replicas converged to identical PBS state.
    assert_eq!(c.assert_replicas_consistent(), 2);
    for i in 0..2 {
        assert_eq!(c.joshua(i).pbs().count_state(JobState::Complete), 5);
    }
}

#[test]
fn four_heads_exactly_once_execution() {
    let mut c = joshua(4);
    c.spawn_client(workload::burst(8));
    c.run_until(secs(200));
    let records = c.take_records();
    assert_eq!(records.len(), 8);
    assert_eq!(c.total_real_runs(), 8, "each job must execute exactly once");
    assert_eq!(c.assert_replicas_consistent(), 4);
    // jmutex saw competition: grants = jobs, denials > 0 (other heads'
    // attempts were emulated).
    let grants: u64 = (0..4).map(|i| c.joshua(i).stats().jmutex_granted).sum();
    let denials: u64 = (0..4).map(|i| c.joshua(i).stats().jmutex_denied).sum();
    assert_eq!(grants, 8);
    assert!(denials > 0, "with 4 heads some launch attempts must lose");
}

#[test]
fn mixed_commands_replicate_consistently() {
    let mut c = joshua(3);
    c.spawn_client(workload::mixed(40, 99));
    c.run_until(secs(300));
    let records = c.take_records();
    assert_eq!(records.len(), 40);
    assert_eq!(c.assert_replicas_consistent(), 3);
}

#[test]
fn head_crash_mid_burst_service_continues() {
    // The paper's headline property: continuous availability without any
    // interruption of service and without any loss of state.
    let mut c = joshua(2);
    c.spawn_client(workload::burst(20));
    // Crash head 0 (the client's preferred target AND group leader) while
    // the burst is in flight.
    c.world.schedule_at(secs(2), |_w| {});
    let node = c.head_nodes[0];
    c.world.schedule_at(secs(2), move |w| w.crash_node(node));
    c.run_until(secs(300));
    let records = c.take_records();
    assert_eq!(
        records.len(),
        20,
        "every submission must eventually be acknowledged despite the crash"
    );
    // The survivor holds all 20 jobs, each run exactly once.
    let survivor = c.joshua(1);
    assert_eq!(survivor.pbs().jobs_in_order().count(), 20);
    assert_eq!(c.total_real_runs(), 20);
    // Some client requests needed failover retries.
    assert!(records.iter().any(|r| r.attempts > 1));
}

#[test]
fn double_simultaneous_crash_with_four_heads() {
    let mut c = joshua(4);
    c.spawn_client(workload::burst(15));
    let (n0, n2) = (c.head_nodes[0], c.head_nodes[2]);
    c.world.schedule_at(secs(2), move |w| {
        w.crash_node(n0);
        w.crash_node(n2);
    });
    c.run_until(secs(300));
    let records = c.take_records();
    assert_eq!(records.len(), 15);
    assert_eq!(c.total_real_runs(), 15);
    // The two survivors agree.
    let s1 = c.joshua(1).pbs().snapshot();
    let s3 = c.joshua(3).pbs().snapshot();
    assert!(s1.consistent_with(&s3));
    assert_eq!(c.joshua(1).view().members.len(), 2);
}

#[test]
fn voluntary_leave_keeps_service_up() {
    let mut c = joshua(3);
    c.spawn_client(workload::burst(12));
    let head1 = c.heads[1];
    c.world.schedule_at(secs(1), move |w| {
        w.inject(head1, joshua_core::LeaveCmd);
    });
    c.run_until(secs(200));
    let records = c.take_records();
    assert_eq!(records.len(), 12);
    assert_eq!(c.assert_replicas_consistent(), 2);
    assert_eq!(c.joshua(0).view().members.len(), 2);
}

#[test]
fn replacement_head_joins_with_state_transfer() {
    let mut c = joshua(2);
    c.spawn_client(workload::burst(6));
    // Let the burst finish, then add a third head.
    c.run_until(secs(60));
    assert_eq!(c.take_records().len(), 6);
    let newcomer = c.add_joshua_head();
    c.run_until(secs(120));
    // The joiner is established and holds the full job history.
    let j = c
        .world
        .proc_ref::<joshua_core::JoshuaServer>(newcomer)
        .unwrap();
    assert!(j.is_established(), "joiner must finish state transfer");
    assert_eq!(j.pbs().jobs_in_order().count(), 6);
    assert_eq!(j.stats().snapshots_installed, 1);
    assert_eq!(c.assert_replicas_consistent(), 3);
    // And it participates in ordering new work.
    c.spawn_client(workload::burst(3));
    c.run_until(secs(240));
    assert_eq!(c.take_records().len(), 3);
    assert_eq!(c.joshua(0).pbs().jobs_in_order().count(), 9);
    assert_eq!(c.assert_replicas_consistent(), 3);
}

#[test]
fn crash_then_replace_then_crash_again() {
    // Sustained availability through a rolling sequence of failures and
    // replacements (the paper's replacement-of-failed-heads scenario).
    let mut c = joshua(3);
    c.spawn_client(workload::burst(30));
    let n0 = c.head_nodes[0];
    c.world.schedule_at(secs(2), move |w| w.crash_node(n0));
    c.run_until(secs(90));
    let _ = c.add_joshua_head();
    c.run_until(secs(150));
    let n1 = c.head_nodes[1];
    c.world.schedule_at(secs(151), move |w| w.crash_node(n1));
    c.run_until(secs(400));
    let records = c.take_records();
    assert_eq!(records.len(), 30, "service continuity across the whole sequence");
    assert_eq!(c.total_real_runs(), 30);
    assert!(c.assert_replicas_consistent() >= 2);
}

#[test]
fn qdel_and_qstat_through_replication() {
    let mut c = joshua(2);
    let mut script = workload::burst_with_runtime(2, SimDuration::from_secs(500));
    script.push(ServerCmd::Qdel(jrs_pbs::JobId(1)));
    script.push(ServerCmd::Qstat(None));
    c.spawn_client(script);
    c.run_until(secs(120));
    let records = c.take_records();
    assert_eq!(records.len(), 4);
    let CmdReply::Status(rows) = &records[3].reply else {
        panic!("expected status reply, got {:?}", records[3].reply);
    };
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].state, 'C', "deleted job must be complete");
    // Job 2 got the freed cluster.
    assert_eq!(rows[1].state, 'R');
    assert_eq!(c.assert_replicas_consistent(), 2);
}

#[test]
fn deterministic_runs() {
    let run = |seed: u64| {
        let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 3 });
        cfg.seed = seed;
        let mut c = Cluster::build(cfg);
        c.spawn_client(workload::burst(10));
        c.run_until(secs(120));
        let lat: Vec<u64> = c
            .take_records()
            .iter()
            .map(|r| r.latency.as_nanos())
            .collect();
        (lat, c.world.events_processed())
    };
    assert_eq!(run(7), run(7));
}
