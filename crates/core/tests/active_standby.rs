//! Focused tests of the active/standby baseline (the paper's Figure 2
//! architecture): checkpointing, failover detection, takeover, job
//! restarts and the staleness window.

use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
use joshua_core::ha::ActiveStandbyHead;
use joshua_core::workload;
use jrs_pbs::JobState;
use jrs_sim::{SimDuration, SimTime};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn standby_cluster(checkpoint_secs: u64) -> Cluster {
    let mut cfg = ClusterConfig::new(HaMode::ActiveStandby);
    cfg.standby.checkpoint_every = SimDuration::from_secs(checkpoint_secs);
    cfg.client_timeout = SimDuration::from_millis(800);
    Cluster::build(cfg)
}

#[test]
fn normal_operation_primary_serves_and_checkpoints() {
    let mut c = standby_cluster(2);
    c.spawn_client(workload::burst(6));
    c.run_until(secs(60));
    assert_eq!(c.take_records().len(), 6);
    let primary = c.world.proc_ref::<ActiveStandbyHead>(c.heads[0]).unwrap();
    let standby = c.world.proc_ref::<ActiveStandbyHead>(c.heads[1]).unwrap();
    assert!(primary.is_active());
    assert!(!standby.is_active());
    assert!(primary.checkpoints > 1, "periodic checkpoints must flow");
    assert!(standby.checkpoints > 1);
    // The standby's mirrored state trails the primary but holds the jobs.
    assert_eq!(standby.core().jobs_in_order().count(), 6);
}

#[test]
fn failover_restores_service_and_restarts_running_jobs() {
    let mut c = standby_cluster(2);
    c.spawn_client(workload::burst_with_runtime(8, SimDuration::from_secs(30)));
    let n0 = c.head_nodes[0];
    // Crash after a checkpoint has captured job 1 in its Running state
    // (checkpoints flow every 2 s; the burst finishes within ~0.8 s).
    c.world.schedule_at(secs(3), move |w| w.crash_node(n0));
    c.run_until(secs(600));
    let records = c.take_records();
    assert_eq!(records.len(), 8, "standby must pick the service back up");
    let standby = c.world.proc_ref::<ActiveStandbyHead>(c.heads[1]).unwrap();
    assert!(standby.is_active(), "standby must have taken over");
    assert!(
        standby.restarted_jobs >= 1,
        "the running job at crash time must restart (warm standby)"
    );
    // Everything eventually completes on the new primary.
    assert_eq!(standby.core().count_state(JobState::Complete), 8);
}

#[test]
fn stale_checkpoint_loses_recent_submissions() {
    // With a long checkpoint interval the failover rolls back to an old
    // backup — the paper's core criticism of the active/standby model.
    let mut c = standby_cluster(60); // only the initial checkpoint
    c.spawn_client(workload::burst_with_runtime(10, SimDuration::from_secs(5)));
    let n0 = c.head_nodes[0];
    c.world.schedule_at(secs(2), move |w| w.crash_node(n0));
    c.run_until(secs(600));
    let standby = c.world.proc_ref::<ActiveStandbyHead>(c.heads[1]).unwrap();
    assert!(standby.is_active());
    // Jobs acknowledged by the primary after its last checkpoint are gone
    // from the standby's world...
    let known = standby.core().jobs_in_order().count();
    assert!(known < 10, "rollback must lose post-checkpoint submissions, knows {known}");
    // ...yet the client was told they were submitted: acknowledged-but-
    // lost work, which symmetric active/active can never produce.
    let acked = c.take_records().len();
    assert!(acked > known, "acked {acked} vs surviving {known}");
}

#[test]
fn joshua_has_no_staleness_window_under_same_fault() {
    // Control experiment for the test above: identical fault, JOSHUA mode.
    let mut cfg = ClusterConfig::new(HaMode::Joshua { heads: 2 });
    cfg.client_timeout = SimDuration::from_millis(800);
    let mut c = Cluster::build(cfg);
    c.spawn_client(workload::burst_with_runtime(10, SimDuration::from_secs(5)));
    let n0 = c.head_nodes[0];
    c.world.schedule_at(secs(2), move |w| w.crash_node(n0));
    c.run_until(secs(600));
    assert_eq!(c.take_records().len(), 10);
    let survivor = c.joshua(1);
    assert_eq!(survivor.pbs().jobs_in_order().count(), 10, "no acknowledged job lost");
    assert_eq!(survivor.pbs().count_state(JobState::Complete), 10);
}
