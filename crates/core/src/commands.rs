//! The JOSHUA control commands, by their paper names.
//!
//! The paper's `jsub`, `jdel` and `jstat` "reflect PBS compliant behavior
//! to the user" and "may even replace the original PBS commands in the
//! user context using a shell alias (e.g. `alias qsub=jsub`)". In this
//! library the equivalence is literal: a JOSHUA control command *is* the
//! PBS command, routed to the head-node group instead of a single server.
//! These constructors exist so user code reads like the paper.
//!
//! `jsig` (signal a running job) is deliberately absent, as in the paper:
//! signalling does not change the job/resource management state, so the
//! original PBS command may be executed out-of-band.

use jrs_pbs::{JobId, JobSpec, ServerCmd};

/// `jsub` — submit a job (qsub equivalent).
pub fn jsub(spec: JobSpec) -> ServerCmd {
    ServerCmd::Qsub(spec)
}

/// `jdel` — delete a job (qdel equivalent).
pub fn jdel(job: JobId) -> ServerCmd {
    ServerCmd::Qdel(job)
}

/// `jstat` — query all jobs (qstat equivalent).
pub fn jstat() -> ServerCmd {
    ServerCmd::Qstat(None)
}

/// `jstat` for a single job.
pub fn jstat_job(job: JobId) -> ServerCmd {
    ServerCmd::Qstat(Some(job))
}

/// `jhold` — hold a queued job (qhold equivalent). The paper's prototype
/// could not support this on joining replicas; this reproduction can (see
/// DESIGN.md §6).
pub fn jhold(job: JobId) -> ServerCmd {
    ServerCmd::Qhold(job)
}

/// `jrls` — release a held job (qrls equivalent).
pub fn jrls(job: JobId) -> ServerCmd {
    ServerCmd::Qrls(job)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_commands_are_pbs_commands() {
        assert_eq!(jsub(JobSpec::trivial("x")), ServerCmd::Qsub(JobSpec::trivial("x")));
        assert_eq!(jdel(JobId(3)), ServerCmd::Qdel(JobId(3)));
        assert_eq!(jstat(), ServerCmd::Qstat(None));
        assert_eq!(jstat_job(JobId(9)), ServerCmd::Qstat(Some(JobId(9))));
        assert_eq!(jhold(JobId(1)), ServerCmd::Qhold(JobId(1)));
        assert_eq!(jrls(JobId(1)), ServerCmd::Qrls(JobId(1)));
    }
}
