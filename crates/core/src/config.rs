//! JOSHUA head-node configuration and cost model.

use jrs_gcs::GroupConfig;
use jrs_pbs::proc::PbsCostModel;
use jrs_pbs::sched::{Backfill, FifoExclusive, FifoShared, Policy};
use jrs_sim::{ProcId, SimDuration};

/// Scheduling policy selector (replicable, unlike a boxed trait object).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's Maui configuration: FIFO, exclusive cluster access.
    FifoExclusive,
    /// Space-shared FIFO (deterministic, replication-safe).
    FifoShared,
    /// Conservative backfill (time-dependent: single-head only; see
    /// DESIGN.md).
    Backfill,
}

impl PolicyKind {
    /// Instantiate the policy.
    pub fn make(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::FifoExclusive => Box::new(FifoExclusive),
            PolicyKind::FifoShared => Box::new(FifoShared),
            PolicyKind::Backfill => Box::new(Backfill),
        }
    }
}

/// CPU cost model of the JOSHUA layer, standing in for the paper's
/// measured overheads (jsub/joshua interception, Transis daemon
/// processing). Calibrated against Figure 10 — see EXPERIMENTS.md.
#[derive(Clone, Copy, Debug)]
pub struct JoshuaCostModel {
    /// PBS server costs (shared with the baseline).
    pub pbs: PbsCostModel,
    /// Per-frame CPU cost of the group communication daemon (Transis-era
    /// user-space processing on a 450 MHz PII); applied serially to each
    /// outgoing protocol frame (ordering traffic, flush traffic).
    pub gcs_frame_delay: SimDuration,
    /// Cost of producing a stability acknowledgement (Transis's
    /// timer-batched acknowledgement path — noticeably slower than the
    /// data fast path).
    pub gcs_ack_delay: SimDuration,
    /// Cost of background datagrams (heartbeats) and bare link-layer acks.
    pub gcs_background_delay: SimDuration,
    /// Fixed cost of intercepting a client command (jsub → joshua local
    /// round) and of relaying the output back.
    pub intercept_overhead: SimDuration,
}

impl Default for JoshuaCostModel {
    fn default() -> Self {
        JoshuaCostModel {
            pbs: PbsCostModel::default(),
            gcs_frame_delay: SimDuration::from_millis(9),
            gcs_ack_delay: SimDuration::from_millis(30),
            gcs_background_delay: SimDuration::from_micros(500),
            intercept_overhead: SimDuration::from_millis(18),
        }
    }
}

/// Full configuration of one JOSHUA head-node daemon.
#[derive(Clone, Debug)]
pub struct JoshuaConfig {
    /// Compute nodes and their mom daemon processes.
    pub nodes: Vec<(String, ProcId)>,
    /// Scheduling policy (must be identical on every head).
    pub policy: PolicyKind,
    /// Group communication tunables.
    pub group: GroupConfig,
    /// Cost model.
    pub cost: JoshuaCostModel,
}
