//! JOSHUA head-node configuration and cost model.

use jrs_gcs::GroupConfig;
use jrs_pbs::proc::PbsCostModel;
use jrs_pbs::sched::{Backfill, FifoExclusive, FifoShared, Policy};
use jrs_sim::{ProcId, SimDuration};

/// Scheduling policy selector (replicable, unlike a boxed trait object).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's Maui configuration: FIFO, exclusive cluster access.
    FifoExclusive,
    /// Space-shared FIFO (deterministic, replication-safe).
    FifoShared,
    /// Conservative backfill (time-dependent: single-head only; see
    /// DESIGN.md).
    Backfill,
}

impl PolicyKind {
    /// Instantiate the policy.
    pub fn make(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::FifoExclusive => Box::new(FifoExclusive),
            PolicyKind::FifoShared => Box::new(FifoShared),
            PolicyKind::Backfill => Box::new(Backfill),
        }
    }
}

/// CPU cost model of the JOSHUA layer, standing in for the paper's
/// measured overheads (jsub/joshua interception, Transis daemon
/// processing). Calibrated against Figure 10 — see EXPERIMENTS.md.
#[derive(Clone, Copy, Debug)]
pub struct JoshuaCostModel {
    /// PBS server costs (shared with the baseline).
    pub pbs: PbsCostModel,
    /// Per-frame CPU cost of the group communication daemon (Transis-era
    /// user-space processing on a 450 MHz PII); applied serially to each
    /// outgoing protocol frame (ordering traffic, flush traffic).
    pub gcs_frame_delay: SimDuration,
    /// Cost of producing a stability acknowledgement (Transis's
    /// timer-batched acknowledgement path — noticeably slower than the
    /// data fast path).
    pub gcs_ack_delay: SimDuration,
    /// Cost of background datagrams (heartbeats) and bare link-layer acks.
    pub gcs_background_delay: SimDuration,
    /// Fixed cost of intercepting a client command (jsub → joshua local
    /// round) and of relaying the output back.
    pub intercept_overhead: SimDuration,
}

impl Default for JoshuaCostModel {
    fn default() -> Self {
        JoshuaCostModel {
            pbs: PbsCostModel::default(),
            gcs_frame_delay: SimDuration::from_millis(9),
            gcs_ack_delay: SimDuration::from_millis(30),
            gcs_background_delay: SimDuration::from_micros(500),
            intercept_overhead: SimDuration::from_millis(18),
        }
    }
}

/// Durability tunables: write-ahead logging of applied commands plus
/// periodic full-state snapshots on the head's local (simulated) disk.
/// Disabled by default — diskless JOSHUA, the paper's configuration;
/// recovery then relies purely on in-memory state transfer from peers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PersistConfig {
    /// Log + snapshot every applied command; enables crash-restart
    /// recovery from local state.
    pub enabled: bool,
    /// Write a full snapshot every this many applied commands (the WAL
    /// keeps full history; snapshots only bound replay time).
    pub snapshot_every: u64,
    /// How many recent commands each head keeps in memory for delta
    /// donation to recovered joiners; gaps larger than this fall back to
    /// a full snapshot.
    pub ring_capacity: usize,
}

impl PersistConfig {
    /// Durability on, with defaults sized for the paper's testbed scale.
    pub fn durable() -> Self {
        PersistConfig { enabled: true, snapshot_every: 32, ring_capacity: 256 }
    }
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig { enabled: false, snapshot_every: 32, ring_capacity: 256 }
    }
}

/// Full configuration of one JOSHUA head-node daemon.
#[derive(Clone, Debug)]
pub struct JoshuaConfig {
    /// Compute nodes and their mom daemon processes.
    pub nodes: Vec<(String, ProcId)>,
    /// Scheduling policy (must be identical on every head).
    pub policy: PolicyKind,
    /// Group communication tunables.
    pub group: GroupConfig,
    /// Cost model.
    pub cost: JoshuaCostModel,
    /// Durability (WAL + snapshots on the head's local disk).
    pub persist: PersistConfig,
}
