//! The replicated command stream: everything JOSHUA pushes through the
//! group communication system, and the jmutex (distributed launch mutual
//! exclusion) state machine.

use jrs_pbs::server::ServerSnapshot;
use jrs_pbs::{CmdReply, JobId, ServerCmd};
use jrs_sim::ProcId;
use std::collections::{BTreeMap, BTreeSet};

/// Everything ordered through the group. Every replica applies these in
/// the same total order, which — the PBS server being deterministic — is
/// exactly what keeps all head nodes in the same state.
#[derive(Clone, Debug, Hash)]
pub enum Payload {
    /// An intercepted PBS user command (jsub/jdel/jstat/jhold/jrls).
    Client {
        /// Requesting client process.
        client: ProcId,
        /// Client-unique request id (duplicate suppression across client
        /// retries / head failover).
        req_id: u64,
        /// The PBS command.
        cmd: ServerCmd,
    },
    /// Agreed output release for a previously applied command: the current
    /// responder sends the cached reply to the client. Ordering output
    /// through the group is the paper's "distributed mutual exclusion to
    /// ensure that output is delivered only once".
    Output {
        /// The client to answer.
        client: ProcId,
        /// Which request's cached reply to release.
        req_id: u64,
    },
    /// A job-completion obituary lifted into the total order, so replicas
    /// (and future joiners, via snapshot + replay) converge on job state.
    MomFinished {
        /// The finished job.
        job: JobId,
        /// Exit status.
        exit: i32,
        /// Reporting mom (diagnostic).
        mom: ProcId,
    },
    /// jmutex acquire: a launch session on a mom asks for the job's launch
    /// mutex through its head's JOSHUA daemon. The first acquire delivered
    /// for a job wins.
    JMutexAcquire {
        /// The job.
        job: JobId,
        /// The requesting mom.
        mom: ProcId,
        /// The launch session on the mom.
        session: u64,
        /// The JOSHUA daemon that forwarded this request (it sends the
        /// verdict back to the mom).
        granter: ProcId,
    },
    /// jdone: release the launch mutex after completion.
    JMutexRelease {
        /// The job.
        job: JobId,
    },
    /// State transfer to joining head nodes, ordered in-stream so the
    /// joiner can replay subsequent commands exactly.
    Snapshot {
        /// The joiners this snapshot is for.
        targets: Vec<ProcId>,
        /// The donor had applied ordered messages up to this sequence
        /// number when it created the state; targets replay only
        /// payloads with larger sequence numbers.
        as_of_seq: u64,
        /// The full replica state.
        state: Box<ReplicaState>,
    },
}

impl Payload {
    /// Approximate wire size for the network model.
    pub fn wire_size(&self) -> u32 {
        match self {
            Payload::Client { .. } => 256,
            Payload::Output { .. } => 64,
            Payload::MomFinished { .. } => 96,
            Payload::JMutexAcquire { .. } => 96,
            Payload::JMutexRelease { .. } => 64,
            Payload::Snapshot { state, .. } => {
                // Saturating length conversion: a lossy `as` cast would
                // wrap on pathological job counts (D005).
                512 + u32::try_from(state.pbs.jobs.len()).unwrap_or(u32::MAX) * 160
            }
        }
    }
}

/// Complete replicated state of one JOSHUA head, shipped to joiners.
#[derive(Clone, Debug, Hash)]
pub struct ReplicaState {
    /// PBS server state.
    pub pbs: ServerSnapshot,
    /// Launch mutex table.
    pub jmutex: JMutexState,
    /// Client duplicate-suppression floors and cached replies.
    pub applied: Vec<(ProcId, u64, CmdReply)>,
    /// Joiners still awaiting a snapshot (replicated bookkeeping so any
    /// donor death leads to re-donation at the next view change).
    pub needs_snapshot: Vec<ProcId>,
}

/// The jmutex table: which job launches have been granted and released.
/// Lives in replicated state; decisions happen at delivery time, so all
/// replicas agree on the single winner per job.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct JMutexState {
    granted: BTreeMap<JobId, Grant>,
    released: BTreeSet<JobId>,
}

/// A granted launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Grant {
    /// The mom that holds the launch right.
    pub mom: ProcId,
    /// The winning session on that mom.
    pub session: u64,
    /// The daemon that forwarded the winning request.
    pub granter: ProcId,
}

/// Outcome of an acquire delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JMutexOutcome {
    /// This acquire won: its session really launches the job.
    Granted,
    /// Another session already holds (or held) the mutex: emulate.
    Denied,
}

impl JMutexState {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process one delivered acquire. Deterministic: first delivered
    /// acquire for a job wins; later ones (and any after release) lose.
    pub fn acquire(&mut self, job: JobId, mom: ProcId, session: u64, granter: ProcId) -> JMutexOutcome {
        if self.released.contains(&job) || self.granted.contains_key(&job) {
            return JMutexOutcome::Denied;
        }
        self.granted.insert(job, Grant { mom, session, granter });
        JMutexOutcome::Granted
    }

    /// Process a delivered release (jdone).
    pub fn release(&mut self, job: JobId) {
        self.granted.remove(&job);
        self.released.insert(job);
    }

    /// Current grant holder, if any.
    pub fn holder(&self, job: JobId) -> Option<Grant> {
        self.granted.get(&job).copied()
    }

    /// Has the job's mutex been released (job completed)?
    pub fn is_released(&self, job: JobId) -> bool {
        self.released.contains(&job)
    }

    /// Number of currently granted (outstanding) launches.
    pub fn outstanding(&self) -> usize {
        self.granted.len()
    }

    /// Iterate over outstanding grants (for verdict redelivery after the
    /// granter died).
    pub fn grants(&self) -> impl Iterator<Item = (JobId, Grant)> + '_ {
        self.granted.iter().map(|(j, g)| (*j, *g))
    }

    /// Deterministic fingerprint of the mutex table (replica-convergence
    /// checks and model-checker state deduplication).
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        jrs_sim::fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MOM: ProcId = ProcId(50);
    const G1: ProcId = ProcId(1);
    const G2: ProcId = ProcId(2);

    #[test]
    fn first_acquire_wins_rest_denied() {
        let mut t = JMutexState::new();
        assert_eq!(t.acquire(JobId(1), MOM, 10, G1), JMutexOutcome::Granted);
        assert_eq!(t.acquire(JobId(1), MOM, 11, G2), JMutexOutcome::Denied);
        assert_eq!(t.acquire(JobId(1), MOM, 12, G1), JMutexOutcome::Denied);
        let g = t.holder(JobId(1)).unwrap();
        assert_eq!(g.session, 10);
        assert_eq!(g.granter, G1);
        assert_eq!(t.outstanding(), 1);
    }

    #[test]
    fn independent_jobs_do_not_interfere() {
        let mut t = JMutexState::new();
        assert_eq!(t.acquire(JobId(1), MOM, 1, G1), JMutexOutcome::Granted);
        assert_eq!(t.acquire(JobId(2), MOM, 2, G2), JMutexOutcome::Granted);
        assert_eq!(t.outstanding(), 2);
    }

    #[test]
    fn release_prevents_regrant() {
        let mut t = JMutexState::new();
        let _ = t.acquire(JobId(1), MOM, 1, G1);
        t.release(JobId(1));
        assert!(t.is_released(JobId(1)));
        assert_eq!(t.holder(JobId(1)), None);
        // A straggler acquire after release must not launch again.
        assert_eq!(t.acquire(JobId(1), MOM, 9, G2), JMutexOutcome::Denied);
    }

    #[test]
    fn replicated_determinism() {
        // Two replicas processing the same delivery order agree.
        let ops = [
            (JobId(1), 10u64, G1),
            (JobId(2), 11, G2),
            (JobId(1), 12, G2),
            (JobId(2), 13, G1),
        ];
        let mut a = JMutexState::new();
        let mut b = JMutexState::new();
        for (job, session, granter) in ops {
            let ra = a.acquire(job, MOM, session, granter);
            let rb = b.acquire(job, MOM, session, granter);
            assert_eq!(ra, rb);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn payload_wire_sizes() {
        let p = Payload::Output { client: ProcId(1), req_id: 1 };
        assert!(p.wire_size() < 128);
        let snap = Payload::Snapshot {
            targets: vec![ProcId(9)],
            as_of_seq: 0,
            state: Box::new(ReplicaState {
                pbs: ServerSnapshot {
                    jobs: vec![],
                    next_id: 1,
                    pool: Default::default(),
                    running_since: vec![],
                },
                jmutex: JMutexState::new(),
                applied: vec![],
                needs_snapshot: vec![],
            }),
        };
        assert!(snap.wire_size() >= 512);
    }
}
