//! The replicated command stream: everything JOSHUA pushes through the
//! group communication system, and the jmutex (distributed launch mutual
//! exclusion) state machine.

use jrs_pbs::server::ServerSnapshot;
use jrs_pbs::{CmdReply, JobId, ServerCmd};
use jrs_sim::ProcId;
use jrs_store::{Codec, DecodeError, Reader};
use std::collections::{BTreeMap, BTreeSet};

/// Everything ordered through the group. Every replica applies these in
/// the same total order, which — the PBS server being deterministic — is
/// exactly what keeps all head nodes in the same state.
#[derive(Clone, Debug, Hash)]
pub enum Payload {
    /// An intercepted PBS user command (jsub/jdel/jstat/jhold/jrls).
    Client {
        /// Requesting client process.
        client: ProcId,
        /// Client-unique request id (duplicate suppression across client
        /// retries / head failover).
        req_id: u64,
        /// The PBS command.
        cmd: ServerCmd,
    },
    /// Agreed output release for a previously applied command: the current
    /// responder sends the cached reply to the client. Ordering output
    /// through the group is the paper's "distributed mutual exclusion to
    /// ensure that output is delivered only once".
    Output {
        /// The client to answer.
        client: ProcId,
        /// Which request's cached reply to release.
        req_id: u64,
    },
    /// A job-completion obituary lifted into the total order, so replicas
    /// (and future joiners, via snapshot + replay) converge on job state.
    MomFinished {
        /// The finished job.
        job: JobId,
        /// Exit status.
        exit: i32,
        /// Reporting mom (diagnostic).
        mom: ProcId,
    },
    /// jmutex acquire: a launch session on a mom asks for the job's launch
    /// mutex through its head's JOSHUA daemon. The first acquire delivered
    /// for a job wins.
    JMutexAcquire {
        /// The job.
        job: JobId,
        /// The requesting mom.
        mom: ProcId,
        /// The launch session on the mom.
        session: u64,
        /// The JOSHUA daemon that forwarded this request (it sends the
        /// verdict back to the mom).
        granter: ProcId,
        /// Reclaim after a mom reboot: every session the mom knows was
        /// denied and nothing runs locally, so a standing same-mom grant
        /// is re-won with this fresh session.
        reclaim: bool,
    },
    /// jdone: release the launch mutex after completion.
    JMutexRelease {
        /// The job.
        job: JobId,
    },
    /// State transfer to joining head nodes, ordered in-stream so the
    /// joiner can replay subsequent commands exactly.
    Snapshot {
        /// The joiners this snapshot is for.
        targets: Vec<ProcId>,
        /// The donor had applied ordered messages up to this sequence
        /// number when it created the state; targets replay only
        /// payloads with larger sequence numbers.
        as_of_seq: u64,
        /// The full replica state.
        state: Box<ReplicaState>,
    },
    /// A (re)joining head announces how much replicated state it already
    /// holds — recovered from its local WAL + snapshot — so the donor can
    /// ship only the delta it missed instead of a full snapshot. A fresh
    /// joiner sends `applied_index == 0`. After a total-cluster blackout
    /// every cold-restarted head sends one, and the group reconciles on
    /// the most advanced recovered state.
    Hello {
        /// The announcing head.
        member: ProcId,
        /// Commands applied (and persisted) before the announcement.
        applied_index: u64,
        /// Fingerprint of the recovered replicated state (cold-restart
        /// agreement check: equal indices must mean equal fingerprints).
        fingerprint: u64,
    },
    /// Delta state transfer: the commands a recovered joiner missed,
    /// keyed by the donor's applied-command index. The cheap counterpart
    /// of [`Payload::Snapshot`], used when the donor's recent-command
    /// ring still covers the joiner's gap.
    CatchUp {
        /// The recovered heads this delta is for.
        targets: Vec<ProcId>,
        /// Targets replay buffered ordered payloads with sequence numbers
        /// strictly greater than this (0 = replay the whole buffer).
        as_of_seq: u64,
        /// Missed commands `(applied_index, payload)`, contiguous and
        /// ascending; targets apply only indices above their own.
        entries: Vec<(u64, Payload)>,
    },
}

impl Payload {
    /// Approximate wire size for the network model.
    pub fn wire_size(&self) -> u32 {
        match self {
            Payload::Client { .. } => 256,
            Payload::Output { .. } => 64,
            Payload::MomFinished { .. } => 96,
            Payload::JMutexAcquire { .. } => 96,
            Payload::JMutexRelease { .. } => 64,
            Payload::Snapshot { state, .. } => {
                // Saturating length conversion: a lossy `as` cast would
                // wrap on pathological job counts (D005).
                512 + u32::try_from(state.pbs.jobs.len()).unwrap_or(u32::MAX) * 160
            }
            Payload::Hello { .. } => 64,
            Payload::CatchUp { entries, .. } => {
                128u32.saturating_add(
                    u32::try_from(entries.len()).unwrap_or(u32::MAX).saturating_mul(256),
                )
            }
        }
    }
}

/// Complete replicated state of one JOSHUA head, shipped to joiners.
#[derive(Clone, Debug, Hash)]
pub struct ReplicaState {
    /// PBS server state.
    pub pbs: ServerSnapshot,
    /// Launch mutex table.
    pub jmutex: JMutexState,
    /// Client duplicate-suppression floors and cached replies.
    pub applied: Vec<(ProcId, u64, CmdReply)>,
    /// Joiners still awaiting a snapshot (replicated bookkeeping so any
    /// donor death leads to re-donation at the next view change).
    pub needs_snapshot: Vec<ProcId>,
    /// Commands applied since genesis (monotonic across restarts, unlike
    /// the per-incarnation group sequence numbers) — the key space of the
    /// write-ahead log.
    pub applied_index: u64,
    /// Recovery announcements seen and not yet resolved:
    /// `(member, applied_index, fingerprint)` (replicated bookkeeping so
    /// a new donor can re-donate after the original died).
    pub hellos: Vec<(ProcId, u64, u64)>,
}

/// The jmutex table: which job launches have been granted and released.
/// Lives in replicated state; decisions happen at delivery time, so all
/// replicas agree on the single winner per job.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct JMutexState {
    granted: BTreeMap<JobId, Grant>,
    released: BTreeSet<JobId>,
}

/// A granted launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Grant {
    /// The mom that holds the launch right.
    pub mom: ProcId,
    /// The winning session on that mom.
    pub session: u64,
    /// The daemon that forwarded the winning request.
    pub granter: ProcId,
}

/// Outcome of an acquire delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JMutexOutcome {
    /// This acquire won: its session really launches the job.
    Granted,
    /// Another session already holds (or held) the mutex: emulate.
    Denied,
}

impl JMutexState {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process one delivered acquire. Deterministic: first delivered
    /// acquire for a job wins; later ones (and any after release) lose.
    ///
    /// Idempotent for the winner: a re-acquire naming the same mom and
    /// session as the standing grant is granted again (covers a verdict
    /// lost when heads crashed — after a restart the heads re-dispatch
    /// and the mom re-asks through its original session; the grant
    /// replayed from the WAL must not deny it).
    ///
    /// A `reclaim` acquire additionally wins with a *fresh* session, as
    /// long as it comes from the grant-holding mom: the mom asserts that
    /// every session it knows for this job was denied and nothing runs
    /// locally — the reboot signature (launch competition is same-mom
    /// only), so the standing grant belongs to a launch that died with
    /// the mom's previous life. The grant adopts the new session so the
    /// verdict reaches the live prologue.
    pub fn acquire(
        &mut self,
        job: JobId,
        mom: ProcId,
        session: u64,
        granter: ProcId,
        reclaim: bool,
    ) -> JMutexOutcome {
        if self.released.contains(&job) {
            return JMutexOutcome::Denied;
        }
        if let Some(g) = self.granted.get_mut(&job) {
            return if g.mom == mom && (g.session == session || reclaim) {
                g.session = session;
                JMutexOutcome::Granted
            } else {
                JMutexOutcome::Denied
            };
        }
        self.granted.insert(job, Grant { mom, session, granter });
        JMutexOutcome::Granted
    }

    /// Process a delivered release (jdone).
    pub fn release(&mut self, job: JobId) {
        self.granted.remove(&job);
        self.released.insert(job);
    }

    /// Current grant holder, if any.
    pub fn holder(&self, job: JobId) -> Option<Grant> {
        self.granted.get(&job).copied()
    }

    /// Has the job's mutex been released (job completed)?
    pub fn is_released(&self, job: JobId) -> bool {
        self.released.contains(&job)
    }

    /// Number of currently granted (outstanding) launches.
    pub fn outstanding(&self) -> usize {
        self.granted.len()
    }

    /// Iterate over outstanding grants (for verdict redelivery after the
    /// granter died).
    pub fn grants(&self) -> impl Iterator<Item = (JobId, Grant)> + '_ {
        self.granted.iter().map(|(j, g)| (*j, *g))
    }

    /// Deterministic fingerprint of the mutex table (replica-convergence
    /// checks and model-checker state deduplication).
    #[must_use]
    pub fn state_hash(&self) -> u64 {
        jrs_sim::fingerprint(self)
    }
}

// ----------------------------------------------------------------------
// Durable encoding (WAL records and snapshot files)
// ----------------------------------------------------------------------

impl Codec for Grant {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mom.encode(out);
        self.session.encode(out);
        self.granter.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Grant {
            mom: ProcId::decode(r)?,
            session: u64::decode(r)?,
            granter: ProcId::decode(r)?,
        })
    }
}

impl Codec for JMutexState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.granted.encode(out);
        self.released.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(JMutexState { granted: Codec::decode(r)?, released: Codec::decode(r)? })
    }
}

impl Codec for ReplicaState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pbs.encode(out);
        self.jmutex.encode(out);
        self.applied.encode(out);
        self.needs_snapshot.encode(out);
        self.applied_index.encode(out);
        self.hellos.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ReplicaState {
            pbs: Codec::decode(r)?,
            jmutex: JMutexState::decode(r)?,
            applied: Codec::decode(r)?,
            needs_snapshot: Codec::decode(r)?,
            applied_index: u64::decode(r)?,
            hellos: Codec::decode(r)?,
        })
    }
}

impl Codec for Payload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Client { client, req_id, cmd } => {
                0u8.encode(out);
                client.encode(out);
                req_id.encode(out);
                cmd.encode(out);
            }
            Payload::Output { client, req_id } => {
                1u8.encode(out);
                client.encode(out);
                req_id.encode(out);
            }
            Payload::MomFinished { job, exit, mom } => {
                2u8.encode(out);
                job.encode(out);
                exit.encode(out);
                mom.encode(out);
            }
            Payload::JMutexAcquire { job, mom, session, granter, reclaim } => {
                3u8.encode(out);
                job.encode(out);
                mom.encode(out);
                session.encode(out);
                granter.encode(out);
                reclaim.encode(out);
            }
            Payload::JMutexRelease { job } => {
                4u8.encode(out);
                job.encode(out);
            }
            Payload::Snapshot { targets, as_of_seq, state } => {
                5u8.encode(out);
                targets.encode(out);
                as_of_seq.encode(out);
                state.as_ref().encode(out);
            }
            Payload::Hello { member, applied_index, fingerprint } => {
                6u8.encode(out);
                member.encode(out);
                applied_index.encode(out);
                fingerprint.encode(out);
            }
            Payload::CatchUp { targets, as_of_seq, entries } => {
                7u8.encode(out);
                targets.encode(out);
                as_of_seq.encode(out);
                entries.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Payload::Client {
                client: ProcId::decode(r)?,
                req_id: u64::decode(r)?,
                cmd: Codec::decode(r)?,
            }),
            1 => Ok(Payload::Output {
                client: ProcId::decode(r)?,
                req_id: u64::decode(r)?,
            }),
            2 => Ok(Payload::MomFinished {
                job: Codec::decode(r)?,
                exit: i32::decode(r)?,
                mom: ProcId::decode(r)?,
            }),
            3 => Ok(Payload::JMutexAcquire {
                job: Codec::decode(r)?,
                mom: ProcId::decode(r)?,
                session: u64::decode(r)?,
                granter: ProcId::decode(r)?,
                reclaim: bool::decode(r)?,
            }),
            4 => Ok(Payload::JMutexRelease { job: Codec::decode(r)? }),
            5 => Ok(Payload::Snapshot {
                targets: Codec::decode(r)?,
                as_of_seq: u64::decode(r)?,
                state: Box::new(ReplicaState::decode(r)?),
            }),
            6 => Ok(Payload::Hello {
                member: ProcId::decode(r)?,
                applied_index: u64::decode(r)?,
                fingerprint: u64::decode(r)?,
            }),
            7 => Ok(Payload::CatchUp {
                targets: Codec::decode(r)?,
                as_of_seq: u64::decode(r)?,
                entries: Codec::decode(r)?,
            }),
            _ => Err(DecodeError::Invalid("Payload tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MOM: ProcId = ProcId(50);
    const MOM2: ProcId = ProcId(51);
    const G1: ProcId = ProcId(1);
    const G2: ProcId = ProcId(2);

    #[test]
    fn first_acquire_wins_rest_denied() {
        let mut t = JMutexState::new();
        assert_eq!(t.acquire(JobId(1), MOM, 10, G1, false), JMutexOutcome::Granted);
        // Competing sessions (same mom, other heads' ballots) lose.
        assert_eq!(t.acquire(JobId(1), MOM, 11, G2, false), JMutexOutcome::Denied);
        assert_eq!(t.acquire(JobId(1), MOM, 12, G1, false), JMutexOutcome::Denied);
        let g = t.holder(JobId(1)).unwrap();
        assert_eq!(g.session, 10);
        assert_eq!(g.granter, G1);
        assert_eq!(t.outstanding(), 1);
    }

    #[test]
    fn independent_jobs_do_not_interfere() {
        let mut t = JMutexState::new();
        assert_eq!(t.acquire(JobId(1), MOM, 1, G1, false), JMutexOutcome::Granted);
        assert_eq!(t.acquire(JobId(2), MOM, 2, G2, false), JMutexOutcome::Granted);
        assert_eq!(t.outstanding(), 2);
    }

    #[test]
    fn release_prevents_regrant() {
        let mut t = JMutexState::new();
        let _ = t.acquire(JobId(1), MOM, 1, G1, false);
        t.release(JobId(1));
        assert!(t.is_released(JobId(1)));
        assert_eq!(t.holder(JobId(1)), None);
        // A straggler acquire after release must not launch again.
        assert_eq!(t.acquire(JobId(1), MOM, 9, G2, true), JMutexOutcome::Denied);
    }

    #[test]
    fn replicated_determinism() {
        // Two replicas processing the same delivery order agree.
        let ops = [
            (JobId(1), 10u64, G1),
            (JobId(2), 11, G2),
            (JobId(1), 12, G2),
            (JobId(2), 13, G1),
        ];
        let mut a = JMutexState::new();
        let mut b = JMutexState::new();
        for (job, session, granter) in ops {
            let ra = a.acquire(job, MOM, session, granter, false);
            let rb = b.acquire(job, MOM, session, granter, false);
            assert_eq!(ra, rb);
        }
        assert_eq!(a, b);
    }

    fn empty_state() -> ReplicaState {
        ReplicaState {
            pbs: ServerSnapshot {
                jobs: vec![],
                next_id: 1,
                pool: Default::default(),
                running_since: vec![],
            },
            jmutex: JMutexState::new(),
            applied: vec![],
            needs_snapshot: vec![],
            applied_index: 0,
            hellos: vec![],
        }
    }

    #[test]
    fn payload_wire_sizes() {
        let p = Payload::Output { client: ProcId(1), req_id: 1 };
        assert!(p.wire_size() < 128);
        let snap = Payload::Snapshot {
            targets: vec![ProcId(9)],
            as_of_seq: 0,
            state: Box::new(empty_state()),
        };
        assert!(snap.wire_size() >= 512);
        let hello = Payload::Hello { member: ProcId(1), applied_index: 7, fingerprint: 9 };
        assert!(hello.wire_size() < 128);
    }

    #[test]
    fn regrant_and_reclaim_semantics() {
        let mut t = JMutexState::new();
        assert_eq!(t.acquire(JobId(1), MOM, 10, G1, false), JMutexOutcome::Granted);
        // Replayed acquire after a blackout: same mom + session wins again
        // (the verdict was lost with the heads; the mom still waits).
        assert_eq!(t.acquire(JobId(1), MOM, 10, G2, false), JMutexOutcome::Granted);
        // A plain fresh session still loses (steady-state competition).
        assert_eq!(t.acquire(JobId(1), MOM, 11, G2, false), JMutexOutcome::Denied);
        // The mom itself was rebooted: its reclaim re-wins with a fresh
        // session and the grant adopts it (the old launch died with it).
        assert_eq!(t.acquire(JobId(1), MOM, 12, G2, true), JMutexOutcome::Granted);
        assert_eq!(t.holder(JobId(1)).unwrap().session, 12);
        // A reclaim from another mom is still denied.
        assert_eq!(t.acquire(JobId(1), MOM2, 13, G2, true), JMutexOutcome::Denied);
        assert_eq!(t.outstanding(), 1);
        assert_eq!(t.holder(JobId(1)).unwrap().granter, G1, "original grant kept");
    }

    #[test]
    fn payloads_round_trip_through_codec() {
        use jrs_pbs::{JobSpec, ServerCmd};
        let samples = vec![
            Payload::Client {
                client: ProcId(20),
                req_id: 3,
                cmd: ServerCmd::Qsub(JobSpec::trivial("j")),
            },
            Payload::Output { client: ProcId(20), req_id: 3 },
            Payload::MomFinished { job: JobId(1), exit: -2, mom: MOM },
            Payload::JMutexAcquire {
                job: JobId(1),
                mom: MOM,
                session: 4,
                granter: G1,
                reclaim: true,
            },
            Payload::JMutexRelease { job: JobId(2) },
            Payload::Hello { member: G2, applied_index: 11, fingerprint: 99 },
            Payload::Snapshot {
                targets: vec![G2],
                as_of_seq: 5,
                state: Box::new(empty_state()),
            },
        ];
        let catch_up = Payload::CatchUp {
            targets: vec![G2],
            as_of_seq: 5,
            entries: samples
                .iter()
                .take(2)
                .enumerate()
                .map(|(i, p)| (u64::try_from(i).expect("small") + 1, p.clone()))
                .collect(),
        };
        for p in samples.into_iter().chain([catch_up]) {
            let bytes = p.to_bytes();
            let back = Payload::from_bytes(&bytes).unwrap();
            // Payload has no PartialEq (ReplicaState holds a boxed tree);
            // compare fingerprints of the hashable structure instead.
            assert_eq!(jrs_sim::fingerprint(&back), jrs_sim::fingerprint(&p));
        }
    }
}
