//! High-availability baseline models (the paper's Figures 1–3), for the
//! comparison experiments against JOSHUA's symmetric active/active model
//! (Figure 4):
//!
//! * **Single head** — the plain Beowulf architecture; provided directly
//!   by [`jrs_pbs::PbsHeadProcess`].
//! * **Active/standby** ([`ActiveStandbyHead`]) — warm standby with
//!   periodic state checkpoints; failover interrupts service and restarts
//!   running jobs (the HA-OSCAR / SLURM model the paper describes).
//! * **Asymmetric active/active** — several *independent* heads, each
//!   owning a partition of the compute nodes, with client-side
//!   round-robin; improved throughput, but stateful services on a failed
//!   head are simply gone (composed in `cluster.rs` from single heads).

use jrs_pbs::proc::{ClientReply, ClientRequest, PbsCostModel};
use jrs_pbs::server::{MomReport, PbsServerCore, ServerAction, ServerSnapshot};
use jrs_pbs::MomInbound;
use jrs_sim::{Ctx, Msg, ProcId, Process, SimDuration, SimTime, TimerId};

/// Active/standby tunables.
#[derive(Clone, Copy, Debug)]
pub struct ActiveStandbyConfig {
    /// How often the primary checkpoints its state to the standby.
    pub checkpoint_every: SimDuration,
    /// Primary heartbeat period.
    pub heartbeat_every: SimDuration,
    /// Standby declares the primary dead after this silence.
    pub fail_after: SimDuration,
    /// Warm-standby service restart time after detection (the paper cites
    /// 3–5 s failovers for HA-OSCAR/SLURM).
    pub takeover_delay: SimDuration,
    /// PBS server cost model.
    pub cost: PbsCostModel,
}

impl Default for ActiveStandbyConfig {
    fn default() -> Self {
        ActiveStandbyConfig {
            checkpoint_every: SimDuration::from_secs(10),
            heartbeat_every: SimDuration::from_millis(500),
            fail_after: SimDuration::from_secs(2),
            takeover_delay: SimDuration::from_secs(2),
            cost: PbsCostModel::default(),
        }
    }
}

/// Heartbeat from primary to standby.
#[derive(Clone, Copy, Debug)]
struct AsHeartbeat;

/// Checkpoint from primary to standby.
#[derive(Clone, Debug)]
struct AsCheckpoint(ServerSnapshot);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Primary,
    Standby,
    /// Takeover in progress (service restarting).
    TakingOver,
}

/// One head of an active/standby pair. Construct one with
/// `primary = true` and one standby; give the client both as targets
/// (primary first).
pub struct ActiveStandbyHead {
    core: PbsServerCore,
    cfg: ActiveStandbyConfig,
    peer: ProcId,
    role: Role,
    last_primary_sign: SimTime,
    /// Jobs restarted across failovers (the paper's qualitative cost of
    /// the active/standby model).
    pub restarted_jobs: u64,
    /// Checkpoints received (standby) or sent (primary).
    pub checkpoints: u64,
    /// Moms to register with on takeover.
    moms: Vec<ProcId>,
}

impl ActiveStandbyHead {
    /// Build one half of the pair.
    pub fn new(
        core: PbsServerCore,
        cfg: ActiveStandbyConfig,
        peer: ProcId,
        primary: bool,
        moms: Vec<ProcId>,
    ) -> Self {
        ActiveStandbyHead {
            core,
            cfg,
            peer,
            role: if primary { Role::Primary } else { Role::Standby },
            last_primary_sign: SimTime::ZERO,
            restarted_jobs: 0,
            checkpoints: 0,
            moms,
        }
    }

    /// Inspect the server.
    pub fn core(&self) -> &PbsServerCore {
        &self.core
    }

    /// Is this head currently serving?
    pub fn is_active(&self) -> bool {
        self.role == Role::Primary
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_>, actions: Vec<ServerAction>, delay: SimDuration) {
        for a in actions {
            match a {
                ServerAction::Start { mom, job, spec, nodes } => {
                    if let Some(mom) = mom {
                        let msg = MomInbound::Start {
                            job,
                            spec,
                            nodes,
                            server: ctx.me(),
                            arbiter: None,
                        };
                        ctx.send_after(mom, msg, delay + self.cfg.cost.dispatch_processing);
                    }
                }
                ServerAction::Cancel { mom, job } => {
                    if let Some(mom) = mom {
                        ctx.send_after(
                            mom,
                            MomInbound::Cancel { job, server: ctx.me() },
                            delay + self.cfg.cost.dispatch_processing,
                        );
                    }
                }
            }
        }
    }

    fn complete_takeover(&mut self, ctx: &mut Ctx<'_>) {
        self.role = Role::Primary;
        // Register for obituaries, then restart everything that was
        // running (warm standby: running applications do not survive).
        for mom in self.moms.clone() {
            ctx.send(mom, MomInbound::RegisterServer { server: ctx.me() });
        }
        let (requeued, actions) = self.core.requeue_all_running(ctx.now());
        self.restarted_jobs += requeued.len() as u64;
        self.dispatch(ctx, actions, SimDuration::ZERO);
    }
}

impl Process for ActiveStandbyHead {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.last_primary_sign = ctx.now();
        ctx.set_timer(self.cfg.heartbeat_every, 0);
        if self.role == Role::Primary {
            for mom in self.moms.clone() {
                ctx.send(mom, MomInbound::RegisterServer { server: ctx.me() });
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: Msg) {
        let now = ctx.now();
        if msg.downcast_ref::<AsHeartbeat>().is_some() {
            self.last_primary_sign = now;
            return;
        }
        if let Some(AsCheckpoint(snap)) = msg.downcast_ref::<AsCheckpoint>() {
            self.last_primary_sign = now;
            self.checkpoints += 1;
            self.core.restore(snap);
            return;
        }
        if let Some(req) = msg.downcast_ref::<ClientRequest>() {
            if self.role != Role::Primary {
                // Standby gives no service: the client times out and
                // retries — the paper's "interruption of service".
                return;
            }
            let cost = self.cfg.cost.cost_of(&req.cmd);
            let (reply, actions) = self.core.apply(now, &req.cmd);
            ctx.send_after(req.client, ClientReply { req_id: req.req_id, reply }, cost);
            self.dispatch(ctx, actions, cost);
            return;
        }
        if let Ok(report) = msg.downcast::<MomReport>() {
            let actions = self.core.on_report(now, &report);
            self.dispatch(ctx, actions, SimDuration::ZERO);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerId, tag: u64) {
        let now = ctx.now();
        match tag {
            0 => {
                match self.role {
                    Role::Primary => {
                        ctx.send(self.peer, AsHeartbeat);
                        // Piggyback a checkpoint on schedule.
                        if self.checkpoints == 0
                            || now.as_nanos()
                                % self.cfg.checkpoint_every.as_nanos().max(1)
                                < self.cfg.heartbeat_every.as_nanos()
                        {
                            self.checkpoints += 1;
                            ctx.send(self.peer, AsCheckpoint(self.core.snapshot()));
                        }
                    }
                    Role::Standby => {
                        if now.since(self.last_primary_sign) >= self.cfg.fail_after {
                            self.role = Role::TakingOver;
                            ctx.set_timer(self.cfg.takeover_delay, 1);
                        }
                    }
                    Role::TakingOver => {}
                }
                ctx.set_timer(self.cfg.heartbeat_every, 0);
            }
            1
                if self.role == Role::TakingOver => {
                    self.complete_takeover(ctx);
                }
            _ => {}
        }
    }
}
