//! Cluster harness: assembles head nodes, compute nodes and measuring
//! clients into a simulated Beowulf cluster under any of the four HA
//! architectures the paper discusses (Figures 1–4), and provides the
//! fault-injection and inspection hooks the experiments use.

use crate::config::{JoshuaConfig, JoshuaCostModel, PersistConfig, PolicyKind};
use crate::ha::{ActiveStandbyConfig, ActiveStandbyHead};
use crate::server::JoshuaServer;
use jrs_gcs::GroupConfig;
use jrs_pbs::proc::{PbsClientProcess, PbsHeadProcess, PbsMomProcess};
use jrs_pbs::server::PbsServerCore;
use jrs_pbs::{ClientDone, PbsMomCore, ServerCmd, SubmitRecord};
use jrs_sim::{NetworkConfig, NodeId, ProcId, SimDuration, SimTime, World};

/// Which high-availability architecture to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaMode {
    /// Figure 1: one head node, no redundancy (plain TORQUE baseline).
    SingleHead,
    /// Figure 2: primary + warm standby with periodic checkpoints.
    ActiveStandby,
    /// Figure 3: `heads` independent head nodes, each owning a partition
    /// of the compute nodes, client-side round-robin.
    Asymmetric {
        /// Number of independent heads.
        heads: usize,
    },
    /// Figure 4: JOSHUA symmetric active/active replication over `heads`
    /// head nodes.
    Joshua {
        /// Number of replicated heads.
        heads: usize,
    },
}

impl HaMode {
    /// Number of head nodes this mode deploys.
    pub fn head_count(self) -> usize {
        match self {
            HaMode::SingleHead => 1,
            HaMode::ActiveStandby => 2,
            HaMode::Asymmetric { heads } | HaMode::Joshua { heads } => heads,
        }
    }

    /// Short label for experiment tables.
    pub fn label(self) -> String {
        match self {
            HaMode::SingleHead => "TORQUE".into(),
            HaMode::ActiveStandby => "ACTIVE/STANDBY".into(),
            HaMode::Asymmetric { heads } => format!("ASYM-A/A x{heads}"),
            HaMode::Joshua { heads } => format!("JOSHUA/TORQUE x{heads}"),
        }
    }
}

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// HA architecture.
    pub mode: HaMode,
    /// Number of compute nodes (the paper used 2).
    pub compute_nodes: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Network model (default: Fast-Ethernet hub, like the testbed).
    pub net: NetworkConfig,
    /// Head-node cost model.
    pub cost: JoshuaCostModel,
    /// Group communication tunables (JOSHUA mode).
    pub group: GroupConfig,
    /// Scheduling policy on every head.
    pub policy: PolicyKind,
    /// Active/standby tunables.
    pub standby: ActiveStandbyConfig,
    /// Durability of head-node state (JOSHUA mode): WAL + snapshots on
    /// each head's local simulated disk. Off by default (the paper's
    /// diskless configuration).
    pub persist: PersistConfig,
    /// Reproduce the paper's TORQUE mom obituary bug.
    pub mom_obituary_bug: bool,
    /// Client failover timeout.
    pub client_timeout: SimDuration,
}

impl ClusterConfig {
    /// Defaults matching the paper's testbed (2 compute nodes, hub LAN).
    pub fn new(mode: HaMode) -> Self {
        ClusterConfig {
            mode,
            compute_nodes: 2,
            seed: 42,
            net: NetworkConfig::default(),
            cost: JoshuaCostModel::default(),
            group: GroupConfig::default(),
            policy: PolicyKind::FifoExclusive,
            standby: ActiveStandbyConfig::default(),
            persist: PersistConfig::default(),
            mom_obituary_bug: false,
            client_timeout: SimDuration::from_millis(1500),
        }
    }
}

/// A built cluster.
pub struct Cluster {
    /// The simulation world.
    pub world: World,
    /// Configuration used.
    pub cfg: ClusterConfig,
    /// Head nodes (sim node ids), same order as `heads`.
    pub head_nodes: Vec<NodeId>,
    /// Head processes.
    pub heads: Vec<ProcId>,
    /// Compute nodes.
    pub mom_nodes: Vec<NodeId>,
    /// Mom processes.
    pub moms: Vec<ProcId>,
    /// Clients spawned so far.
    pub clients: Vec<ProcId>,
    login_node: NodeId,
}

impl Cluster {
    /// Build the cluster (no clients yet).
    pub fn build(cfg: ClusterConfig) -> Cluster {
        let mut world = World::with_network(cfg.seed, cfg.net.clone());
        let h = cfg.mode.head_count();
        let c = cfg.compute_nodes;
        assert!(h >= 1 && c >= 1);

        // Topology: head nodes first, compute nodes, then a login node.
        let head_nodes: Vec<NodeId> =
            (0..h).map(|i| world.add_node(format!("head-{i}"))).collect();
        let mom_nodes: Vec<NodeId> =
            (0..c).map(|i| world.add_node(format!("c{i:02}"))).collect();
        let login_node = world.add_node("login");

        // Process ids are sequential: heads 0..h, moms h..h+c.
        let h32 = u32::try_from(h).expect("head count fits u32");
        let c32 = u32::try_from(c).expect("compute-node count fits u32");
        let head_ids: Vec<ProcId> = (0..h32).map(ProcId).collect();
        let mom_ids: Vec<ProcId> = (0..c32).map(|i| ProcId(h32 + i)).collect();
        let node_names: Vec<String> = (0..c).map(|i| format!("c{i:02}")).collect();
        let all_nodes: Vec<(String, ProcId)> = node_names
            .iter()
            .cloned()
            .zip(mom_ids.iter().copied())
            .collect();

        let mut heads = Vec::new();
        match cfg.mode {
            HaMode::SingleHead => {
                let mut core = PbsServerCore::new(
                    "head-0",
                    node_names.iter().cloned(),
                    cfg.policy.make(),
                );
                for (n, m) in &all_nodes {
                    core.register_mom(n, *m);
                }
                let p = world.add_process(
                    head_nodes[0],
                    PbsHeadProcess::new(core, cfg.cost.pbs),
                );
                heads.push(p);
            }
            HaMode::ActiveStandby => {
                #[allow(clippy::needless_range_loop)] // indexes three parallel arrays
                for i in 0..2 {
                    let mut core = PbsServerCore::new(
                        format!("head-{i}"),
                        node_names.iter().cloned(),
                        cfg.policy.make(),
                    );
                    for (n, m) in &all_nodes {
                        core.register_mom(n, *m);
                    }
                    let peer = head_ids[1 - i];
                    let p = world.add_process(
                        head_nodes[i],
                        ActiveStandbyHead::new(
                            core,
                            cfg.standby,
                            peer,
                            i == 0,
                            mom_ids.clone(),
                        ),
                    );
                    heads.push(p);
                }
            }
            HaMode::Asymmetric { heads: n } => {
                // Each head owns a disjoint partition of the nodes.
                #[allow(clippy::needless_range_loop)] // indexes parallel arrays
                for i in 0..n {
                    let my_nodes: Vec<(String, ProcId)> = all_nodes
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| j % n == i)
                        .map(|(_, nm)| nm.clone())
                        .collect();
                    let mut core = PbsServerCore::new(
                        format!("head-{i}"),
                        my_nodes.iter().map(|(n, _)| n.clone()),
                        cfg.policy.make(),
                    );
                    for (nm, m) in &my_nodes {
                        core.register_mom(nm, *m);
                    }
                    let p = world.add_process(
                        head_nodes[i],
                        PbsHeadProcess::new(core, cfg.cost.pbs),
                    );
                    heads.push(p);
                }
            }
            HaMode::Joshua { heads: n } => {
                for i in 0..n {
                    let jc = JoshuaConfig {
                        nodes: all_nodes.clone(),
                        policy: cfg.policy,
                        group: cfg.group.clone(),
                        cost: cfg.cost,
                        persist: cfg.persist,
                    };
                    let p = world.add_process(
                        head_nodes[i],
                        JoshuaServer::new(head_ids[i], jc, head_ids.clone()),
                    );
                    heads.push(p);
                }
            }
        }
        assert_eq!(heads, head_ids, "head process ids must be predictable");

        let mut moms = Vec::new();
        for i in 0..c {
            let mut core = PbsMomCore::new(node_names[i].clone());
            core.obituary_bug = cfg.mom_obituary_bug;
            let p = world.add_process(mom_nodes[i], PbsMomProcess::new(core));
            moms.push(p);
        }
        assert_eq!(moms, mom_ids, "mom process ids must be predictable");

        Cluster {
            world,
            cfg,
            head_nodes,
            heads,
            mom_nodes,
            moms,
            clients: Vec::new(),
            login_node,
        }
    }

    /// Spawn a closed-loop measuring client on the login node with the
    /// mode-appropriate target strategy. The script starts immediately.
    pub fn spawn_client(&mut self, script: Vec<ServerCmd>) -> ProcId {
        let targets = self.heads.clone();
        let mut client =
            PbsClientProcess::new(targets, script).with_timeout(self.cfg.client_timeout);
        if matches!(self.cfg.mode, HaMode::Asymmetric { .. }) {
            client = client.with_round_robin();
        }
        let login = self.login_node;
        let p = self.world.add_process(login, client);
        self.clients.push(p);
        p
    }

    /// Run the world for a virtual duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Run until an absolute virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Drain the measured per-command records.
    pub fn take_records(&mut self) -> Vec<SubmitRecord> {
        self.world
            .take_emitted::<SubmitRecord>()
            .into_iter()
            .map(|(_, _, r)| r)
            .collect()
    }

    /// Drain client completion events.
    pub fn take_dones(&mut self) -> Vec<ClientDone> {
        self.world
            .take_emitted::<ClientDone>()
            .into_iter()
            .map(|(_, _, d)| d)
            .collect()
    }

    /// Crash head `i` (power-off).
    pub fn crash_head(&mut self, i: usize) {
        self.world.crash_node(self.head_nodes[i]);
    }

    /// Ask JOSHUA head `i` to leave voluntarily.
    pub fn leave_head(&mut self, i: usize) {
        self.world.inject(self.heads[i], crate::server::LeaveCmd);
    }

    /// Add a replacement JOSHUA head that joins the running group via
    /// state transfer. Returns its process id.
    pub fn add_joshua_head(&mut self) -> ProcId {
        let HaMode::Joshua { .. } = self.cfg.mode else {
            panic!("replacement heads only exist in JOSHUA mode");
        };
        let node = self.world.add_node(format!("head-{}", self.head_nodes.len()));
        let contacts = self.heads.clone();
        let all_nodes: Vec<(String, ProcId)> = (0..self.cfg.compute_nodes)
            .map(|i| (format!("c{i:02}"), self.moms[i]))
            .collect();
        let jc = JoshuaConfig {
            nodes: all_nodes,
            policy: self.cfg.policy,
            group: self.cfg.group.clone(),
            cost: self.cfg.cost,
            persist: self.cfg.persist,
        };
        // The new process id is not in `contacts`, so it starts as a
        // joiner using them as contact points.
        let me = ProcId(self.world_proc_count());
        let p = self
            .world
            .add_process(node, JoshuaServer::new(me, jc, contacts));
        assert_eq!(p, me);
        self.head_nodes.push(node);
        self.heads.push(p);
        p
    }

    /// Restart a crashed JOSHUA head *in place*: revive its node (the
    /// simulated disk survives the crash) and boot a fresh daemon under
    /// the same process id. With durability enabled the new daemon
    /// recovers from its local WAL + snapshot, rejoins the survivors and
    /// catches up only the delta; diskless it rejoins empty and receives
    /// a full snapshot.
    pub fn restart_joshua_head(&mut self, i: usize) -> ProcId {
        let me = self.heads[i];
        let contacts: Vec<ProcId> =
            self.heads.iter().copied().filter(|p| *p != me).collect();
        if contacts.is_empty() {
            // No survivors to join through (single-head cluster): this is
            // a one-member cold restart — bootstrap as the initial member.
            return self.respawn_joshua_head(i, vec![me]);
        }
        self.respawn_joshua_head(i, contacts)
    }

    /// Power off the entire cluster at once: every head node and every
    /// compute node (the login node keeps its clients, which will retry).
    pub fn blackout(&mut self) {
        for n in self.head_nodes.clone() {
            self.world.crash_node(n);
        }
        for n in self.mom_nodes.clone() {
            self.world.crash_node(n);
        }
    }

    /// Power the cluster back on after a [`blackout`](Cluster::blackout):
    /// boot fresh moms (compute state is not durable — jobs that were
    /// running died and will be relaunched), then cold-restart every head
    /// with the full bootstrap member list so the group re-forms and
    /// reconciles the recovered states (most advanced index wins).
    pub fn cold_restart(&mut self) {
        for i in 0..self.mom_nodes.len() {
            self.restart_mom(i);
        }
        let contacts = self.heads.clone();
        for i in 0..self.heads.len() {
            self.respawn_joshua_head(i, contacts.clone());
        }
    }

    /// Restart a crashed mom with a fresh (empty) core.
    pub fn restart_mom(&mut self, i: usize) -> ProcId {
        let node = self.mom_nodes[i];
        if !self.world.is_node_alive(node) {
            self.world.revive_node(node);
        }
        let mut core = PbsMomCore::new(format!("c{i:02}"));
        core.obituary_bug = self.cfg.mom_obituary_bug;
        self.world
            .restart_proc(self.moms[i], Box::new(PbsMomProcess::new(core)));
        self.moms[i]
    }

    fn respawn_joshua_head(&mut self, i: usize, initial: Vec<ProcId>) -> ProcId {
        let HaMode::Joshua { .. } = self.cfg.mode else {
            panic!("head restart only exists in JOSHUA mode");
        };
        let node = self.head_nodes[i];
        if !self.world.is_node_alive(node) {
            self.world.revive_node(node);
        }
        let all_nodes: Vec<(String, ProcId)> = (0..self.cfg.compute_nodes)
            .map(|j| (format!("c{j:02}"), self.moms[j]))
            .collect();
        let jc = JoshuaConfig {
            nodes: all_nodes,
            policy: self.cfg.policy,
            group: self.cfg.group.clone(),
            cost: self.cfg.cost,
            persist: self.cfg.persist,
        };
        let me = self.heads[i];
        self.world
            .restart_proc(me, Box::new(JoshuaServer::new(me, jc, initial)));
        me
    }

    fn world_proc_count(&self) -> u32 {
        // Heads + moms + clients + any previous replacements: the world
        // assigns sequential ids, so the next is the total spawned so far.
        u32::try_from(self.heads.len() + self.moms.len() + self.clients.len())
            .expect("process count fits u32")
    }

    /// Borrow a JOSHUA head (panics in other modes).
    pub fn joshua(&self, i: usize) -> &JoshuaServer {
        self.world
            .proc_ref::<JoshuaServer>(self.heads[i])
            .expect("not a JOSHUA head (wrong mode or crashed before start)")
    }

    /// Borrow a mom core.
    pub fn mom(&self, i: usize) -> &PbsMomCore {
        self.world
            .proc_ref::<PbsMomProcess>(self.moms[i])
            .expect("mom process")
            .core()
    }

    /// Total real job executions across all moms (exactly-once checks).
    pub fn total_real_runs(&self) -> u64 {
        (0..self.moms.len()).map(|i| self.mom(i).real_runs).sum()
    }

    /// Assert every *established* live JOSHUA head holds consistent
    /// replicated PBS state; returns how many heads were compared.
    pub fn assert_replicas_consistent(&self) -> usize {
        let snapshots: Vec<(usize, jrs_pbs::server::ServerSnapshot)> = self
            .heads
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                self.world.is_proc_alive(**p)
                    && self
                        .world
                        .proc_ref::<JoshuaServer>(self.heads[*i])
                        .map(|j| j.is_established())
                        .unwrap_or(false)
            })
            .map(|(i, _)| (i, self.joshua(i).pbs().snapshot()))
            .collect();
        for w in snapshots.windows(2) {
            let (ia, a) = &w[0];
            let (ib, b) = &w[1];
            assert!(
                a.consistent_with(b),
                "replica divergence between head {ia} and head {ib}:\n{a:#?}\nvs\n{b:#?}"
            );
        }
        snapshots.len()
    }
}
