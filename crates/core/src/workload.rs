//! Workload generators: the command scripts the experiments replay.

use jrs_pbs::{JobId, JobSpec, ServerCmd};
use jrs_sim::SimDuration;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The paper's measurement workload: `n` back-to-back submissions of a
/// trivial job (Figures 10 and 11 use 10/50/100 of these).
pub fn burst(n: usize) -> Vec<ServerCmd> {
    (0..n)
        .map(|i| ServerCmd::Qsub(JobSpec::trivial(format!("job-{i}"))))
        .collect()
}

/// Submissions of jobs with a fixed simulated runtime (failure tests use
/// longer-running jobs so crashes land mid-execution).
pub fn burst_with_runtime(n: usize, runtime: SimDuration) -> Vec<ServerCmd> {
    (0..n)
        .map(|i| ServerCmd::Qsub(JobSpec::with_runtime(format!("job-{i}"), runtime)))
        .collect()
}

/// A mixed interactive session: submissions interleaved with status
/// queries, holds/releases and deletions — exercises every PBS verb
/// through the replicated path.
pub fn mixed(n: usize, seed: u64) -> Vec<ServerCmd> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cmds = Vec::with_capacity(n);
    let mut submitted = 0u64;
    for i in 0..n {
        let dice = rng.random_range(0..10u32);
        let cmd = if submitted == 0 || dice < 5 {
            submitted += 1;
            ServerCmd::Qsub(JobSpec::trivial(format!("mix-{i}")))
        } else if dice < 7 {
            ServerCmd::Qstat(None)
        } else if dice < 8 {
            ServerCmd::Qdel(JobId(rng.random_range(1..=submitted)))
        } else if dice < 9 {
            ServerCmd::Qhold(JobId(rng.random_range(1..=submitted)))
        } else {
            ServerCmd::Qrls(JobId(rng.random_range(1..=submitted)))
        };
        cmds.push(cmd);
    }
    cmds
}

/// High-throughput computing scenario (the paper's computational-biology
/// / on-demand example): many short jobs.
pub fn high_throughput(n: usize) -> Vec<ServerCmd> {
    (0..n)
        .map(|i| {
            ServerCmd::Qsub(JobSpec::with_runtime(
                format!("ht-{i}"),
                SimDuration::from_millis(200),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_all_submissions() {
        let w = burst(10);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|c| matches!(c, ServerCmd::Qsub(_))));
    }

    #[test]
    fn mixed_is_deterministic_and_starts_with_qsub() {
        let a = mixed(50, 7);
        let b = mixed(50, 7);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
        assert!(matches!(a[0], ServerCmd::Qsub(_)));
        let c = mixed(50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn runtime_burst_carries_runtime() {
        let w = burst_with_runtime(3, SimDuration::from_secs(30));
        for cmd in &w {
            let ServerCmd::Qsub(spec) = cmd else { panic!() };
            assert_eq!(spec.runtime, SimDuration::from_secs(30));
        }
    }
}
