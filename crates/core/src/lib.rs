//! # joshua-core — symmetric active/active replication for highly
//! available HPC job and resource management
//!
//! Reproduction of the JOSHUA system (Uhlemann, Engelmann, Scott —
//! IEEE Cluster 2006): the job and resource management service of an HPC
//! cluster is made **continuously available** by running unmodified
//! PBS-compatible servers on several head nodes at once and replicating
//! every interaction through a process group communication system with
//! totally ordered, virtually synchronous delivery.
//!
//! * [`server::JoshuaServer`] — the daemon on each head node: external
//!   interception of the PBS interface, ordered command application,
//!   exactly-once output release, jmutex launch arbitration, state
//!   transfer to joining heads.
//! * [`payload`] — the replicated command stream and jmutex table.
//! * [`persist`] — durable head state: a checksummed WAL of applied
//!   commands plus periodic snapshots on the head's local disk, so a
//!   restarted head recovers locally and fetches only the delta from
//!   its peers (and a full-cluster blackout is survivable).
//! * [`ha`] — the paper's comparison baselines: active/standby (warm
//!   failover, restarts jobs) and asymmetric active/active.
//! * [`cluster`] — a harness assembling any of the four architectures on
//!   the simulated testbed for experiments.
//! * [`workload`] — command-script generators.
//!
//! ```no_run
//! use joshua_core::cluster::{Cluster, ClusterConfig, HaMode};
//! use joshua_core::workload;
//! use jrs_sim::SimDuration;
//!
//! // A 2-head JOSHUA cluster, paper-style testbed.
//! let mut cluster = Cluster::build(ClusterConfig::new(HaMode::Joshua { heads: 2 }));
//! cluster.spawn_client(workload::burst(10));
//! cluster.run_for(SimDuration::from_secs(60));
//! assert_eq!(cluster.take_records().len(), 10);
//! cluster.assert_replicas_consistent();
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod commands;
pub mod config;
pub mod ha;
pub mod payload;
pub mod persist;
pub mod server;
pub mod workload;

pub use cluster::{Cluster, ClusterConfig, HaMode};
pub use commands::{jdel, jhold, jrls, jstat, jstat_job, jsub};
pub use config::{JoshuaConfig, JoshuaCostModel, PersistConfig, PolicyKind};
pub use payload::{JMutexState, Payload, ReplicaState};
pub use persist::{HeadStore, Recovered};
pub use server::{JoshuaServer, JoshuaStats, LeaveCmd, RecoveryReport};
